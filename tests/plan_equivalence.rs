//! Property-based end-to-end equivalence: for random window sets, aggregate
//! functions, and streams, the original, rewritten, and factored plans —
//! and the naive reference evaluator — all produce identical results.
//!
//! This is the core soundness property of the whole paper: rewriting may
//! change *cost*, never *answers*.

use fw_core::prelude::*;
use fw_engine::{execute_with, reference_results, sorted_results, Event, ExecOptions};
use proptest::prelude::*;

/// Windows with slide 1..=24 and rate r/s in 1..=5 keep periods small
/// enough for fast streams while exercising tumbling and hopping shapes.
fn arb_window() -> impl Strategy<Value = Window> {
    (1u64..=24, 1u64..=5).prop_map(|(s, k)| Window::new(s * k, s).expect("valid by construction"))
}

fn arb_window_set() -> impl Strategy<Value = WindowSet> {
    proptest::collection::vec(arb_window(), 2..=6)
        .prop_map(|ws| WindowSet::new(ws).expect("non-empty"))
}

fn arb_function() -> impl Strategy<Value = AggregateFunction> {
    prop_oneof![
        Just(AggregateFunction::Min),
        Just(AggregateFunction::Max),
        Just(AggregateFunction::Sum),
        Just(AggregateFunction::Count),
        Just(AggregateFunction::Avg),
        Just(AggregateFunction::Median),
    ]
}

/// Constant-pace stream with integer-valued readings (SUM/AVG stay exact
/// in f64) over a couple of keys.
fn arb_stream() -> impl Strategy<Value = Vec<Event>> {
    (50u64..400, 1u32..=3, 0u64..1000).prop_map(|(n, keys, salt)| {
        (0..n)
            .map(|t| {
                Event::new(t, (t % u64::from(keys)) as u32, ((t * 31 + salt) % 257) as f64)
            })
            .collect()
    })
}

fn exec(plan: &fw_core::QueryPlan, events: &[Event]) -> Vec<fw_engine::WindowResult> {
    let out = execute_with(plan, events, ExecOptions { collect: true, element_work: 0 })
        .expect("valid plan executes");
    sorted_results(out.results)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn three_plans_and_oracle_agree(
        windows in arb_window_set(),
        function in arb_function(),
        events in arb_stream(),
    ) {
        let query = WindowQuery::new(windows.clone(), function);
        let outcome = Optimizer::default().optimize(&query).expect("optimizes");
        let oracle = reference_results(windows.windows(), function, &events);

        prop_assert_eq!(exec(&outcome.original.plan, &events), oracle.clone());
        prop_assert_eq!(exec(&outcome.rewritten.plan, &events), oracle.clone());
        prop_assert_eq!(exec(&outcome.factored.plan, &events), oracle);
    }

    #[test]
    fn costs_are_monotone(windows in arb_window_set()) {
        // Algorithm 1 never beats the original; Algorithm 3 never beats
        // Algorithm 1 (Section IV-C).
        for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
            let query = WindowQuery::new(windows.clone(), AggregateFunction::Min);
            let outcome =
                Optimizer::default().optimize_with(&query, semantics).expect("optimizes");
            prop_assert!(outcome.rewritten.cost <= outcome.original.cost);
            prop_assert!(outcome.factored.cost <= outcome.rewritten.cost);
        }
    }

    #[test]
    fn min_under_both_semantics_agrees(
        windows in arb_window_set(),
        events in arb_stream(),
    ) {
        // MIN is legal under both relations; results must not depend on
        // which one the optimizer exploited.
        let query = WindowQuery::new(windows.clone(), AggregateFunction::Min);
        let covered =
            Optimizer::default().optimize_with(&query, Semantics::CoveredBy).expect("optimizes");
        let partitioned = Optimizer::default()
            .optimize_with(&query, Semantics::PartitionedBy)
            .expect("optimizes");
        prop_assert_eq!(
            exec(&covered.factored.plan, &events),
            exec(&partitioned.factored.plan, &events)
        );
        // Covered-by explores a superset of sharing opportunities.
        prop_assert!(covered.rewritten.cost <= partitioned.rewritten.cost);
    }

    #[test]
    fn plans_validate_and_render(windows in arb_window_set(), function in arb_function()) {
        let query = WindowQuery::new(windows, function);
        let outcome = Optimizer::default().optimize(&query).expect("optimizes");
        for bundle in [&outcome.original, &outcome.rewritten, &outcome.factored] {
            prop_assert!(bundle.plan.validate().is_ok(), "{:?}", bundle.plan.validate());
            // Renderers must not panic and must mention every exposed window.
            let trill = bundle.plan.to_trill_string();
            let flink = bundle.plan.to_flink_string();
            for w in bundle.plan.exposed_windows() {
                let tag = if w.is_tumbling() {
                    format!("Tumbling({})", w.range())
                } else {
                    format!("Hopping({}, {})", w.range(), w.slide())
                };
                prop_assert!(trill.contains(&tag), "{trill} missing {tag}");
                prop_assert!(flink.contains(&format!("w{}_{}", w.range(), w.slide())), "{flink}");
            }
        }
    }
}
