//! Randomized end-to-end equivalence: for pseudo-random window sets,
//! aggregate functions, and streams, the original, rewritten, and factored
//! plans — and the naive reference evaluator — all produce identical
//! results.
//!
//! This is the core soundness property of the whole paper: rewriting may
//! change *cost*, never *answers*. The cases are generated from a
//! deterministic PRNG so every run checks the same (large) sample.

use factor_windows::prelude::*;
use factor_windows::workload::SplitMix64;
use fw_engine::{reference_results, sorted_results, WindowResult};

/// Windows with slide 1..=24 and rate r/s in 1..=5 keep periods small
/// enough for fast streams while exercising tumbling and hopping shapes.
fn random_window(rng: &mut SplitMix64) -> Window {
    let s = rng.gen_range_inclusive_u64(1..=24);
    let k = rng.gen_range_inclusive_u64(1..=5);
    Window::new(s * k, s).expect("valid by construction")
}

fn random_window_set(rng: &mut SplitMix64) -> WindowSet {
    let n = rng.gen_range_inclusive_u64(2..=6) as usize;
    WindowSet::new((0..n).map(|_| random_window(rng)).collect()).expect("non-empty")
}

fn random_function(rng: &mut SplitMix64) -> AggregateFunction {
    AggregateFunction::ALL[rng.gen_index(AggregateFunction::ALL.len())]
}

/// Constant-pace stream with integer-valued readings (SUM/AVG stay exact
/// in f64) over a couple of keys.
fn random_stream(rng: &mut SplitMix64) -> Vec<Event> {
    let n = rng.gen_range_u64(50..400);
    let keys = rng.gen_range_inclusive_u64(1..=3);
    let salt = rng.gen_range_u64(0..1000);
    (0..n)
        .map(|t| Event::new(t, (t % keys) as u32, ((t * 31 + salt) % 257) as f64))
        .collect()
}

fn exec(session: &Session, choice: PlanChoice, events: &[Event]) -> Vec<WindowResult> {
    let out = session
        .clone()
        .plan_choice(choice)
        .run_batch(events)
        .expect("valid plan executes");
    sorted_results(out.results)
}

fn session_for(windows: &WindowSet, function: AggregateFunction) -> Session {
    Session::from_query(WindowQuery::new(windows.clone(), function))
        .collect_results(true)
        .element_work(0)
}

#[test]
fn three_plans_and_oracle_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xE0E0);
    for case in 0..64 {
        let windows = random_window_set(&mut rng);
        let function = random_function(&mut rng);
        let events = random_stream(&mut rng);
        let session = session_for(&windows, function);
        let oracle = reference_results(windows.windows(), function, &events);

        for choice in PlanChoice::CONCRETE {
            assert_eq!(
                exec(&session, choice, &events),
                oracle,
                "case {case}: {function} {choice} diverges on {windows}"
            );
        }
    }
}

#[test]
fn costs_are_monotone() {
    // Algorithm 1 never beats the original; Algorithm 3 never beats
    // Algorithm 1 (Section IV-C).
    let mut rng = SplitMix64::seed_from_u64(0xC0575);
    for _ in 0..64 {
        let windows = random_window_set(&mut rng);
        for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
            let query = WindowQuery::new(windows.clone(), AggregateFunction::Min);
            let outcome = Optimizer::default()
                .optimize_with(&query, semantics)
                .expect("optimizes");
            assert!(outcome.rewritten.cost <= outcome.original.cost, "{windows}");
            assert!(outcome.factored.cost <= outcome.rewritten.cost, "{windows}");
        }
    }
}

#[test]
fn min_under_both_semantics_agrees() {
    // MIN is legal under both relations; results must not depend on
    // which one the optimizer exploited.
    let mut rng = SplitMix64::seed_from_u64(0x5E3A);
    for _ in 0..32 {
        let windows = random_window_set(&mut rng);
        let events = random_stream(&mut rng);
        let covered = session_for(&windows, AggregateFunction::Min).semantics(Semantics::CoveredBy);
        let partitioned =
            session_for(&windows, AggregateFunction::Min).semantics(Semantics::PartitionedBy);
        assert_eq!(
            exec(&covered, PlanChoice::Factored, &events),
            exec(&partitioned, PlanChoice::Factored, &events),
            "{windows}"
        );
        // Covered-by explores a superset of sharing opportunities.
        let c = covered.optimize().unwrap().rewritten.cost;
        let p = partitioned.optimize().unwrap().rewritten.cost;
        assert!(c <= p, "{windows}: covered {c} > partitioned {p}");
    }
}

#[test]
fn plans_validate_and_render() {
    let mut rng = SplitMix64::seed_from_u64(0x9E9D);
    for _ in 0..64 {
        let windows = random_window_set(&mut rng);
        let function = random_function(&mut rng);
        let query = WindowQuery::new(windows, function);
        let outcome = Optimizer::default().optimize(&query).expect("optimizes");
        for bundle in [&outcome.original, &outcome.rewritten, &outcome.factored] {
            assert!(
                bundle.plan.validate().is_ok(),
                "{:?}",
                bundle.plan.validate()
            );
            // Renderers must not panic and must mention every exposed window.
            let trill = bundle.plan.to_trill_string();
            let flink = bundle.plan.to_flink_string();
            for w in bundle.plan.exposed_windows() {
                let tag = if w.is_tumbling() {
                    format!("Tumbling({})", w.range())
                } else {
                    format!("Hopping({}, {})", w.range(), w.slide())
                };
                assert!(trill.contains(&tag), "{trill} missing {tag}");
                assert!(
                    flink.contains(&format!("w{}_{}", w.range(), w.slide())),
                    "{flink}"
                );
            }
        }
    }
}
