//! Observability-layer guarantees: per-plan-node profiling is
//! observation-only (results bit-identical at every level, across plan
//! choices, shard widths, and disorder), EXPLAIN ANALYZE reconciles
//! exactly with the global `ExecStats`, node counters survive
//! checkpoint/restore — including restores that rescale the shard width —
//! and the `EXPLAIN [ANALYZE]` statement frontend drives the whole path
//! from SQL text.

use factor_windows::prelude::*;
use factor_windows::{explain_sql, sql as fw_sql};
use fw_engine::Event;

const MATRIX_SQL: &str = "SELECT k, MIN(v) AS Lo, SUM(v) AS Tot FROM S GROUP BY k, \
     Windows(Window('a', TumblingWindow(second, 20)), \
             Window('b', TumblingWindow(second, 30)), \
             Window('c', TumblingWindow(second, 40)))";

/// Deterministic constant-pace stream over a small key space with values
/// that exercise non-trivial float folding.
fn events(n: u64, keys: u32) -> Vec<Event> {
    (0..n)
        .map(|t| Event {
            time: t,
            key: (t % u64::from(keys)) as u32,
            value: ((t * 31) % 97) as f64 * 0.375 - 18.0,
        })
        .collect()
}

/// Reverses disjoint chunks of length `chunk`, displacing each event by
/// at most `chunk - 1` time units — repairable with an out-of-order
/// tolerance of `chunk`.
fn disordered(mut stream: Vec<Event>, chunk: usize) -> Vec<Event> {
    if chunk > 1 {
        for window in stream.chunks_mut(chunk) {
            window.reverse();
        }
    }
    stream
}

/// `(window, interval, key, agg, value bits)` — the full identity of a
/// result row for bit-exact comparison.
fn result_key(r: &WindowResult) -> (u64, u64, u64, u32, u32, u64) {
    (
        r.window.range(),
        r.interval.start,
        r.interval.end,
        r.key,
        r.agg,
        r.value.to_bits(),
    )
}

#[test]
fn profiling_is_observation_only_across_plans_shards_and_disorder() {
    let base = events(3_000, 5);
    for choice in [
        PlanChoice::Original,
        PlanChoice::Rewritten,
        PlanChoice::Factored,
    ] {
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
        ] {
            for chunk in [1usize, 16] {
                let stream = disordered(base.clone(), chunk);
                let run = |level: ProfileLevel| {
                    let out = Session::from_sql(MATRIX_SQL)
                        .unwrap()
                        .plan_choice(choice)
                        .parallelism(parallelism)
                        .out_of_order(chunk as u64)
                        .collect_results(true)
                        .profiling(level)
                        .run_batch(&stream)
                        .unwrap();
                    (
                        out.results.iter().map(result_key).collect::<Vec<_>>(),
                        out.stats,
                    )
                };
                let (baseline, base_stats) = run(ProfileLevel::Off);
                assert!(!baseline.is_empty());
                for level in [ProfileLevel::Counters, ProfileLevel::Timed] {
                    let (profiled, stats) = run(level);
                    assert_eq!(
                        profiled, baseline,
                        "results drifted under {level:?} at {choice:?}/{parallelism:?}/chunk={chunk}"
                    );
                    assert_eq!(
                        (stats.updates, stats.combines, stats.agg_ops),
                        (base_stats.updates, base_stats.combines, base_stats.agg_ops),
                        "ExecStats drifted under {level:?} at {choice:?}/{parallelism:?}/chunk={chunk}"
                    );
                }
            }
        }
    }
}

#[test]
fn explain_analyze_reconciles_node_counters_with_exec_stats() {
    // The Fig. 1 workload: constant pace, minutes normalized to seconds.
    let stream = events(10_000, 4);
    let session = Session::from_sql(fw_sql::FIG1_SQL)
        .unwrap()
        .profiling(ProfileLevel::Counters);
    let mut pipeline = session.build().unwrap();
    pipeline.push_batch(&stream).unwrap();
    pipeline.advance_watermark(10_000 + 2_400).unwrap();

    let stats = pipeline.stats();
    let profile = pipeline.profile().unwrap();
    let (updates, combines, agg_ops) = profile.observed_totals();
    assert_eq!(
        (updates, combines, agg_ops),
        (stats.updates, stats.combines, stats.agg_ops),
        "per-node counters must reconcile exactly with global ExecStats"
    );
    assert!(updates > 0 && agg_ops > 0);

    // Every window node of the executing plan reports, and the render
    // carries both sides of the predicted-vs-observed join.
    assert_eq!(profile.nodes.len(), pipeline.plan().window_nodes().count());
    let text = pipeline.explain().unwrap();
    assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
    assert!(text.contains("pred.cost"), "{text}");
    assert!(text.contains("20 min"), "{text}");
}

#[test]
fn node_counters_survive_checkpoint_restore_and_rescale() {
    let stream = events(4_800, 6);
    let (first, second) = stream.split_at(2_400);
    let session = Session::from_sql(MATRIX_SQL)
        .unwrap()
        .profiling(ProfileLevel::Counters)
        .durable(true);

    let mut pipeline = session.build().unwrap();
    pipeline.push_batch(first).unwrap();
    pipeline.advance_watermark(2_400).unwrap();
    let mut image = Vec::new();
    pipeline.checkpoint(&mut image).unwrap();
    let at_checkpoint = pipeline.node_profiles();
    assert!(at_checkpoint.iter().any(|p| p.updates > 0));

    // Baseline: the original pipeline runs the stream to completion.
    pipeline.push_batch(second).unwrap();
    pipeline.advance_watermark(4_800 + 40).unwrap();
    let full = pipeline.node_profiles();

    // A restored pipeline resumes the cumulative counters — it does not
    // restart them from zero — and converges to the same totals.
    let mut restored = session.restore(&mut image.as_slice()).unwrap();
    assert_eq!(restored.node_profiles(), at_checkpoint);
    restored.push_batch(second).unwrap();
    restored.advance_watermark(4_800 + 40).unwrap();
    assert_eq!(restored.node_profiles(), full);

    // Rescale on restore: the same image resumed onto a sharded backend
    // reports the same cumulative element-flow counters. Seals and
    // occupancy high-water are per-shard pane state (each shard closes
    // its own pane per instance) and are exempt from width-neutrality.
    let rescaled_session = session.clone().parallelism(Parallelism::Fixed(2));
    let mut rescaled = rescaled_session.restore(&mut image.as_slice()).unwrap();
    rescaled.push_batch(second).unwrap();
    rescaled.advance_watermark(4_800 + 40).unwrap();
    let flows = |profiles: &[NodeProfile]| {
        let mut v: Vec<_> = profiles
            .iter()
            .map(|p| (p.node, p.updates, p.combines, p.agg_ops, p.emitted))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(flows(&rescaled.node_profiles()), flows(&full));
}

#[test]
fn explain_sql_statement_frontend_runs_end_to_end() {
    let stream = events(200, 3);
    let sql = "SELECT k, MIN(v) AS Lo FROM S GROUP BY k, \
               Windows(Window('a', TumblingWindow(second, 20)), \
                       Window('b', TumblingWindow(second, 40)))";

    // Plain EXPLAIN: prediction only, nothing executes — the render is
    // the compact predicted-flow table without an observed side.
    let text = explain_sql(&format!("EXPLAIN {sql}"), &stream).unwrap();
    assert!(text.starts_with("EXPLAIN  "), "{text}");
    assert!(text.contains("pred.cost"), "{text}");
    assert!(!text.contains("updates="), "{text}");

    // EXPLAIN ANALYZE: the stream runs and observed counters land.
    let text = explain_sql(&format!("EXPLAIN ANALYZE {sql}"), &stream).unwrap();
    assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
    assert!(text.contains("updates=200/200"), "{text}");

    // A statement without the prefix is rejected by this entry point.
    assert!(explain_sql(sql, &stream).is_err());
}
