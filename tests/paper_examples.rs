//! End-to-end checks of the paper's worked examples through the public
//! API: Examples 1, 6, 7, 8, and the plan shapes of Figure 2.

use factor_windows::prelude::*;
use fw_core::{NodeKind, Wcg};

fn w(r: u64, s: u64) -> Window {
    Window::new(r, s).unwrap()
}

fn tumbling_query(ranges: &[u64], f: AggregateFunction) -> WindowQuery {
    let windows = WindowSet::new(
        ranges
            .iter()
            .map(|&r| Window::tumbling(r).unwrap())
            .collect(),
    )
    .unwrap();
    WindowQuery::new(windows, f)
}

#[test]
fn example6_costs_480_to_150() {
    // Four tumbling windows 10/20/30/40: baseline 4ηR = 480, min-cost 150
    // (a 62.5% reduction).
    let query = tumbling_query(&[10, 20, 30, 40], AggregateFunction::Min);
    let outcome = Optimizer::default()
        .optimize_with(&query, Semantics::PartitionedBy)
        .unwrap();
    assert_eq!(outcome.original.cost, 480);
    assert_eq!(outcome.rewritten.cost, 150);
    // W(10,10) is already a user window; no factor window improves further.
    assert_eq!(outcome.factored.cost, 150);
    assert_eq!(outcome.factored.plan.factor_window_count(), 0);
}

#[test]
fn example7_costs_360_246_150() {
    // Windows 20/30/40: baseline 360, Algorithm 1 gives 246 (31.7% less),
    // Algorithm 3 inserts W(10,10) and reaches 150 (58.3% less, 39% below
    // the plan without factor windows).
    let query = tumbling_query(&[20, 30, 40], AggregateFunction::Min);
    let outcome = Optimizer::default()
        .optimize_with(&query, Semantics::PartitionedBy)
        .unwrap();
    assert_eq!(outcome.original.cost, 360);
    assert_eq!(outcome.rewritten.cost, 246);
    assert_eq!(outcome.factored.cost, 150);
    assert_eq!(outcome.factored.plan.factor_window_count(), 1);
    let factors: Vec<Window> = outcome
        .factored
        .plan
        .window_nodes()
        .filter(|&i| !outcome.factored.plan.is_exposed(i))
        .map(|i| *outcome.factored.plan.window_at(i).unwrap())
        .collect();
    assert_eq!(factors, vec![w(10, 10)]);
}

#[test]
fn example8_best_candidate_is_w10() {
    // Candidates {W(10,10), W(5,5), W(2,2)} are all beneficial; the finer
    // two are dependent (they cover W(10,10)) and W(10,10) wins.
    let best = fw_core::factor::find_best_factor_partitioned(
        &CostModel::default(),
        120,
        &Window::unit(),
        true,
        &[w(20, 20), w(30, 30)],
        &|_| false,
    )
    .unwrap();
    assert_eq!(best, Some(w(10, 10)));
}

#[test]
fn figure2_plan_shapes() {
    let query = tumbling_query(&[20, 30, 40], AggregateFunction::Min);
    let outcome = Optimizer::default()
        .optimize_with(&query, Semantics::PartitionedBy)
        .unwrap();

    // Figure 2(a): original plan multicasts the input to each aggregate.
    let original = outcome.original.plan.to_trill_string();
    assert!(
        original.starts_with("Input.Multicast(s0 => s0.Tumbling(20)"),
        "{original}"
    );

    // Figure 2(b)-equivalent rewrite: 40 is fed from 20.
    let rewritten = outcome.rewritten.plan.to_trill_string();
    assert!(rewritten.contains("Tumbling(20)"), "{rewritten}");
    assert!(
        rewritten.contains(".Multicast(s1 => s1.Union(s1.Tumbling(40)"),
        "{rewritten}"
    );

    // Figure 2(c): the factor window is the sole root and is not unioned.
    let factored = outcome.factored.plan.to_trill_string();
    assert!(
        factored.starts_with("Input.Tumbling(10).GroupAggregate"),
        "{factored}"
    );
    assert!(
        factored.contains(".Multicast(s1 => s1.Tumbling(20)"),
        "{factored}"
    );
    assert!(factored.contains(".Union(s1.Tumbling(30)"), "{factored}");
}

#[test]
fn figure7_wcg_structure() {
    // Figure 7(a): the augmented WCG of {20,30,40} has S → {20, 30} and
    // 20 → 40.
    let windows = WindowSet::new(vec![w(20, 20), w(30, 30), w(40, 40)]).unwrap();
    let wcg = Wcg::build_augmented(&windows, Semantics::PartitionedBy);
    let root = wcg.root().unwrap();
    assert_eq!(wcg.node(root).kind, NodeKind::VirtualRoot);
    let mut fed_by_root: Vec<u64> = wcg
        .downstream(root)
        .iter()
        .map(|&i| wcg.node(i).window.range())
        .collect();
    fed_by_root.sort_unstable();
    assert_eq!(fed_by_root, vec![20, 30]);
    let w20 = wcg.find(&w(20, 20)).unwrap();
    let w40 = wcg.find(&w(40, 40)).unwrap();
    assert_eq!(wcg.downstream(w20), &[w40]);
}

#[test]
fn example1_query_through_sql_frontend() {
    // Figure 1(a), minutes normalized to seconds.
    let sql = "SELECT DeviceID, System.Window().Id, MIN(T) AS MinTemp \
               FROM Input TIMESTAMP BY EntryTime \
               GROUP BY DeviceID, Windows( \
                   Window('20 min', TumblingWindow(minute, 20)), \
                   Window('30 min', TumblingWindow(minute, 30)), \
                   Window('40 min', TumblingWindow(minute, 40)))";
    let query = fw_sql::parse_query(sql).unwrap().to_window_query().unwrap();
    let outcome = Optimizer::default().optimize(&query).unwrap();
    // Raw costs scale with the time unit (n·η·r, ×60 at seconds
    // granularity), shared costs n·M do not, so sharing pays off even more
    // than in the minutes-granularity Example 7: 21600 → 7230 with the
    // factor window W(600,600) = the '10 min' window of Figure 2(c).
    assert_eq!(outcome.original.cost, 21_600);
    assert_eq!(outcome.rewritten.cost, 14_406); // 7200 + 7200 + 6
    assert_eq!(outcome.factored.cost, 7_230); // 7200 + 12 + 12 + 6
    let s = outcome.factored.plan.to_trill_string();
    assert!(s.contains("'20 min'"), "{s}");
    assert!(s.starts_with("Input.Tumbling(600)"), "{s}");
}

#[test]
fn limitations_mutually_prime_ranges() {
    // Section III-B "Limitations": W(15), W(17), W(19) cannot be improved.
    let query = tumbling_query(&[15, 17, 19], AggregateFunction::Min);
    let outcome = Optimizer::default()
        .optimize_with(&query, Semantics::PartitionedBy)
        .unwrap();
    assert_eq!(outcome.original.cost, outcome.rewritten.cost);
    assert_eq!(outcome.original.cost, outcome.factored.cost);
}

#[test]
fn use_fw_core_via_umbrella_crate() {
    // The umbrella crate re-exports the workspace under stable names.
    let windows = factor_windows::core::WindowSet::new(vec![
        factor_windows::core::Window::tumbling(10).unwrap(),
    ])
    .unwrap();
    assert_eq!(windows.len(), 1);
    let _ = factor_windows::workload::GenConfig::default();
}
