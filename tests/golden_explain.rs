//! Golden EXPLAIN fixtures: the predicted-flow explain output (text and
//! JSON) for the Figure 1(a) query under each concrete plan choice is
//! committed under `tests/fixtures/`, so any drift in plan shape, node
//! numbering, or modeled cost shows up as a loud fixture diff in review
//! rather than a silent behavior change.
//!
//! To refresh after an *intentional* plan or cost-model change:
//!
//! ```text
//! cargo test --test golden_explain -- --ignored regenerate
//! ```

use factor_windows::{PlanChoice, ProfileLevel, Session};
use std::path::PathBuf;

const CHOICES: [PlanChoice; 3] = [
    PlanChoice::Original,
    PlanChoice::Rewritten,
    PlanChoice::Factored,
];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The predicted-only explain for FIG1 under `choice` — deterministic:
/// no events run, so the report depends only on the optimizer, the cost
/// model's defaults, and the renderer.
fn explain_outputs(choice: PlanChoice) -> (String, String) {
    use factor_windows::core::json::ToJson;
    let profile = Session::from_sql(factor_windows::sql::FIG1_SQL)
        .unwrap()
        .plan_choice(choice)
        .profiling(ProfileLevel::Counters)
        .plan_profile()
        .unwrap();
    (profile.render(), profile.to_json())
}

fn file_stem(choice: PlanChoice) -> String {
    format!("explain_fig1_{}", choice.to_string().to_lowercase())
}

#[test]
fn fig1_explain_matches_committed_fixtures() {
    for choice in CHOICES {
        let (text, json) = explain_outputs(choice);
        let stem = file_stem(choice);
        for (ext, produced) in [("txt", &text), ("json", &json)] {
            let path = fixture_path(&format!("{stem}.{ext}"));
            let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing fixture {} ({e}) — run \
                     `cargo test --test golden_explain -- --ignored regenerate`",
                    path.display()
                )
            });
            assert_eq!(
                produced.trim_end(),
                committed.trim_end(),
                "{choice} explain {ext} drifted from {} — if the plan/cost \
                 change is intentional, regenerate the fixtures",
                path.display()
            );
        }
    }
}

/// Rewrites the committed fixtures from the current optimizer output.
/// Ignored by default: run explicitly (see the module doc) after an
/// intentional plan or cost-model change, and commit the diff.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate() {
    for choice in CHOICES {
        let (text, json) = explain_outputs(choice);
        let stem = file_stem(choice);
        for (ext, produced) in [("txt", &text), ("json", &json)] {
            let path = fixture_path(&format!("{stem}.{ext}"));
            std::fs::write(&path, produced).unwrap();
            println!("wrote {}", path.display());
        }
    }
}
