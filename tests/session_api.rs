//! End-to-end integration of the `Session`/`Pipeline` façade: SQL string →
//! `Session` → incremental event streaming (including out-of-order
//! arrivals within tolerance) → results identical across all plan choices
//! and equal to the naive reference evaluator.

use factor_windows::prelude::*;
use factor_windows::workload::SplitMix64;
use fw_engine::{reference_results, sorted_results};
use fw_sql::FIG1_SQL;

/// A keyed sensor stream at one event per second, in order.
fn stream(n: u64, keys: u32) -> Vec<Event> {
    (0..n)
        .map(|t| Event::new(t, (t % u64::from(keys)) as u32, ((t * 7) % 113) as f64))
        .collect()
}

/// Shuffles a stream within a disorder bound: the stream is cut into
/// blocks of `jitter` events (one event per time unit here) and each
/// block is Fisher-Yates-shuffled independently, so no event lags the
/// running maximum by `jitter` or more. Deterministic by seed.
fn jittered(events: &[Event], jitter: usize, seed: u64) -> Vec<Event> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut out = events.to_vec();
    for block in out.chunks_mut(jitter) {
        for i in (1..block.len()).rev() {
            let j = rng.gen_index(i + 1);
            block.swap(i, j);
        }
    }
    out
}

#[test]
fn fig1_sql_runs_identically_across_all_plan_choices() {
    let events = stream(3600 * 3, 4);
    let session = Session::from_sql(FIG1_SQL)
        .expect("Figure 1(a) parses")
        .collect_results(true)
        .element_work(0);
    let windows: Vec<Window> = session.query().windows().windows().to_vec();
    let oracle = reference_results(&windows, AggregateFunction::Min, &events);
    assert!(!oracle.is_empty());

    // Auto must pick the factored plan for the correlated Figure-1 set...
    let auto = session.clone().plan_choice(PlanChoice::Auto);
    assert_eq!(auto.resolved_choice().unwrap(), PlanChoice::Factored);

    // ...and every choice (pinned or auto) computes the oracle's answers.
    for choice in [
        PlanChoice::Auto,
        PlanChoice::Original,
        PlanChoice::Rewritten,
        PlanChoice::Factored,
    ] {
        let out = session
            .clone()
            .plan_choice(choice)
            .run_batch(&events)
            .unwrap();
        assert_eq!(sorted_results(out.results), oracle, "{choice} diverges");
        assert_eq!(out.events_processed, events.len() as u64);
    }
}

#[test]
fn incremental_push_with_watermarks_matches_batch() {
    let events = stream(2000, 3);
    let session = Session::from_sql(
        "SELECT k, SUM(v) FROM S GROUP BY k, Windows( \
             Window('a', TumblingWindow(second, 20)), \
             Window('b', TumblingWindow(second, 30)), \
             Window('c', TumblingWindow(second, 60)))",
    )
    .unwrap()
    .collect_results(true)
    .element_work(0);
    let batch = session.run_batch(&events).unwrap();

    let mut pipeline = session.build().unwrap();
    let mut collected = Vec::new();
    for (i, &e) in events.iter().enumerate() {
        pipeline.push(e).unwrap();
        // Periodic punctuation, as an upstream source would emit it.
        if i % 250 == 249 {
            pipeline.advance_watermark(e.time).unwrap();
            collected.extend(pipeline.poll_results());
        }
    }
    let tail = pipeline.finish().unwrap();
    collected.extend(tail.results);
    assert_eq!(sorted_results(collected), sorted_results(batch.results));
    assert_eq!(tail.results_emitted, batch.results_emitted);
}

#[test]
fn out_of_order_arrivals_within_tolerance_are_transparent() {
    let ordered = stream(1500, 2);
    let session = Session::from_sql(
        "SELECT k, MIN(v) FROM S GROUP BY k, Windows( \
             Window('fast', TumblingWindow(second, 10)), \
             Window('slow', HoppingWindow(second, 40, 10)))",
    )
    .unwrap()
    .collect_results(true)
    .element_work(0);
    let reference = session.run_batch(&ordered).unwrap();

    for seed in 0..5u64 {
        let shuffled = jittered(&ordered, 6, seed);
        assert_ne!(shuffled, ordered, "seed {seed} must actually shuffle");
        let mut pipeline = session.clone().out_of_order(8).build().unwrap();
        for &e in &shuffled {
            pipeline.push(e).unwrap();
        }
        let out = pipeline.finish().unwrap();
        assert_eq!(
            sorted_results(out.results),
            sorted_results(reference.results.clone()),
            "seed {seed}"
        );
        assert_eq!(out.events_processed, ordered.len() as u64);
    }
}

#[test]
fn all_plan_choices_survive_out_of_order_input() {
    let ordered = stream(1200, 3);
    let shuffled = jittered(&ordered, 5, 42);
    let session = Session::from_sql(FIG1_SQL)
        .unwrap()
        .collect_results(true)
        .element_work(0);
    let windows: Vec<Window> = session.query().windows().windows().to_vec();
    let oracle = reference_results(&windows, AggregateFunction::Min, &ordered);

    for choice in PlanChoice::CONCRETE {
        let mut pipeline = session
            .clone()
            .plan_choice(choice)
            .out_of_order(8)
            .build()
            .unwrap();
        for &e in &shuffled {
            pipeline.push(e).unwrap();
        }
        let out = pipeline.finish().unwrap();
        assert_eq!(
            sorted_results(out.results),
            oracle,
            "{choice} diverges on disorder"
        );
    }
}

#[test]
fn watermark_gates_result_delivery() {
    let session = Session::from_sql(
        "SELECT k, COUNT(*) FROM S GROUP BY k, Windows(Window('w', TumblingWindow(second, 10)))",
    )
    .unwrap()
    .collect_results(true);
    let mut pipeline = session.build().unwrap();
    for t in 0..10u64 {
        pipeline.push(Event::new(t, 0, 1.0)).unwrap();
    }
    // The instance [0,10) ends exactly one past the last event, so it is
    // still open: only a watermark can prove it complete.
    assert!(pipeline.poll_results().is_empty());
    pipeline.advance_watermark(10).unwrap();
    let sealed = pipeline.poll_results();
    assert_eq!(sealed.len(), 1);
    assert_eq!(sealed[0].value, 10.0);
    // The watermark is also a barrier for late data.
    assert!(pipeline.push(Event::new(3, 0, 1.0)).is_err());
    // Data flowing past an instance end seals it without any watermark:
    // the event at t=20 proves [10,20) complete.
    for t in 10..25u64 {
        pipeline.push(Event::new(t, 0, 1.0)).unwrap();
    }
    assert_eq!(pipeline.poll_results().len(), 1);
    let out = pipeline.finish().unwrap();
    // The stream ended at t=24, so [20,30) is incomplete and withheld,
    // matching the batch sealing rule.
    assert_eq!(out.results.len(), 0);
    assert_eq!(out.results_emitted, 2);
}

#[test]
fn sessions_report_plan_provenance() {
    let session = Session::from_sql(FIG1_SQL).unwrap();
    let outcome = session.optimize().unwrap();
    assert_eq!(outcome.original.cost, 21_600);
    assert_eq!(outcome.factored.cost, 7_230);
    let pipeline = session.build().unwrap();
    assert_eq!(pipeline.choice(), PlanChoice::Factored);
    assert_eq!(pipeline.cost(), 7_230);
    assert_eq!(pipeline.semantics(), Some(Semantics::CoveredBy));
    assert!(pipeline.plan().factor_window_count() > 0);
}

#[test]
fn holistic_functions_fall_back_but_still_stream() {
    let session = Session::from_sql(
        "SELECT k, MEDIAN(v) FROM S GROUP BY k, Windows( \
             Window('a', TumblingWindow(second, 10)), \
             Window('b', TumblingWindow(second, 20)))",
    )
    .unwrap()
    .collect_results(true);
    assert_eq!(session.optimize().unwrap().semantics, None);
    let pipeline = session.build().unwrap();
    // All three plans collapse to the original for holistic functions, and
    // Auto's tie-break picks the structurally simplest.
    assert_eq!(pipeline.choice(), PlanChoice::Original);
    let events = stream(100, 2);
    let out = session.run_batch(&events).unwrap();
    let windows: Vec<Window> = session.query().windows().windows().to_vec();
    let oracle = reference_results(&windows, AggregateFunction::Median, &events);
    assert_eq!(sorted_results(out.results), oracle);
}
