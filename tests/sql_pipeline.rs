//! Integration: SQL text → `Session` → optimizer → engine → results, plus
//! parser failure modes surfaced with positions.

use factor_windows::{ApiError, PlanChoice, Session};
use fw_engine::{reference_results, sorted_results, Event};

fn stream(n: u64, keys: u32) -> Vec<Event> {
    (0..n)
        .map(|t| Event::new(t, (t % u64::from(keys)) as u32, ((t * 7) % 113) as f64))
        .collect()
}

#[test]
fn sql_to_results_round_trip() {
    let sql = "SELECT DeviceID, MAX(T) \
               FROM Input TIMESTAMP BY EntryTime \
               GROUP BY DeviceID, Windows( \
                   Window('fast', TumblingWindow(second, 15)), \
                   Window('medium', TumblingWindow(second, 30)), \
                   Window('slow', HoppingWindow(second, 60, 15)))";
    let session = Session::from_sql(sql)
        .unwrap()
        .collect_results(true)
        .element_work(0);

    let events = stream(600, 2);
    let windows: Vec<fw_core::Window> = session.query().windows().windows().to_vec();
    let oracle = reference_results(&windows, fw_core::AggregateFunction::Max, &events);

    for choice in PlanChoice::CONCRETE {
        let run = session
            .clone()
            .plan_choice(choice)
            .run_batch(&events)
            .unwrap();
        assert_eq!(sorted_results(run.results), oracle, "{choice}");
    }
}

#[test]
fn every_supported_aggregate_parses_and_runs() {
    for (name, holistic) in [
        ("MIN", false),
        ("MAX", false),
        ("SUM", false),
        ("COUNT", false),
        ("AVG", false),
        ("MEDIAN", true),
    ] {
        let sql = format!(
            "SELECT k, {name}(v) FROM S GROUP BY k, Windows( \
                 Window('a', TumblingWindow(second, 10)), \
                 Window('b', TumblingWindow(second, 20)))"
        );
        let session = Session::from_sql(&sql).unwrap().collect_results(true);
        let outcome = session.optimize().unwrap();
        if holistic {
            assert_eq!(outcome.semantics, None, "{name} must fall back");
            assert_eq!(outcome.original.cost, outcome.factored.cost);
        } else {
            assert!(outcome.rewritten.cost < outcome.original.cost, "{name}");
        }
        let run = session
            .clone()
            .plan_choice(PlanChoice::Factored)
            .run_batch(&stream(100, 2))
            .unwrap();
        assert!(!run.results.is_empty(), "{name} produced no results");
    }
}

#[test]
fn sum_query_uses_partitioned_semantics_automatically() {
    let sql = "SELECT k, SUM(v) FROM S GROUP BY k, Windows( \
                   Window('a', TumblingWindow(second, 20)), \
                   Window('b', TumblingWindow(second, 40)))";
    let session = Session::from_sql(sql).unwrap();
    let outcome = session.optimize().unwrap();
    assert_eq!(outcome.semantics, Some(fw_core::Semantics::PartitionedBy));
}

#[test]
fn parse_errors_carry_usable_positions() {
    let sql =
        "SELECT k, MIN(v) FROM S GROUP BY k, Windows(Window('w', TumblingWindow(lightyear, 5)))";
    let err = Session::from_sql(sql).unwrap_err();
    let ApiError::Parse(err) = err else {
        panic!("expected a parse error, got {err}");
    };
    let rendered = err.render(sql);
    assert!(rendered.contains("unknown time unit"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
    assert_eq!(&sql[err.offset..err.offset + 9], "lightyear");
}

#[test]
fn windows_in_hours_scale_costs() {
    let sql = "SELECT k, MIN(v) FROM S GROUP BY k, Windows( \
                   Window('1h', TumblingWindow(hour, 1)), \
                   Window('2h', TumblingWindow(hour, 2)))";
    let session = Session::from_sql(sql).unwrap();
    let ranges: Vec<u64> = session
        .query()
        .windows()
        .iter()
        .map(fw_core::Window::range)
        .collect();
    assert_eq!(ranges, vec![3600, 7200]);
}
