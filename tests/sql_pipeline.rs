//! Integration: SQL text → parser → optimizer → engine → results, plus
//! parser failure modes surfaced with positions.

use fw_engine::{execute, reference_results, sorted_results, Event};

fn stream(n: u64, keys: u32) -> Vec<Event> {
    (0..n).map(|t| Event::new(t, (t % u64::from(keys)) as u32, ((t * 7) % 113) as f64)).collect()
}

#[test]
fn sql_to_results_round_trip() {
    let sql = "SELECT DeviceID, MAX(T) \
               FROM Input TIMESTAMP BY EntryTime \
               GROUP BY DeviceID, Windows( \
                   Window('fast', TumblingWindow(second, 15)), \
                   Window('medium', TumblingWindow(second, 30)), \
                   Window('slow', HoppingWindow(second, 60, 15)))";
    let query = fw_sql::parse_query(sql).unwrap().to_window_query().unwrap();
    let outcome = fw_core::Optimizer::default().optimize(&query).unwrap();

    let events = stream(600, 2);
    let windows: Vec<fw_core::Window> = query.windows().windows().to_vec();
    let oracle = reference_results(&windows, fw_core::AggregateFunction::Max, &events);

    for bundle in [&outcome.original, &outcome.rewritten, &outcome.factored] {
        let run = execute(&bundle.plan, &events, true).unwrap();
        assert_eq!(sorted_results(run.results), oracle);
    }
}

#[test]
fn every_supported_aggregate_parses_and_runs() {
    for (name, holistic) in
        [("MIN", false), ("MAX", false), ("SUM", false), ("COUNT", false), ("AVG", false), ("MEDIAN", true)]
    {
        let sql = format!(
            "SELECT k, {name}(v) FROM S GROUP BY k, Windows( \
                 Window('a', TumblingWindow(second, 10)), \
                 Window('b', TumblingWindow(second, 20)))"
        );
        let query = fw_sql::parse_query(&sql).unwrap().to_window_query().unwrap();
        let outcome = fw_core::Optimizer::default().optimize(&query).unwrap();
        if holistic {
            assert_eq!(outcome.semantics, None, "{name} must fall back");
            assert_eq!(outcome.original.cost, outcome.factored.cost);
        } else {
            assert!(outcome.rewritten.cost < outcome.original.cost, "{name}");
        }
        let run = execute(&outcome.factored.plan, &stream(100, 2), true).unwrap();
        assert!(!run.results.is_empty(), "{name} produced no results");
    }
}

#[test]
fn sum_query_uses_partitioned_semantics_automatically() {
    let sql = "SELECT k, SUM(v) FROM S GROUP BY k, Windows( \
                   Window('a', TumblingWindow(second, 20)), \
                   Window('b', TumblingWindow(second, 40)))";
    let query = fw_sql::parse_query(sql).unwrap().to_window_query().unwrap();
    let outcome = fw_core::Optimizer::default().optimize(&query).unwrap();
    assert_eq!(outcome.semantics, Some(fw_core::Semantics::PartitionedBy));
}

#[test]
fn parse_errors_carry_usable_positions() {
    let sql = "SELECT k, MIN(v) FROM S GROUP BY k, Windows(Window('w', TumblingWindow(lightyear, 5)))";
    let err = fw_sql::parse_query(sql).unwrap_err();
    let rendered = err.render(sql);
    assert!(rendered.contains("unknown time unit"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
    assert_eq!(&sql[err.offset..err.offset + 9], "lightyear");
}

#[test]
fn windows_in_hours_scale_costs() {
    let sql = "SELECT k, MIN(v) FROM S GROUP BY k, Windows( \
                   Window('1h', TumblingWindow(hour, 1)), \
                   Window('2h', TumblingWindow(hour, 2)))";
    let query = fw_sql::parse_query(sql).unwrap().to_window_query().unwrap();
    let ranges: Vec<u64> = query.windows().iter().map(fw_core::Window::range).collect();
    assert_eq!(ranges, vec![3600, 7200]);
}
