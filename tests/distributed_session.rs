//! Distributed execution through the façade:
//! `Session::parallelism(Parallelism::Distributed { .. })` must be a
//! drop-in backend swap — same API, bit-identical results against the
//! sequential oracle across ingestion modes and plan choices, checkpoint
//! documents that move freely between backends, and query groups whose
//! route tables distribute member pipelines onto worker processes.
//!
//! These tests spawn real `fw-worker` processes over loopback (built as
//! part of the workspace; `cargo test` at the root compiles them before
//! any test runs).

use factor_windows::engine::{sorted_results, Event, EventBatch, WindowResult};
use factor_windows::{Parallelism, PlanChoice, QueryGroup, Session};
use fw_core::{AggregateFunction, AggregateSpec, WindowQuery, WindowSet};
use fw_engine::sorted_group_results;

fn w(r: u64, s: u64) -> fw_core::Window {
    fw_core::Window::new(r, s).unwrap()
}

fn query() -> WindowQuery {
    let windows = WindowSet::new(vec![w(20, 10), w(40, 40), w(60, 30)]).unwrap();
    let specs = vec![
        AggregateSpec::new(AggregateFunction::Sum),
        AggregateSpec::new(AggregateFunction::Min),
    ];
    WindowQuery::with_aggregates(windows, specs).unwrap()
}

fn stream(n: u64) -> Vec<Event> {
    (0..n)
        .map(|t| Event::new(t, (t % 7) as u32, ((t * 11) % 31) as f64 - 9.0))
        .collect()
}

fn jitter(events: &[Event]) -> Vec<Event> {
    let mut jittered = events.to_vec();
    for chunk in jittered.chunks_mut(4) {
        chunk.reverse();
    }
    jittered
}

fn assert_bit_identical(oracle: &[WindowResult], got: &[WindowResult], context: &str) {
    assert_eq!(oracle.len(), got.len(), "{context}: result count");
    for (a, b) in oracle.iter().zip(got) {
        assert_eq!(
            (a.window, a.interval, a.key, a.agg),
            (b.window, b.interval, b.key, b.agg),
            "{context}"
        );
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "{context}: {a:?} vs {b:?}"
        );
    }
}

/// SUM is order-sensitive in floating point, so this is a strict probe:
/// per-event, batch, and columnar ingestion over worker processes must
/// reproduce the sequential engine bit for bit, with mid-stream
/// watermarks and polls, for both plan choices and disordered input.
#[test]
fn session_distributed_matches_sequential_across_modes() {
    let events = jitter(&stream(600));
    let disorder = 4;
    let oracle = {
        let session = Session::from_query(query())
            .plan_choice(PlanChoice::Original)
            .out_of_order(disorder)
            .element_work(0)
            .collect_results(true);
        let mut pipeline = session.build().unwrap();
        pipeline.push_batch(&events).unwrap();
        sorted_results(pipeline.finish().unwrap().results)
    };
    assert!(!oracle.is_empty());

    for choice in PlanChoice::CONCRETE {
        for workers in [1usize, 2] {
            let session = Session::from_query(query())
                .plan_choice(choice)
                .parallelism(Parallelism::Distributed { workers })
                .out_of_order(disorder)
                .element_work(0)
                .collect_results(true);
            for mode in 0..3 {
                let mut pipeline = session.build().unwrap();
                assert_eq!(pipeline.shards(), workers);
                let mut collected = Vec::new();
                for (round, chunk) in events.chunks(97).enumerate() {
                    match mode {
                        0 => {
                            for &event in chunk {
                                pipeline.push(event).unwrap();
                            }
                        }
                        1 => pipeline.push_batch(chunk).unwrap(),
                        _ => {
                            let batch = EventBatch::from_events(chunk);
                            let (times, keys, values) = batch.columns();
                            pipeline.push_columns(times, keys, values).unwrap();
                        }
                    }
                    if round % 2 == 1 {
                        let watermark = pipeline.watermark();
                        pipeline.advance_watermark(watermark).unwrap();
                        collected.extend(pipeline.poll_results());
                    }
                }
                let tail = pipeline.finish().unwrap();
                collected.extend(tail.results);
                assert_bit_identical(
                    &oracle,
                    &sorted_results(collected),
                    &format!("{choice} / {workers} workers / mode {mode}"),
                );
            }
        }
    }
}

/// Checkpoints are backend-free: a snapshot taken on the sequential
/// engine restores onto worker processes mid-stream (and the distributed
/// pipeline's own checkpoint restores back onto the sequential engine),
/// with exactly-once results end to end.
#[test]
fn checkpoint_documents_move_between_backends() {
    let events = stream(500);
    let (first, rest) = events.split_at(200);
    let (second, third) = rest.split_at(150);

    let session = |parallelism: Parallelism| {
        Session::from_query(query())
            .plan_choice(PlanChoice::Factored)
            .parallelism(parallelism)
            .durable(true)
            .element_work(0)
            .collect_results(true)
    };

    let oracle = {
        let mut pipeline = session(Parallelism::Sequential).build().unwrap();
        pipeline.push_batch(&events).unwrap();
        sorted_results(pipeline.finish().unwrap().results)
    };

    let mut collected = Vec::new();

    // Sequential start…
    let mut p1 = session(Parallelism::Sequential).build().unwrap();
    p1.push_batch(first).unwrap();
    let mut snap1 = Vec::new();
    p1.checkpoint(&mut snap1).unwrap();
    drop(p1);

    // …restored onto two worker processes…
    let mut p2 = session(Parallelism::Distributed { workers: 2 })
        .restore(&mut &snap1[..])
        .unwrap();
    assert_eq!(p2.events_processed(), first.len() as u64);
    p2.push_batch(second).unwrap();
    let watermark = p2.watermark();
    p2.advance_watermark(watermark).unwrap();
    collected.extend(p2.poll_results());
    let mut snap2 = Vec::new();
    p2.checkpoint(&mut snap2).unwrap();
    drop(p2);

    // …and back onto the sequential engine for the tail.
    let mut p3 = session(Parallelism::Sequential)
        .restore(&mut &snap2[..])
        .unwrap();
    assert_eq!(p3.events_processed(), (first.len() + second.len()) as u64);
    p3.push_batch(third).unwrap();
    let out = p3.finish().unwrap();
    collected.extend(out.results);

    assert_bit_identical(
        &oracle,
        &sorted_results(collected),
        "sequential → distributed → sequential chain",
    );
}

/// A query group on the distributed backend: the route table stays
/// coordinator-side while every routed pipeline runs on worker
/// processes, including pipelines compiled for members registered
/// mid-stream. Results must match the in-process group exactly.
#[test]
fn query_group_distributes_route_targets() {
    let builder = || {
        QueryGroup::new()
            .query(WindowQuery::new(
                WindowSet::new(vec![w(20, 20), w(40, 40)]).unwrap(),
                AggregateFunction::Sum,
            ))
            .query(WindowQuery::new(
                WindowSet::new(vec![w(20, 20), w(60, 60)]).unwrap(),
                AggregateFunction::Min,
            ))
            .element_work(0)
            .collect_results(true)
    };
    let late_member = WindowQuery::new(
        WindowSet::new(vec![w(40, 40), w(60, 60)]).unwrap(),
        AggregateFunction::Count,
    );
    let events = stream(480);

    let run = |parallelism: Parallelism| {
        let mut pipeline = builder().parallelism(parallelism).build().unwrap();
        let (head, tail) = events.split_at(240);
        pipeline.push_batch(head).unwrap();
        let watermark = pipeline.watermark();
        pipeline.advance_watermark(watermark).unwrap();
        let mut collected = pipeline.poll_results();
        // A member arriving mid-stream compiles through the same backend.
        pipeline.register(late_member.clone()).unwrap();
        pipeline.push_batch(tail).unwrap();
        let out = pipeline.finish().unwrap();
        assert_eq!(out.events_processed, events.len() as u64);
        collected.extend(out.results);
        sorted_group_results(collected)
    };

    let in_process = run(Parallelism::Sequential);
    let distributed = run(Parallelism::Distributed { workers: 2 });
    assert_eq!(in_process.len(), distributed.len(), "group result count");
    for (a, b) in in_process.iter().zip(&distributed) {
        assert_eq!(a.query, b.query);
        assert_eq!(
            (
                a.result.window,
                a.result.interval,
                a.result.key,
                a.result.agg
            ),
            (
                b.result.window,
                b.result.interval,
                b.result.key,
                b.result.agg
            )
        );
        assert_eq!(a.result.value.to_bits(), b.result.value.to_bits());
    }
}

/// Column-length validation fires before anything crosses a socket.
#[test]
fn distributed_rejects_mismatched_columns() {
    let session = Session::from_query(query())
        .element_work(0)
        .parallelism(Parallelism::Distributed { workers: 1 });
    let mut pipeline = session.build().unwrap();
    let err = pipeline
        .push_columns(&[1, 2], &[0], &[1.0, 2.0])
        .unwrap_err();
    assert!(
        matches!(
            err,
            factor_windows::ApiError::Engine(
                factor_windows::engine::EngineError::ColumnLengthMismatch { .. }
            )
        ),
        "{err}"
    );
    pipeline
        .push_columns(&[1, 2], &[0, 1], &[1.0, 2.0])
        .unwrap();
    let out = pipeline.finish().unwrap();
    assert_eq!(out.events_processed, 2);
}
