//! The cost model is not just *correlated* with execution (Figure 19) —
//! in this engine it *counts* execution. One refinement is needed to make
//! that exact: the paper's recurrence count `n = 1 + (R − r)/s`
//! (Equation 1) counts the instances wholly inside one period, which for
//! hopping windows undercounts the steady-state instance-start rate `R/s`
//! by `(r − s)/s` (zero for tumbling; asymptotically negligible because
//! the paper's `R` is an lcm of many ranges, so `R ≫ r`). The engine
//! performs the steady-state work, so we check element counts against the
//! steady-state cost and separately bound the paper model's deviation.

use factor_windows::workload::SplitMix64;
use fw_core::prelude::*;
use fw_engine::{Event, PipelineOptions, PlanPipeline};

/// Steady-state cost per period: `Σ (R/s_i) · µ_i` with µ the plan-assigned
/// instance cost (η·r raw, M(W, parent) fed).
fn steady_state_cost(plan: &fw_core::QueryPlan, model: &CostModel) -> f64 {
    let exposed = plan.exposed_windows();
    let period = model.period(exposed.iter()).expect("period fits") as f64;
    let mut total = 0.0;
    for id in plan.window_nodes() {
        let w = plan.window_at(id).expect("window node");
        let instances_per_period = period / w.slide() as f64;
        let instance_cost = match plan.feeding_window(id) {
            None => (model.rate() * w.range()) as f64,
            Some(p) => {
                let parent = plan.window_at(p).expect("window node");
                f64::from(
                    u32::try_from(fw_core::coverage::covering_multiplier(w, parent))
                        .expect("small multiplier"),
                )
            }
        };
        total += instances_per_period * instance_cost;
    }
    total
}

fn count_elements(plan: &fw_core::QueryPlan, events: &[Event]) -> u64 {
    let opts = PipelineOptions {
        collect: false,
        element_work: 0,
        out_of_order: 0,
        profile: Default::default(),
    };
    let out = PlanPipeline::run(plan, events, opts).expect("plan executes");
    out.stats.elements()
}

fn assert_tracks_model(windows: &[Window], semantics: Semantics) {
    let set = WindowSet::new(windows.to_vec()).expect("non-empty");
    let query = WindowQuery::new(set, AggregateFunction::Min);
    let outcome = Optimizer::default()
        .optimize_with(&query, semantics)
        .expect("optimizes");
    let model = CostModel::default();
    let period = model.period(query.windows().iter()).expect("period fits") as u64;
    let max_range = windows.iter().map(Window::range).max().expect("non-empty");

    // A horizon long enough that boundary effects (warm-up, unsealed tail)
    // are under a percent of the total.
    let horizon = (period.max(max_range) * 8)
        .max(max_range * 200)
        .min(400_000);
    let periods = horizon as f64 / period as f64;
    let events: Vec<Event> = (0..horizon)
        .map(|t| Event::new(t, 0, (t % 101) as f64))
        .collect();

    for bundle in [&outcome.original, &outcome.rewritten, &outcome.factored] {
        let counted = count_elements(&bundle.plan, &events) as f64;
        let modeled = steady_state_cost(&bundle.plan, &model) * periods;
        let rel = (counted - modeled).abs() / modeled;
        assert!(
            rel < 0.05,
            "steady-state cost off by {:.1}% for {semantics:?} over {windows:?}: \
             counted {counted}, modeled {modeled}",
            rel * 100.0,
        );
    }
}

#[test]
fn example6_costs_count_execution() {
    assert_tracks_model(
        &[10, 20, 30, 40].map(|r| Window::tumbling(r).unwrap()),
        Semantics::PartitionedBy,
    );
}

#[test]
fn example7_costs_count_execution() {
    assert_tracks_model(
        &[20, 30, 40].map(|r| Window::tumbling(r).unwrap()),
        Semantics::PartitionedBy,
    );
}

#[test]
fn hopping_costs_count_execution() {
    assert_tracks_model(
        &[
            Window::hopping(40, 20).unwrap(),
            Window::hopping(80, 20).unwrap(),
            Window::hopping(120, 40).unwrap(),
        ],
        Semantics::CoveredBy,
    );
}

#[test]
fn paper_model_equals_steady_state_for_tumbling() {
    // For tumbling windows n = R/s exactly, so the paper's per-period cost
    // is the steady-state cost.
    let windows = [10u64, 20, 30, 40].map(|r| Window::tumbling(r).unwrap());
    let set = WindowSet::new(windows.to_vec()).unwrap();
    let query = WindowQuery::new(set, AggregateFunction::Min);
    let outcome = Optimizer::default()
        .optimize_with(&query, Semantics::PartitionedBy)
        .unwrap();
    let model = CostModel::default();
    for bundle in [&outcome.original, &outcome.rewritten, &outcome.factored] {
        let ss = steady_state_cost(&bundle.plan, &model);
        assert!(
            (ss - bundle.cost as f64).abs() < 1e-9,
            "{} vs {}",
            ss,
            bundle.cost
        );
    }
}

#[test]
fn paper_model_deviation_is_bounded_for_hopping() {
    // Equation 1 deviates from R/s by (r − s)/s instances per period:
    // relative error (r − s)/R, tiny when R is an lcm of many ranges.
    let w = Window::hopping(18, 9).unwrap();
    let period: u128 = 180;
    let n = w.recurrence_count(period).unwrap() as f64;
    let steady = period as f64 / w.slide() as f64;
    assert_eq!(
        steady - n,
        (w.range() - w.slide()) as f64 / w.slide() as f64
    );
    assert!((steady - n) / steady < (w.range() - w.slide()) as f64 / period as f64 + 1e-9);
}

#[test]
fn random_sets_count_execution() {
    let mut rng = SplitMix64::seed_from_u64(0xACC7);
    for _ in 0..24 {
        let n = rng.gen_range_inclusive_u64(2..=5) as usize;
        let windows: Vec<Window> = (0..n)
            .map(|_| {
                let s = rng.gen_range_inclusive_u64(1..=12);
                let k = rng.gen_range_inclusive_u64(1..=4);
                Window::new(s * k, s).expect("valid")
            })
            .collect();
        for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
            assert_tracks_model(&windows, semantics);
        }
    }
}
