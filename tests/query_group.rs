//! Acceptance tests for the query-group subsystem: N concurrently
//! registered queries sharing one factor-window execution.
//!
//! * **Equivalence** — a 4-query group (mixed window sets, mixed
//!   single-/multi-term SELECT lists, a holistic rider included) produces,
//!   per (query, label), results identical to 4 independent solo sessions
//!   — across every `PlanChoice` × `Parallelism::Fixed(1|2|4)` (and
//!   `Sequential`) under out-of-order input.
//! * **Dynamism** — registering and deregistering queries mid-stream at
//!   watermark boundaries keeps every surviving query's results
//!   byte-identical to an uninterrupted solo run; departing queries get
//!   exactly the instances sealed by the boundary, arriving ones exactly
//!   the instances starting after it.
//! * **Sharing** — the shared strategy pays pane maintenance once for the
//!   group (vs once per member for the unshared fallback).

use factor_windows::prelude::*;
use factor_windows::workload::SplitMix64;
use fw_core::{AggregateSpec, Window, WindowSet};
use fw_engine::sorted_results;

const KEYS: u32 = 4;
const JITTER: usize = 6;
const TOLERANCE: u64 = 8;

fn query(ranges: &[u64], funcs: &[AggregateFunction]) -> WindowQuery {
    let windows = WindowSet::new(
        ranges
            .iter()
            .map(|&r| Window::tumbling(r).unwrap())
            .collect(),
    )
    .unwrap();
    let specs = funcs.iter().map(|&f| AggregateSpec::new(f)).collect();
    WindowQuery::with_aggregates(windows, specs).unwrap()
}

/// Four correlated standing queries: overlapping window sets, shared and
/// distinct aggregate terms, one holistic rider (MEDIAN).
fn fleet() -> Vec<WindowQuery> {
    use AggregateFunction::{Avg, Count, Max, Median, Min, Sum};
    vec![
        query(&[20, 30, 40], &[Min, Max]),
        query(&[20, 40, 80], &[Sum]),
        query(&[30, 60], &[Count, Avg]),
        query(&[20, 40], &[Median, Min]),
    ]
}

fn stream(n: u64) -> Vec<Event> {
    (0..n)
        .map(|t| Event::new(t, (t % u64::from(KEYS)) as u32, ((t * 7) % 113) as f64))
        .collect()
}

/// Deterministic bounded disorder: blocks of `JITTER` events shuffled
/// independently (disorder never exceeds the reorder tolerance).
fn jittered(events: &[Event], seed: u64) -> Vec<Event> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut out = events.to_vec();
    for block in out.chunks_mut(JITTER) {
        for i in (1..block.len()).rev() {
            let j = rng.gen_index(i + 1);
            block.swap(i, j);
        }
    }
    out
}

/// Solo reference: the query run alone through a `Session` on in-order
/// input, results sorted canonically.
fn solo(query: &WindowQuery, choice: PlanChoice, events: &[Event]) -> Vec<WindowResult> {
    let session = Session::from_query(query.clone())
        .plan_choice(choice)
        .collect_results(true)
        .element_work(0);
    sorted_results(session.run_batch(events).unwrap().results)
}

/// The slice of group results owned by `id`, stripped of the query tag.
fn slice_of(results: &[GroupResult], id: QueryId) -> Vec<WindowResult> {
    results
        .iter()
        .filter(|r| r.query == id)
        .map(|r| r.result)
        .collect()
}

fn group_builder(choice: PlanChoice, parallelism: Parallelism) -> QueryGroup {
    let mut builder = QueryGroup::new()
        .plan_choice(choice)
        .parallelism(parallelism)
        .out_of_order(TOLERANCE)
        .collect_results(true)
        .element_work(0);
    for q in fleet() {
        builder = builder.query(q);
    }
    builder
}

const MATRIX: [Parallelism; 4] = [
    Parallelism::Sequential,
    Parallelism::Fixed(1),
    Parallelism::Fixed(2),
    Parallelism::Fixed(4),
];

#[test]
fn four_query_group_equals_four_solo_sessions_everywhere() {
    let ordered = stream(4800);
    let disordered = jittered(&ordered, 0xFACADE);
    for choice in [
        PlanChoice::Auto,
        PlanChoice::Original,
        PlanChoice::Rewritten,
        PlanChoice::Factored,
    ] {
        let solos: Vec<Vec<WindowResult>> =
            fleet().iter().map(|q| solo(q, choice, &ordered)).collect();
        for parallelism in MATRIX {
            let mut group = group_builder(choice, parallelism).build().unwrap();
            group.push_batch(&disordered).unwrap();
            let out = group.finish().unwrap();
            assert_eq!(out.events_processed, ordered.len() as u64);
            for (i, reference) in solos.iter().enumerate() {
                assert_eq!(
                    &sorted_results(slice_of(&out.results, QueryId(i as u32))),
                    reference,
                    "query {i} diverges under {choice:?} / {parallelism:?}"
                );
            }
        }
    }
}

#[test]
fn both_sharing_strategies_are_equivalent_and_dedup_shared_slots() {
    let ordered = stream(2400);
    let disordered = jittered(&ordered, 0xBEEF);
    let solos: Vec<Vec<WindowResult>> = fleet()
        .iter()
        .map(|q| solo(q, PlanChoice::Auto, &ordered))
        .collect();
    for policy in [SharingPolicy::Shared, SharingPolicy::Unshared] {
        let mut group = group_builder(PlanChoice::Auto, Parallelism::Fixed(2))
            .sharing(policy)
            .build()
            .unwrap();
        group.push_batch(&disordered).unwrap();
        let out = group.finish().unwrap();
        for (i, reference) in solos.iter().enumerate() {
            assert_eq!(
                &sorted_results(slice_of(&out.results, QueryId(i as u32))),
                reference,
                "query {i} diverges under {policy:?}"
            );
        }
    }
}

#[test]
fn register_and_deregister_mid_stream_match_solo_sessions() {
    let ordered = stream(4800);
    let disordered = jittered(&ordered, 0x5EED);
    let boundary = 2400usize; // multiple of JITTER: no block spans it
    let late_query = query(
        &[30, 60],
        &[AggregateFunction::Min, AggregateFunction::Count],
    );

    for choice in [PlanChoice::Auto, PlanChoice::Factored, PlanChoice::Original] {
        for parallelism in MATRIX {
            let mut group = group_builder(choice, parallelism).build().unwrap();
            group.push_batch(&disordered[..boundary]).unwrap();
            group.advance_watermark(boundary as u64).unwrap();

            // Q1 departs and the late query arrives, both at t=2400.
            group.deregister(QueryId(1)).unwrap();
            let late = group.register(late_query.clone()).unwrap();
            assert_eq!(late, QueryId(4));

            group.push_batch(&disordered[boundary..]).unwrap();
            let out = group.finish().unwrap();
            assert_eq!(out.stats.replans, 2, "{choice:?}/{parallelism:?}");

            let label = |q: usize| format!("query {q} under {choice:?}/{parallelism:?}");
            // Uninterrupted members: byte-identical to solo full-stream runs.
            for i in [0usize, 2, 3] {
                assert_eq!(
                    sorted_results(slice_of(&out.results, QueryId(i as u32))),
                    solo(&fleet()[i], choice, &ordered),
                    "{}",
                    label(i)
                );
            }
            // The departed member saw exactly the instances sealed by the
            // boundary.
            let expected_q1: Vec<WindowResult> = solo(&fleet()[1], choice, &ordered)
                .into_iter()
                .filter(|r| r.interval.end <= boundary as u64)
                .collect();
            assert!(!expected_q1.is_empty());
            assert_eq!(
                sorted_results(slice_of(&out.results, QueryId(1))),
                expected_q1,
                "{}",
                label(1)
            );
            // The late member equals a solo run over the suffix, filtered
            // to instances starting at or after registration.
            let expected_late: Vec<WindowResult> = solo(&late_query, choice, &ordered[boundary..])
                .into_iter()
                .filter(|r| r.interval.start >= boundary as u64)
                .collect();
            assert!(!expected_late.is_empty());
            assert_eq!(
                sorted_results(slice_of(&out.results, QueryId(4))),
                expected_late,
                "{}",
                label(4)
            );
        }
    }
}

#[test]
fn shared_group_pays_pane_maintenance_once() {
    // Combinable-only fleet: a holistic rider (MEDIAN) would force raw
    // feeds on every exposed window of the merged plan — a real cost the
    // group optimizer prices and lets `SharingPolicy::Auto` weigh, but
    // not the sharing effect this test pins down.
    use AggregateFunction::{Count, Max, Min, Sum};
    let combinable = [
        query(&[20, 30, 40], &[Sum]),
        query(&[20, 40, 60], &[Count]),
        query(&[30, 60, 120], &[Min]),
        query(&[20, 40, 120], &[Max]),
    ];
    let events = stream(2400);
    let run = |policy: SharingPolicy| {
        let mut builder = QueryGroup::new()
            .plan_choice(PlanChoice::Factored)
            .sharing(policy)
            .element_work(0);
        for q in &combinable {
            builder = builder.query(q.clone());
        }
        builder.run_batch(&events).unwrap().stats
    };
    let shared = run(SharingPolicy::Shared);
    let unshared = run(SharingPolicy::Unshared);
    // Unshared execution re-pays raw pane updates per member; sharing
    // folds each event into the merged topology once. The group-level
    // acceptance bar: well under half the unshared bill for 4 queries.
    assert!(
        2 * shared.updates < unshared.updates,
        "shared {} vs unshared {}",
        shared.updates,
        unshared.updates
    );
    assert!(
        shared.elements() < unshared.elements(),
        "shared {} vs unshared {}",
        shared.elements(),
        unshared.elements()
    );
}

#[test]
fn group_sql_fixture_streams_end_to_end_with_routing() {
    // FIG1_GROUP_SQL windows are in seconds (1200..7200): stream two full
    // hours so every window seals at least once.
    let mut group = QueryGroup::from_sql(fw_sql::FIG1_GROUP_SQL)
        .unwrap()
        .collect_results(true)
        .element_work(0)
        .build()
        .unwrap();
    let events: Vec<Event> = (0..7200u64)
        .map(|t| Event::new(t, (t % 3) as u32, ((t * 11) % 97) as f64))
        .collect();
    group.push_batch(&events).unwrap();
    let out = group.finish().unwrap();
    // Each of the three queries received results, each under its own label.
    let mut seen = [false; 3];
    for r in &out.results {
        seen[r.query.0 as usize] = true;
    }
    assert_eq!(seen, [true; 3]);
    // Labels resolve per query (the shared 20-minute window produces both
    // MinTemp for q0 and MaxTemp for q1).
    let w20 = Window::tumbling(1200).unwrap();
    let labels: Vec<&str> = out
        .results
        .iter()
        .filter(|r| r.result.window == w20 && r.result.interval.start == 0 && r.result.key == 0)
        .map(|r| match r.query {
            QueryId(0) => "MinTemp",
            QueryId(1) => "MaxTemp",
            _ => "?",
        })
        .collect();
    assert!(labels.contains(&"MinTemp") && labels.contains(&"MaxTemp"));
}
