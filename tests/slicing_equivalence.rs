//! Property-based equivalence of the Scotty-style slicing baseline with
//! the engine and the naive reference: every system in the Section V-F
//! comparison must compute the same answers.

use fw_core::prelude::*;
use fw_engine::{reference_results, sorted_results, Event};
use fw_slicing::execute_sliced;
use proptest::prelude::*;

fn arb_window() -> impl Strategy<Value = Window> {
    (1u64..=20, 1u64..=4).prop_map(|(s, k)| Window::new(s * k, s).expect("valid"))
}

fn arb_window_set() -> impl Strategy<Value = WindowSet> {
    proptest::collection::vec(arb_window(), 1..=5)
        .prop_map(|ws| WindowSet::new(ws).expect("non-empty"))
}

fn arb_stream() -> impl Strategy<Value = Vec<Event>> {
    // Bursty arrivals: some ticks empty, some with several keyed events.
    proptest::collection::vec((0u64..8, 0u32..3, -50i32..50), 10..300).prop_map(|specs| {
        let mut t = 0;
        let mut events = Vec::with_capacity(specs.len());
        for (gap, key, value) in specs {
            t += gap;
            events.push(Event::new(t, key, f64::from(value)));
        }
        events
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn slicing_matches_oracle(
        windows in arb_window_set(),
        events in arb_stream(),
        function in prop_oneof![
            Just(AggregateFunction::Min),
            Just(AggregateFunction::Max),
            Just(AggregateFunction::Sum),
            Just(AggregateFunction::Count),
            Just(AggregateFunction::Avg),
        ],
    ) {
        let out = execute_sliced(&windows, function, &events, true).expect("slicing runs");
        let oracle = reference_results(windows.windows(), function, &events);
        prop_assert_eq!(sorted_results(out.results), oracle);
    }

    #[test]
    fn result_counts_match_engine(windows in arb_window_set(), events in arb_stream()) {
        let query = WindowQuery::new(windows.clone(), AggregateFunction::Min);
        let outcome = Optimizer::default().optimize(&query).expect("optimizes");
        let engine = fw_engine::execute(&outcome.factored.plan, &events, false).expect("runs");
        let sliced =
            execute_sliced(&windows, AggregateFunction::Min, &events, false).expect("runs");
        prop_assert_eq!(engine.results_emitted, sliced.results_emitted);
    }
}
