//! Randomized equivalence of the Scotty-style slicing baseline with the
//! engine and the naive reference: every system in the Section V-F
//! comparison must compute the same answers. Cases come from a
//! deterministic PRNG so every run checks the same sample.

use factor_windows::prelude::*;
use factor_windows::workload::SplitMix64;
use fw_engine::{reference_results, sorted_results};
use fw_slicing::execute_sliced;

fn random_window(rng: &mut SplitMix64) -> Window {
    let s = rng.gen_range_inclusive_u64(1..=20);
    let k = rng.gen_range_inclusive_u64(1..=4);
    Window::new(s * k, s).expect("valid")
}

fn random_window_set(rng: &mut SplitMix64) -> WindowSet {
    let n = rng.gen_range_inclusive_u64(1..=5) as usize;
    WindowSet::new((0..n).map(|_| random_window(rng)).collect()).expect("non-empty")
}

/// Bursty arrivals: some ticks empty, some with several keyed events.
fn random_stream(rng: &mut SplitMix64) -> Vec<Event> {
    let n = rng.gen_range_u64(10..300) as usize;
    let mut t = 0;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        t += rng.gen_range_u64(0..8);
        let key = rng.gen_index(3) as u32;
        let value = rng.gen_range_u64(0..100) as f64 - 50.0;
        events.push(Event::new(t, key, value));
    }
    events
}

const SLICEABLE: [AggregateFunction; 5] = [
    AggregateFunction::Min,
    AggregateFunction::Max,
    AggregateFunction::Sum,
    AggregateFunction::Count,
    AggregateFunction::Avg,
];

#[test]
fn slicing_matches_oracle() {
    let mut rng = SplitMix64::seed_from_u64(0x51DE);
    for case in 0..96 {
        let windows = random_window_set(&mut rng);
        let events = random_stream(&mut rng);
        let function = SLICEABLE[rng.gen_index(SLICEABLE.len())];
        let out = execute_sliced(&windows, function, &events, true).expect("slicing runs");
        let oracle = reference_results(windows.windows(), function, &events);
        assert_eq!(
            sorted_results(out.results),
            oracle,
            "case {case}: {function} over {windows}"
        );
    }
}

#[test]
fn result_counts_match_engine() {
    let mut rng = SplitMix64::seed_from_u64(0xC0347);
    for case in 0..64 {
        let windows = random_window_set(&mut rng);
        let events = random_stream(&mut rng);
        let session =
            Session::from_query(WindowQuery::new(windows.clone(), AggregateFunction::Min))
                .element_work(0);
        let engine = session.run_batch(&events).expect("runs");
        let sliced =
            execute_sliced(&windows, AggregateFunction::Min, &events, false).expect("runs");
        assert_eq!(
            engine.results_emitted, sliced.results_emitted,
            "case {case}: {windows}"
        );
    }
}
