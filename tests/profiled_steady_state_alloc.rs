//! Steady-state allocation audit for the *instrumented* pipeline: with
//! per-plan-node counters on and the structured trace ring wired, the hot
//! loop — columnar push, watermark seal (which records a trace event per
//! boundary), periodic trace drain — must still perform **zero** heap
//! allocations. Node counters live inline in the executor, the ring
//! overwrites its oldest slot instead of growing, and draining into a
//! pre-reserved buffer reuses its capacity.
//!
//! The engine-level audit (`crates/engine/tests/steady_state_alloc.rs`)
//! covers the unprofiled path; this file holds exactly one test for the
//! same reason — the counting global allocator would attribute a
//! concurrent test's allocations to the measurement.

use factor_windows::prelude::*;
use fw_engine::{EventBatch, TraceEvent, DEFAULT_TRACE_CAP};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every allocation and
/// reallocation (deallocations are free and not counted).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn profiled_steady_state_with_trace_ring_is_allocation_free() {
    const KEYS: u64 = 8;
    const ROUND: u64 = 120; // one period of the 20/30/40 window set
    let round_columns = |start: u64| {
        let mut batch = EventBatch::with_capacity(ROUND as usize);
        for t in start..start + ROUND {
            batch.push_parts(t, (t % KEYS) as u32, (t % 13) as f64);
        }
        batch
    };

    let session = Session::from_sql(
        "SELECT k, SUM(v) FROM S GROUP BY k, \
         Windows(Window('a', TumblingWindow(second, 20)), \
                 Window('b', TumblingWindow(second, 30)), \
                 Window('c', TumblingWindow(second, 40)))",
    )
    .unwrap()
    .profiling(ProfileLevel::Counters)
    .element_work(0);
    let mut pipeline = session.build().unwrap();
    let mut trace: Vec<TraceEvent> = Vec::with_capacity(DEFAULT_TRACE_CAP);

    // Pre-build the rounds' columns so the generator's own allocations
    // stay outside the measurement.
    let warmup_rounds: Vec<EventBatch> = (0..8).map(|r| round_columns(r * ROUND)).collect();
    let measured_rounds: Vec<EventBatch> = (8..24).map(|r| round_columns(r * ROUND)).collect();

    for batch in &warmup_rounds {
        let (times, keys, values) = batch.columns();
        pipeline.push_columns(times, keys, values).unwrap();
        pipeline
            .advance_watermark(times[times.len() - 1] + 1)
            .unwrap();
        trace.clear();
        pipeline.drain_trace(&mut trace);
    }
    assert!(!trace.is_empty(), "warm-up must have recorded seal events");

    let before = allocations();
    for batch in &measured_rounds {
        let (times, keys, values) = batch.columns();
        pipeline.push_columns(times, keys, values).unwrap();
        pipeline
            .advance_watermark(times[times.len() - 1] + 1)
            .unwrap();
        trace.clear();
        pipeline.drain_trace(&mut trace);
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "profiled steady-state push/seal/trace performed {during} allocations"
    );

    // Sanity: counters flowed and the measured rounds really sealed.
    assert!(!trace.is_empty());
    assert_eq!(pipeline.trace_dropped(), 0);
    let profiles = pipeline.node_profiles();
    assert!(profiles.iter().any(|p| p.updates > 0));
    assert_eq!(pipeline.events_processed(), 24 * ROUND);
}
