//! Acceptance tests for multi-aggregate queries with shared factor-window
//! execution:
//!
//! * **Equivalence** — over the Figure 1(a) window set and out-of-order
//!   input, a `Session` with `[MIN, MAX, AVG, COUNT]` produces, per
//!   aggregate label, results identical to four independent
//!   single-aggregate sessions — across every `PlanChoice` and
//!   `Parallelism::Fixed(1|2|4)`.
//! * **Sharing** — `ExecStats` for the factored multi-aggregate plan show
//!   pane-maintenance work equal to the single-aggregate factored plan
//!   (not N×), with the per-term fan-out reported separately.

use factor_windows::prelude::*;
use factor_windows::workload::SplitMix64;
use fw_core::{AggregateSpec, Window, WindowSet};
use fw_engine::sorted_results;

const FUNCS: [AggregateFunction; 4] = [
    AggregateFunction::Min,
    AggregateFunction::Max,
    AggregateFunction::Avg,
    AggregateFunction::Count,
];

/// The Figure 1(a) window set: tumbling 20/30/40 minutes, in seconds.
fn fig1_windows() -> WindowSet {
    WindowSet::new(vec![
        Window::tumbling(1200).unwrap(),
        Window::tumbling(1800).unwrap(),
        Window::tumbling(2400).unwrap(),
    ])
    .unwrap()
}

fn multi_query() -> WindowQuery {
    let specs = FUNCS.iter().map(|&f| AggregateSpec::new(f)).collect();
    WindowQuery::with_aggregates(fig1_windows(), specs).unwrap()
}

/// One event per second across several periods (R = 7200s), keyed.
fn stream(n: u64, keys: u32) -> Vec<Event> {
    (0..n)
        .map(|t| Event::new(t, (t % u64::from(keys)) as u32, ((t * 7) % 113) as f64))
        .collect()
}

/// Shuffles a stream within a disorder bound (blocks of `jitter` events
/// Fisher-Yates-shuffled independently). Deterministic by seed.
fn jittered(events: &[Event], jitter: usize, seed: u64) -> Vec<Event> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut out = events.to_vec();
    for block in out.chunks_mut(jitter) {
        for i in (1..block.len()).rev() {
            let j = rng.gen_index(i + 1);
            block.swap(i, j);
        }
    }
    out
}

/// The slice of a multi-aggregate result set belonging to term `agg`,
/// with the tag reset so it compares equal to a single-aggregate run.
fn slice_of(results: &[WindowResult], agg: u32) -> Vec<WindowResult> {
    results
        .iter()
        .filter(|r| r.agg == agg)
        .map(|r| WindowResult { agg: 0, ..*r })
        .collect()
}

#[test]
fn multi_aggregate_session_equals_independent_sessions_everywhere() {
    let ordered = stream(3600 * 5, 4);
    let disordered = jittered(&ordered, 8, 0xFACADE);

    // Reference: four independent single-aggregate sessions on in-order
    // input (plan-choice invariance of single-aggregate sessions is
    // covered by the existing suites).
    let singles: Vec<Vec<WindowResult>> = FUNCS
        .iter()
        .map(|&f| {
            let session = Session::from_query(WindowQuery::new(fig1_windows(), f))
                .collect_results(true)
                .element_work(0);
            sorted_results(session.run_batch(&ordered).unwrap().results)
        })
        .collect();

    for choice in [
        PlanChoice::Auto,
        PlanChoice::Original,
        PlanChoice::Rewritten,
        PlanChoice::Factored,
    ] {
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
        ] {
            let session = Session::from_query(multi_query())
                .plan_choice(choice)
                .parallelism(parallelism)
                .out_of_order(8)
                .collect_results(true)
                .element_work(0);
            let mut pipeline = session.build().unwrap();
            pipeline.push_batch(&disordered).unwrap();
            let out = pipeline.finish().unwrap();
            assert_eq!(out.events_processed, ordered.len() as u64);
            let got = sorted_results(out.results);
            for (j, single) in singles.iter().enumerate() {
                assert_eq!(
                    &slice_of(&got, j as u32),
                    single,
                    "{} diverges under {choice:?} / {parallelism:?}",
                    FUNCS[j]
                );
            }
        }
    }
}

#[test]
fn factored_multi_plan_attributes_pane_work_once() {
    let events = stream(3600 * 4, 3);

    // Single-aggregate factored baseline under the same (partitioned-by)
    // semantics the joint list forces.
    let single = Session::from_query(WindowQuery::new(fig1_windows(), AggregateFunction::Sum))
        .plan_choice(PlanChoice::Factored)
        .collect_results(false)
        .element_work(0);
    let sref = single.run_batch(&events).unwrap();

    let multi = Session::from_query(multi_query())
        .plan_choice(PlanChoice::Factored)
        .collect_results(false)
        .element_work(0);
    let mout = multi.run_batch(&events).unwrap();

    // Pane maintenance is charged once for the whole 4-term list — equal
    // to the single-aggregate factored plan, not 4×.
    assert_eq!(mout.stats.updates, sref.stats.updates);
    assert_eq!(mout.stats.combines, sref.stats.combines);
    // The per-term accumulator fan-out is what scales with the list.
    assert_eq!(mout.stats.agg_ops, 4 * sref.stats.agg_ops);
    // And the modeled costs agree qualitatively: the shared plan is far
    // cheaper than four independent plans.
    let shared_cost = multi.selected_plan().unwrap().cost;
    let single_cost = single.selected_plan().unwrap().cost;
    assert!(
        shared_cost < 4 * single_cost,
        "{shared_cost} vs 4×{single_cost}"
    );
}

#[test]
fn multi_aggregate_sql_round_trips_through_session() {
    let events = stream(3600 * 3, 2);
    let session = Session::from_sql(fw_sql::FIG1_MULTI_SQL)
        .unwrap()
        .collect_results(true)
        .element_work(0);
    let mut pipeline = session.build().unwrap();
    let labels: Vec<String> = pipeline
        .aggregates()
        .iter()
        .map(|s| s.label().to_string())
        .collect();
    assert_eq!(labels, vec!["MinTemp", "MaxTemp", "AvgTemp"]);
    pipeline.push_batch(&events).unwrap();
    let out = pipeline.finish().unwrap();
    let got = sorted_results(out.results);
    assert!(!got.is_empty());
    // Each term's slice matches its independent single-aggregate session.
    for (j, f) in [
        AggregateFunction::Min,
        AggregateFunction::Max,
        AggregateFunction::Avg,
    ]
    .into_iter()
    .enumerate()
    {
        let single = Session::from_query(WindowQuery::new(fig1_windows(), f))
            .collect_results(true)
            .element_work(0);
        let sres = sorted_results(single.run_batch(&events).unwrap().results);
        assert_eq!(slice_of(&got, j as u32), sres, "{f}");
    }
}

#[test]
fn holistic_rider_joins_a_shared_plan_end_to_end() {
    // MEDIAN (holistic) in the same SELECT list as MIN/MAX: the combinable
    // terms share sub-aggregates while MEDIAN rides raw panes, in one
    // pipeline, on both backends.
    let specs = vec![
        AggregateSpec::new(AggregateFunction::Median),
        AggregateSpec::new(AggregateFunction::Min),
        AggregateSpec::new(AggregateFunction::Max),
    ];
    let query = WindowQuery::with_aggregates(fig1_windows(), specs).unwrap();
    let events = stream(3600 * 3, 3);

    let singles: Vec<Vec<WindowResult>> = [
        AggregateFunction::Median,
        AggregateFunction::Min,
        AggregateFunction::Max,
    ]
    .iter()
    .map(|&f| {
        let session = Session::from_query(WindowQuery::new(fig1_windows(), f))
            .collect_results(true)
            .element_work(0);
        sorted_results(session.run_batch(&events).unwrap().results)
    })
    .collect();

    for parallelism in [Parallelism::Sequential, Parallelism::Fixed(3)] {
        let session = Session::from_query(query.clone())
            .plan_choice(PlanChoice::Factored)
            .parallelism(parallelism)
            .collect_results(true)
            .element_work(0);
        assert!(session.selected_plan().unwrap().plan.factor_window_count() > 0);
        let got = sorted_results(session.run_batch(&events).unwrap().results);
        for (j, single) in singles.iter().enumerate() {
            assert_eq!(&slice_of(&got, j as u32), single, "term {j} diverges");
        }
    }
}
