//! Failure-mode coverage across crate boundaries: malformed inputs and
//! unsound requests must be rejected loudly, never mis-executed.

use fw_core::prelude::*;
use fw_engine::{EngineError, Event, PipelineOptions, PlanPipeline};

#[test]
fn invalid_windows_are_rejected_at_construction() {
    assert!(Window::new(10, 0).is_err());
    assert!(Window::new(10, 11).is_err());
    assert!(Window::new(10, 3).is_err()); // fractional recurrence count
    assert!(WindowSet::new(vec![]).is_err());
}

#[test]
fn out_of_order_streams_are_rejected() {
    let windows = WindowSet::new(vec![Window::tumbling(10).unwrap()]).unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Min);
    let plan = fw_core::rewrite::original_plan(&query);
    let events = vec![Event::new(10, 0, 1.0), Event::new(9, 0, 1.0)];
    let err = PlanPipeline::run(&plan, &events, PipelineOptions::default()).unwrap_err();
    assert!(matches!(
        err,
        EngineError::OutOfOrderEvent {
            at: 9,
            watermark: 10
        }
    ));
}

#[test]
fn covered_by_for_sum_is_refused_end_to_end() {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Sum);
    let err = Optimizer::default()
        .optimize_with(&query, Semantics::CoveredBy)
        .unwrap_err();
    assert!(matches!(err, fw_core::Error::IncompatibleSemantics { .. }));
}

#[test]
fn holistic_functions_never_get_subaggregate_plans() {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Median);
    // The optimizer falls back...
    let outcome = Optimizer::default().optimize(&query).unwrap();
    assert_eq!(outcome.factored.plan.factor_window_count(), 0);
    for id in outcome.factored.plan.window_nodes() {
        assert_eq!(outcome.factored.plan.feeding_window(id), None);
    }
    // ...and the engine refuses a hand-built holistic sub-aggregate plan.
    let mut builder = fw_core::plan::PlanBuilder::new(AggregateFunction::Median);
    let src = builder.source();
    let a = builder.window_agg(src, Window::tumbling(20).unwrap(), "a".into(), true);
    let b = builder.window_agg(a, Window::tumbling(40).unwrap(), "b".into(), true);
    let plan = builder.finish(vec![a, b]);
    let err =
        PlanPipeline::run(&plan, &[Event::new(0, 0, 1.0)], PipelineOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
}

#[test]
fn corrupted_plans_fail_validation_not_execution() {
    // A "union" that skips an exposed window.
    let mut builder = fw_core::plan::PlanBuilder::new(AggregateFunction::Min);
    let src = builder.source();
    let a = builder.window_agg(src, Window::tumbling(10).unwrap(), "a".into(), true);
    let b = builder.window_agg(src, Window::tumbling(20).unwrap(), "b".into(), true);
    let _ = b;
    let plan = builder.finish(vec![a]);
    assert!(plan.validate().is_err());
    let err =
        PlanPipeline::run(&plan, &[Event::new(0, 0, 1.0)], PipelineOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::InvalidPlan(_)));
}

#[test]
fn slicing_rejects_what_the_engine_rejects() {
    let windows = WindowSet::new(vec![Window::tumbling(10).unwrap()]).unwrap();
    let events = vec![Event::new(5, 0, 1.0), Event::new(1, 0, 1.0)];
    let err =
        fw_slicing::execute_sliced(&windows, AggregateFunction::Min, &events, false).unwrap_err();
    assert!(matches!(err, EngineError::OutOfOrderEvent { .. }));
    let err =
        fw_slicing::execute_sliced(&windows, AggregateFunction::Median, &[], false).unwrap_err();
    assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
}

#[test]
fn period_overflow_is_reported_not_wrapped() {
    // Ranges chosen so the lcm exceeds 128 bits.
    let primes: [u64; 16] = [
        9973, 9967, 9949, 9941, 9931, 9929, 9923, 9907, 9901, 9887, 9883, 9871, 9859, 9857, 9851,
        9839,
    ];
    let mut windows: Vec<Window> = primes
        .iter()
        .map(|&p| Window::tumbling(p * p * p * 31).unwrap())
        .collect();
    windows.push(Window::tumbling(2u64.pow(62)).unwrap());
    let set = WindowSet::new(windows).unwrap();
    let query = WindowQuery::new(set, AggregateFunction::Min);
    let err = Optimizer::default().optimize(&query).unwrap_err();
    assert!(matches!(
        err,
        fw_core::Error::PeriodOverflow | fw_core::Error::CostOverflow
    ));
}

#[test]
fn empty_streams_are_harmless_everywhere() {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::hopping(40, 20).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows.clone(), AggregateFunction::Min);
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let run =
        PlanPipeline::run(&outcome.factored.plan, &[], PipelineOptions::collecting()).unwrap();
    assert_eq!(run.results_emitted, 0);
    let sliced = fw_slicing::execute_sliced(&windows, AggregateFunction::Min, &[], true).unwrap();
    assert_eq!(sliced.results_emitted, 0);
}
