//! Failure-mode coverage across crate boundaries: malformed inputs and
//! unsound requests must be rejected loudly, never mis-executed.

use fw_core::prelude::*;
use fw_engine::{EngineError, Event, PipelineOptions, PlanPipeline};

#[test]
fn invalid_windows_are_rejected_at_construction() {
    assert!(Window::new(10, 0).is_err());
    assert!(Window::new(10, 11).is_err());
    assert!(Window::new(10, 3).is_err()); // fractional recurrence count
    assert!(WindowSet::new(vec![]).is_err());
}

#[test]
fn out_of_order_streams_are_rejected() {
    let windows = WindowSet::new(vec![Window::tumbling(10).unwrap()]).unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Min);
    let plan = fw_core::rewrite::original_plan(&query);
    let events = vec![Event::new(10, 0, 1.0), Event::new(9, 0, 1.0)];
    let err = PlanPipeline::run(&plan, &events, PipelineOptions::default()).unwrap_err();
    assert!(matches!(
        err,
        EngineError::OutOfOrderEvent {
            at: 9,
            watermark: 10
        }
    ));
}

#[test]
fn covered_by_for_sum_is_refused_end_to_end() {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Sum);
    let err = Optimizer::default()
        .optimize_with(&query, Semantics::CoveredBy)
        .unwrap_err();
    assert!(matches!(err, fw_core::Error::IncompatibleSemantics { .. }));
}

#[test]
fn holistic_functions_never_get_subaggregate_plans() {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Median);
    // The optimizer falls back...
    let outcome = Optimizer::default().optimize(&query).unwrap();
    assert_eq!(outcome.factored.plan.factor_window_count(), 0);
    for id in outcome.factored.plan.window_nodes() {
        assert_eq!(outcome.factored.plan.feeding_window(id), None);
    }
    // ...and the engine refuses a hand-built holistic sub-aggregate plan.
    let mut builder = fw_core::plan::PlanBuilder::new(AggregateFunction::Median);
    let src = builder.source();
    let a = builder.window_agg(src, Window::tumbling(20).unwrap(), "a".into(), true);
    let b = builder.window_agg(a, Window::tumbling(40).unwrap(), "b".into(), true);
    let plan = builder.finish(vec![a, b]);
    let err =
        PlanPipeline::run(&plan, &[Event::new(0, 0, 1.0)], PipelineOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
}

#[test]
fn corrupted_plans_fail_validation_not_execution() {
    // A "union" that skips an exposed window.
    let mut builder = fw_core::plan::PlanBuilder::new(AggregateFunction::Min);
    let src = builder.source();
    let a = builder.window_agg(src, Window::tumbling(10).unwrap(), "a".into(), true);
    let b = builder.window_agg(src, Window::tumbling(20).unwrap(), "b".into(), true);
    let _ = b;
    let plan = builder.finish(vec![a]);
    assert!(plan.validate().is_err());
    let err =
        PlanPipeline::run(&plan, &[Event::new(0, 0, 1.0)], PipelineOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::InvalidPlan(_)));
}

#[test]
fn slicing_rejects_what_the_engine_rejects() {
    let windows = WindowSet::new(vec![Window::tumbling(10).unwrap()]).unwrap();
    let events = vec![Event::new(5, 0, 1.0), Event::new(1, 0, 1.0)];
    let err =
        fw_slicing::execute_sliced(&windows, AggregateFunction::Min, &events, false).unwrap_err();
    assert!(matches!(err, EngineError::OutOfOrderEvent { .. }));
    let err =
        fw_slicing::execute_sliced(&windows, AggregateFunction::Median, &[], false).unwrap_err();
    assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
}

#[test]
fn period_overflow_is_reported_not_wrapped() {
    // Ranges chosen so the lcm exceeds 128 bits.
    let primes: [u64; 16] = [
        9973, 9967, 9949, 9941, 9931, 9929, 9923, 9907, 9901, 9887, 9883, 9871, 9859, 9857, 9851,
        9839,
    ];
    let mut windows: Vec<Window> = primes
        .iter()
        .map(|&p| Window::tumbling(p * p * p * 31).unwrap())
        .collect();
    windows.push(Window::tumbling(2u64.pow(62)).unwrap());
    let set = WindowSet::new(windows).unwrap();
    let query = WindowQuery::new(set, AggregateFunction::Min);
    let err = Optimizer::default().optimize(&query).unwrap_err();
    assert!(matches!(
        err,
        fw_core::Error::PeriodOverflow | fw_core::Error::CostOverflow
    ));
}

#[test]
fn deregistration_mid_batch_does_not_poison_the_group() {
    use factor_windows::{ApiError, Parallelism, QueryGroup, QueryId};

    let q_min = "SELECT k, MIN(v) AS Lo FROM S GROUP BY k, \
         Windows(Window('a', TumblingWindow(second, 10)), \
                 Window('b', TumblingWindow(second, 30)))";
    let q_sum = "SELECT k, SUM(v) AS Total FROM S GROUP BY k, \
         Windows(Window('a', TumblingWindow(second, 10)), \
                 Window('c', TumblingWindow(second, 20)))";
    let times: Vec<u64> = (0..300).collect();
    let keys: Vec<u32> = times.iter().map(|t| (t % 3) as u32).collect();
    let values: Vec<f64> = times.iter().map(|t| ((t * 7) % 23) as f64).collect();

    let mut group = QueryGroup::new()
        .parallelism(Parallelism::Fixed(2))
        .collect_results(true)
        .element_work(0)
        .sql(q_min)
        .unwrap()
        .sql(q_sum)
        .unwrap()
        .build()
        .unwrap();

    // A member leaves between two pushes of the same logical batch; the
    // plan swap must not corrupt the survivor's in-flight state.
    group
        .push_columns(&times[..150], &keys[..150], &values[..150])
        .unwrap();
    group.advance_watermark(150).unwrap();
    group.deregister(QueryId(1)).unwrap();

    // Deregistering again (or an id that never existed) is a loud error,
    // never a panic — and it must leave the group fully operational.
    assert!(matches!(
        group.deregister(QueryId(1)),
        Err(ApiError::UnknownQuery { id: QueryId(1) })
    ));
    assert!(matches!(
        group.deregister(QueryId(9)),
        Err(ApiError::UnknownQuery { id: QueryId(9) })
    ));
    // The last member cannot leave: a facade group is never empty.
    assert!(group.deregister(QueryId(0)).is_err());
    assert_eq!(group.queries(), vec![QueryId(0)]);

    group
        .push_columns(&times[150..], &keys[150..], &values[150..])
        .unwrap();
    let out = group.finish().unwrap();

    // The survivor's stream is complete and exclusively its own: MIN
    // rows for every sealed instance, before and after the swap.
    let survivor: Vec<_> = out
        .results
        .iter()
        .filter(|r| r.query == QueryId(0))
        .collect();
    assert!(survivor.iter().any(|r| r.result.interval.end > 150));
    assert!(out
        .results
        .iter()
        .filter(|r| r.query == QueryId(1))
        .all(|r| r.result.interval.end <= 150));
    // 300 events over tumbling 10 × 3 keys = 90 'a' rows, plus 10 'b'
    // rows per key: the survivor lost nothing in the swap.
    assert_eq!(survivor.len(), 90 + 30);
}

#[test]
fn dropped_group_pipeline_without_finish_is_clean_teardown() {
    use factor_windows::{Parallelism, QueryGroup};

    // Sharded pipelines own worker threads; dropping one mid-stream
    // (no finish, results still buffered) must neither panic nor hang.
    for _ in 0..3 {
        let mut group = QueryGroup::new()
            .parallelism(Parallelism::Fixed(2))
            .collect_results(true)
            .element_work(0)
            .sql(
                "SELECT k, MIN(v) AS Lo FROM S GROUP BY k, \
                  Windows(Window('w', TumblingWindow(second, 10)))",
            )
            .unwrap()
            .build()
            .unwrap();
        group
            .push_columns(&[1, 2, 3, 40], &[0, 1, 2, 0], &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        group.advance_watermark(20).unwrap();
        drop(group);
    }
}

#[test]
fn dropped_serve_connection_is_not_a_failure_for_anyone_else() {
    use factor_windows::serve::{ServeClient, ServeConfig, Server};
    use std::io::Write;
    use std::time::{Duration, Instant};

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let metrics = server.metrics();
    let mut handle = server.spawn();

    let mut survivor = ServeClient::connect(addr).unwrap();
    survivor
        .register(
            "SELECT k, MIN(v) AS Lo FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(second, 10)))",
        )
        .unwrap();

    // Casualty #1 vanishes mid-stream with a registered query and a
    // half-pushed batch sequence.
    let mut casualty = ServeClient::connect(addr).unwrap();
    casualty
        .register(
            "SELECT k, SUM(v) AS Total FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(second, 10)))",
        )
        .unwrap();
    casualty
        .push_columns(&[1, 2], &[0, 1], &[5.0, 6.0])
        .unwrap();
    // Barrier: the stats reply proves the engine consumed the push, so
    // the survivor's later (higher-timestamped) stream cannot race it
    // through a different connection's queue.
    casualty.stats_json().unwrap();
    drop(casualty);

    // Casualty #2 never even says Hello: it writes half a frame header
    // and hangs up.
    let mut rude = std::net::TcpStream::connect(addr).unwrap();
    rude.write_all(&[0xff, 0xff]).unwrap();
    drop(rude);

    // The survivor streams on: push, watermark, results, stats.
    survivor
        .push_columns(&[3, 4, 15], &[0, 1, 2], &[7.0, 8.0, 9.0])
        .unwrap();
    survivor.watermark(30).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    while survivor.results().is_empty() {
        assert!(Instant::now() < deadline, "survivor starved");
        survivor.poll(Duration::from_millis(50)).unwrap();
    }
    // Teardown is idempotent: the casualty's query left exactly once and
    // the shared group kept executing without a single push error.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let snapshot = metrics.snapshot();
        if snapshot.registered_queries == 1 {
            assert!(snapshot.deregistrations >= 1);
            assert_eq!(snapshot.push_errors, 0);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "casualty never cleaned up: {snapshot:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.stop();
}

#[test]
fn engine_panic_does_not_strand_readers_or_writers() {
    use factor_windows::serve::{ServeClient, ServeConfig, Server, FAULT_PANIC_SQL};
    use std::time::{Duration, Instant};

    let config = ServeConfig {
        fault_injection: true,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let metrics = server.metrics();
    let mut handle = server.spawn();

    // A bystander with a live query and data in flight.
    let mut bystander = ServeClient::connect(addr).unwrap();
    bystander
        .register(
            "SELECT k, MIN(v) AS Lo FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(second, 10)))",
        )
        .unwrap();
    bystander
        .push_columns(&[1, 2, 3], &[0, 1, 2], &[5.0, 6.0, 7.0])
        .unwrap();
    bystander.stats_json().unwrap();

    // The attacker trips the engine-thread fault hook. The panic must
    // not strand anyone: every outstanding blocking call fails within
    // the deadline instead of hanging on a dead engine.
    let mut attacker = ServeClient::connect(addr).unwrap();
    assert!(attacker.register(FAULT_PANIC_SQL).is_err());

    // The bystander's connection is torn down too (fail-stop beats a
    // silently dead server): its next blocking round-trip errors out.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let _ = bystander.push_columns(&[10], &[0], &[1.0]);
        if bystander.stats_json().is_err() {
            break;
        }
        assert!(Instant::now() < deadline, "bystander never saw the crash");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(metrics.snapshot().engine_panics, 1);
    // And the server thread itself winds down instead of hanging.
    handle.stop();
}

#[test]
fn dropped_connection_during_checkpointing_never_tears_the_snapshot() {
    use factor_windows::serve::{ServeClient, ServeConfig, Server};
    use std::time::{Duration, Instant};

    let path = std::env::temp_dir().join(format!("fw_ckpt_atomicity_{}.fwc", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = ServeConfig {
        checkpoint_path: Some(path.clone()),
        checkpoint_every: 1, // every watermark announcement persists
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let metrics = server.metrics();
    let mut handle = server.spawn();

    let mut bystander = ServeClient::connect(addr).unwrap();
    let query_id = bystander
        .register(
            "SELECT k, SUM(v) AS Total FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(second, 10)))",
        )
        .unwrap();

    // The casualty holds a query and vanishes abruptly mid-stream while
    // the server is checkpointing on every watermark.
    let mut casualty = ServeClient::connect(addr).unwrap();
    casualty
        .register(
            "SELECT k, MIN(v) AS Lo FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(second, 10)))",
        )
        .unwrap();
    casualty
        .push_columns(&[1, 2], &[0, 1], &[5.0, 6.0])
        .unwrap();
    casualty.stats_json().unwrap();
    drop(casualty);

    // The bystander keeps streaming through the disconnect, driving
    // more checkpoint writes concurrent with the teardown.
    for round in 0u64..5 {
        let t = 10 * round + 3;
        bystander
            .push_columns(&[t, t + 1], &[0, 1], &[1.0, 2.0])
            .unwrap();
        bystander.watermark(10 * round + 5).unwrap();
    }
    let bytes = bystander.checkpoint().unwrap();
    assert!(bytes > 0);
    let deadline = Instant::now() + Duration::from_secs(20);
    while bystander.results().is_empty() {
        assert!(Instant::now() < deadline, "bystander starved");
        bystander.poll(Duration::from_millis(50)).unwrap();
    }
    let snapshot = metrics.snapshot();
    assert!(snapshot.checkpoints_written >= 1);
    assert_eq!(snapshot.checkpoint_errors, 0);
    handle.stop();

    // The snapshot on disk is complete and valid — binding a new server
    // from it fully parses and revalidates every byte. The bystander's
    // query comes back orphaned and is re-adopted by Resume.
    let restored = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            restore_from: Some(path.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = restored.local_addr().unwrap();
    let mut handle = restored.spawn();
    let mut reconnected = ServeClient::connect(addr).unwrap();
    let (events, watermark) = reconnected.resume(query_id).unwrap();
    assert!(events > 0, "resume lost the replay cursor");
    assert!(watermark > 0, "resume lost the watermark");
    // Resuming a second time (or a made-up id) is a loud error.
    assert!(reconnected.resume(query_id).is_err());
    assert!(reconnected.resume(940_221).is_err());
    handle.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_streams_are_harmless_everywhere() {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::hopping(40, 20).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows.clone(), AggregateFunction::Min);
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let run =
        PlanPipeline::run(&outcome.factored.plan, &[], PipelineOptions::collecting()).unwrap();
    assert_eq!(run.results_emitted, 0);
    let sliced = fw_slicing::execute_sliced(&windows, AggregateFunction::Min, &[], true).unwrap();
    assert_eq!(sliced.results_emitted, 0);
}
