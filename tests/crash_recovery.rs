//! Crash-recovery matrix: checkpoint → kill → restore → replay must be
//! bit-identical to an uninterrupted oracle at every kill point, across
//! plan choices, backends, shard counts (including elastic rescale),
//! and bounded disorder. Driven by the `fw_harness::fault` harness.
//!
//! Cost-model accounting is deliberately NOT compared — a restored
//! pipeline re-merges accumulators, so its `combines` count
//! legitimately differs from the oracle's.

use factor_windows::{Parallelism, PlanChoice, Session};
use fw_core::{AggregateFunction, Window, WindowQuery, WindowSet};
use fw_engine::Event;
use fw_harness::{result_bits, CrashCycle, KillPoint};
use fw_workload::SplitMix64;

const EVENTS: u64 = 400;
const BATCH: usize = 7;
const WATERMARK_EVERY: u64 = 50;

fn query(function: AggregateFunction) -> WindowQuery {
    let windows = WindowSet::new(vec![
        Window::tumbling(10).unwrap(),
        Window::tumbling(20).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    WindowQuery::new(windows, function)
}

fn session(
    function: AggregateFunction,
    choice: PlanChoice,
    parallelism: Parallelism,
    disorder: u64,
) -> Session {
    Session::from_query(query(function))
        .plan_choice(choice)
        .parallelism(parallelism)
        .out_of_order(disorder)
        .collect_results(true)
        .durable(true)
}

/// An almost-ordered stream: arrival order is event time plus jitter
/// below `disorder`.
fn stream(n: u64, disorder: u64, seed: u64) -> Vec<Event> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut arrivals: Vec<(u64, Event)> = (0..n)
        .map(|t| {
            let key = (rng.next_u64() % 5) as u32;
            let value = ((t.wrapping_mul(7) + u64::from(key)) % 101) as f64 - 50.0;
            let jitter = if disorder == 0 {
                0
            } else {
                rng.next_u64() % disorder
            };
            (t + jitter, Event::new(t, key, value))
        })
        .collect();
    arrivals.sort_by_key(|&(arrival, event)| (arrival, event.time));
    arrivals.into_iter().map(|(_, event)| event).collect()
}

#[test]
fn every_kill_point_recovers_bit_identically_across_the_matrix() {
    let backends = [
        Parallelism::Sequential,
        Parallelism::Fixed(1),
        Parallelism::Fixed(2),
        Parallelism::Fixed(4),
    ];
    for choice in PlanChoice::CONCRETE {
        for parallelism in backends {
            for disorder in [0u64, 16] {
                let events = stream(EVENTS, disorder, 0xC0FFEE ^ disorder);
                let session = session(AggregateFunction::Sum, choice, parallelism, disorder);
                let cycle = CrashCycle::new(&session, &events, BATCH, WATERMARK_EVERY, disorder);
                let oracle = result_bits(&cycle.oracle().unwrap());
                assert!(!oracle.is_empty());
                for kill in KillPoint::ALL {
                    let outcome = cycle.run(kill).unwrap();
                    assert!(outcome.checkpoint_bytes > 0);
                    assert_eq!(
                        result_bits(&outcome.results),
                        oracle,
                        "{choice:?}/{parallelism:?}/disorder={disorder}/{kill:?} diverged \
                         (cut at {})",
                        outcome.cut,
                    );
                }
            }
        }
    }
}

#[test]
fn holistic_aggregates_recover_bit_identically() {
    for kill in KillPoint::ALL {
        let events = stream(EVENTS, 8, 0xBEEF);
        let session = session(
            AggregateFunction::Median,
            PlanChoice::Auto,
            Parallelism::Fixed(2),
            8,
        );
        let cycle = CrashCycle::new(&session, &events, BATCH, WATERMARK_EVERY, 8);
        let oracle = result_bits(&cycle.oracle().unwrap());
        let outcome = cycle.run(kill).unwrap();
        assert_eq!(result_bits(&outcome.results), oracle, "{kill:?} diverged");
    }
}

/// Elastic rescale through the Session API: a snapshot taken at 2
/// shards restored into 4 and then into a single-threaded pipeline,
/// each replaying the identical suffix to byte-identical results,
/// across every concrete plan choice.
#[test]
fn session_rescale_two_to_four_to_one_is_byte_identical() {
    for choice in PlanChoice::CONCRETE {
        let events = stream(EVENTS, 0, 0xD15C);
        let cut = 200;

        let at = |parallelism| session(AggregateFunction::Sum, choice, parallelism, 0);
        let origin = at(Parallelism::Fixed(2));
        let mut pipeline = origin.build().unwrap();
        pipeline.push_batch(&events[..cut]).unwrap();
        let mut delivered = pipeline.poll_results();
        let mut snapshot = Vec::new();
        pipeline.checkpoint(&mut snapshot).unwrap();
        drop(pipeline);

        let finish = |parallelism| {
            let session = at(parallelism);
            let mut replica = session.restore(&mut snapshot.as_slice()).unwrap();
            let mut results = delivered.clone();
            replica.push_batch(&events[cut..]).unwrap();
            results.extend(replica.finish().unwrap().results);
            result_bits(&results)
        };
        let four = finish(Parallelism::Fixed(4));
        let one = finish(Parallelism::Sequential);
        assert!(!four.is_empty());
        assert_eq!(four, one, "{choice:?}: rescaled replicas diverged");

        // And against the uninterrupted oracle at the origin width.
        let mut oracle = at(Parallelism::Fixed(2)).build().unwrap();
        oracle.push_batch(&events).unwrap();
        let oracle = result_bits(&oracle.finish().unwrap().results);
        assert_eq!(four, oracle, "{choice:?}: rescale diverged from oracle");
        delivered.clear();
    }
}

// ---------------------------------------------------------------------
// Golden snapshot fixture: bytes written by a past build must keep
// restoring (format stability). Regenerate deliberately with
//   cargo test -q --test crash_recovery -- --ignored regenerate
// and commit the new fixture alongside a format-version bump.
// ---------------------------------------------------------------------

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_checkpoint_v1.fwc"
);
const FIXTURE_CUT: usize = 200;

fn fixture_session() -> Session {
    session(
        AggregateFunction::Sum,
        PlanChoice::Factored,
        Parallelism::Fixed(2),
        8,
    )
}

fn fixture_stream() -> Vec<Event> {
    stream(EVENTS, 8, 0x601D)
}

#[test]
#[ignore = "writes the committed golden fixture; run once per format version"]
fn regenerate_golden_fixture() {
    let events = fixture_stream();
    let mut pipeline = fixture_session().build().unwrap();
    pipeline.push_batch(&events[..FIXTURE_CUT]).unwrap();
    let _ = pipeline.poll_results();
    let mut snapshot = Vec::new();
    pipeline.checkpoint(&mut snapshot).unwrap();
    std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
    std::fs::write(FIXTURE, &snapshot).unwrap();
}

#[test]
fn golden_fixture_restores_and_replays() {
    let snapshot = std::fs::read(FIXTURE).expect(
        "golden fixture missing — run the ignored regenerate_golden_fixture test and commit it",
    );
    let events = fixture_stream();
    let session = fixture_session();
    let mut replica = session.restore(&mut snapshot.as_slice()).unwrap();
    assert_eq!(replica.events_processed(), FIXTURE_CUT as u64);
    replica.push_batch(&events[FIXTURE_CUT..]).unwrap();
    let replayed = result_bits(&replica.finish().unwrap().results);

    // The fixture's pre-checkpoint rows were already delivered to its
    // writer, so compare the *suffix* against a live oracle that drains
    // at the same cut.
    let mut oracle = fixture_session().build().unwrap();
    oracle.push_batch(&events[..FIXTURE_CUT]).unwrap();
    let _ = oracle.poll_results();
    oracle.push_batch(&events[FIXTURE_CUT..]).unwrap();
    let expect = result_bits(&oracle.finish().unwrap().results);
    assert_eq!(replayed, expect, "golden fixture replay diverged");
}
