//! Columnar ingestion equivalence: `push_columns` == `push_batch` ==
//! per-event `push`, bit-for-bit, across every plan choice, backend,
//! disorder setting, aggregate list, and the query-group façade.
//!
//! The columnar path run-slices batches and folds key sub-runs through a
//! single hash probe; none of that may change a single result bit
//! relative to the sequential per-event oracle.

use factor_windows::engine::{sorted_results, Event, EventBatch, WindowResult};
use factor_windows::{GroupPipeline, Parallelism, PlanChoice, QueryGroup, Session};
use fw_core::{AggregateFunction, AggregateSpec, WindowQuery, WindowSet};
use fw_engine::sorted_group_results;

fn w(r: u64, s: u64) -> fw_core::Window {
    fw_core::Window::new(r, s).unwrap()
}

/// Streams with three key layouts: round-robin keys (every adjacent pair
/// differs), keyed runs (the shared-probe fold path), and a single key
/// (whole runs collapse to one probe).
fn streams(n: u64) -> Vec<Vec<Event>> {
    let value = |t: u64| ((t * 7) % 23) as f64 - 3.0;
    vec![
        (0..n)
            .map(|t| Event::new(t, (t % 5) as u32, value(t)))
            .collect(),
        (0..n)
            .map(|t| Event::new(t, ((t / 8) % 3) as u32, value(t)))
            .collect(),
        (0..n).map(|t| Event::new(t, 0, value(t))).collect(),
    ]
}

fn jitter(events: &[Event]) -> Vec<Event> {
    let mut jittered = events.to_vec();
    for chunk in jittered.chunks_mut(4) {
        chunk.reverse();
    }
    jittered
}

#[derive(Clone, Copy, Debug)]
enum Mode {
    PerEvent,
    Batch,
    Columns,
}

const MODES: [Mode; 3] = [Mode::PerEvent, Mode::Batch, Mode::Columns];

/// Feeds `events` through one freshly built pipeline in the given mode,
/// with mid-stream watermarks and polls, and returns the sorted results.
fn run_mode(session: &Session, events: &[Event], mode: Mode) -> Vec<WindowResult> {
    let mut pipeline = session.build().unwrap();
    let mut collected = Vec::new();
    for (round, chunk) in events.chunks(97).enumerate() {
        match mode {
            Mode::PerEvent => {
                for &event in chunk {
                    pipeline.push(event).unwrap();
                }
            }
            Mode::Batch => pipeline.push_batch(chunk).unwrap(),
            Mode::Columns => {
                let batch = EventBatch::from_events(chunk);
                let (times, keys, values) = batch.columns();
                pipeline.push_columns(times, keys, values).unwrap();
            }
        }
        if round % 2 == 1 {
            let watermark = pipeline.watermark();
            pipeline.advance_watermark(watermark).unwrap();
            collected.extend(pipeline.poll_results());
        }
    }
    let tail = pipeline.finish().unwrap();
    collected.extend(tail.results);
    sorted_results(collected)
}

/// Bit-exact comparison: `f64` payloads are compared by representation,
/// not `PartialEq`, so the check is strictly "byte-identical".
fn assert_bit_identical(oracle: &[WindowResult], got: &[WindowResult], context: &str) {
    assert_eq!(oracle.len(), got.len(), "{context}: result count");
    for (a, b) in oracle.iter().zip(got) {
        assert_eq!(a.window, b.window, "{context}");
        assert_eq!(a.interval, b.interval, "{context}");
        assert_eq!(a.key, b.key, "{context}");
        assert_eq!(a.agg, b.agg, "{context}");
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "{context}: value bits for {:?} vs {:?}",
            a,
            b
        );
    }
}

fn equivalence_matrix(query: &WindowQuery, n: u64) {
    for events in streams(n) {
        for (disorder, input) in [(0u64, events.clone()), (4, jitter(&events))] {
            // Oracle: sequential, per-event, in-order-repaired stream.
            let oracle_session = Session::from_query(query.clone())
                .plan_choice(PlanChoice::Original)
                .out_of_order(disorder)
                .element_work(0)
                .collect_results(true);
            let oracle = run_mode(&oracle_session, &input, Mode::PerEvent);
            assert!(!oracle.is_empty());
            for choice in PlanChoice::CONCRETE {
                for parallelism in [
                    Parallelism::Sequential,
                    Parallelism::Fixed(1),
                    Parallelism::Fixed(2),
                    Parallelism::Fixed(4),
                ] {
                    let session = Session::from_query(query.clone())
                        .plan_choice(choice)
                        .parallelism(parallelism)
                        .out_of_order(disorder)
                        .element_work(0)
                        .collect_results(true);
                    for mode in MODES {
                        let got = run_mode(&session, &input, mode);
                        assert_bit_identical(
                            &oracle,
                            &got,
                            &format!("{choice} / {parallelism:?} / disorder={disorder} / {mode:?}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn single_aggregate_tumbling() {
    let windows = WindowSet::new(vec![w(20, 20), w(30, 30), w(40, 40)]).unwrap();
    equivalence_matrix(&WindowQuery::new(windows, AggregateFunction::Min), 500);
}

#[test]
fn single_aggregate_hopping() {
    // Hopping windows exercise multi-instance runs (each run folds into
    // r/s panes) under covered-by semantics.
    let windows = WindowSet::new(vec![w(20, 10), w(40, 20), w(60, 30)]).unwrap();
    equivalence_matrix(&WindowQuery::new(windows, AggregateFunction::Max), 400);
}

#[test]
fn sum_is_order_sensitive_enough_to_catch_refolds() {
    // SUM is the strictest bit-identity probe: floating-point addition is
    // not associative, so any reordering of a key's per-event folds would
    // change result bits.
    let windows = WindowSet::new(vec![w(20, 20), w(30, 30), w(40, 40)]).unwrap();
    equivalence_matrix(&WindowQuery::new(windows, AggregateFunction::Sum), 450);
}

#[test]
fn multi_aggregate_with_holistic_rider() {
    let windows = WindowSet::new(vec![w(20, 20), w(30, 30), w(40, 40)]).unwrap();
    let specs = vec![
        AggregateSpec::new(AggregateFunction::Min),
        AggregateSpec::new(AggregateFunction::Avg),
        AggregateSpec::new(AggregateFunction::Count),
        AggregateSpec::new(AggregateFunction::Median),
    ];
    let query = WindowQuery::with_aggregates(windows, specs).unwrap();
    equivalence_matrix(&query, 400);
}

/// The query-group façade: columnar pushes route exactly like per-event
/// pushes for every member of a shared group.
#[test]
fn query_group_routes_columns_identically() {
    let group = || {
        QueryGroup::new()
            .query(WindowQuery::new(
                WindowSet::new(vec![w(20, 20), w(40, 40)]).unwrap(),
                AggregateFunction::Sum,
            ))
            .query(WindowQuery::new(
                WindowSet::new(vec![w(20, 20), w(60, 60)]).unwrap(),
                AggregateFunction::Min,
            ))
            .query(WindowQuery::new(
                WindowSet::new(vec![w(40, 40), w(60, 60)]).unwrap(),
                AggregateFunction::Count,
            ))
            .element_work(0)
            .collect_results(true)
    };
    let events = &streams(480)[0];
    let feed = |mode: Mode| {
        let mut pipeline: GroupPipeline = group().build().unwrap();
        for chunk in events.chunks(120) {
            match mode {
                Mode::PerEvent => {
                    for &event in chunk {
                        pipeline.push(event).unwrap();
                    }
                }
                Mode::Batch => pipeline.push_batch(chunk).unwrap(),
                Mode::Columns => {
                    let batch = EventBatch::from_events(chunk);
                    let (times, keys, values) = batch.columns();
                    pipeline.push_columns(times, keys, values).unwrap();
                }
            }
        }
        let out = pipeline.finish().unwrap();
        assert_eq!(out.events_processed, 480, "{mode:?}");
        sorted_group_results(out.results)
    };
    let oracle = feed(Mode::PerEvent);
    assert!(!oracle.is_empty());
    for mode in [Mode::Batch, Mode::Columns] {
        let got = feed(mode);
        assert_eq!(oracle.len(), got.len(), "{mode:?}");
        for (a, b) in oracle.iter().zip(&got) {
            assert_eq!(a.query, b.query, "{mode:?}");
            assert_eq!(a.result.window, b.result.window, "{mode:?}");
            assert_eq!(a.result.interval, b.result.interval, "{mode:?}");
            assert_eq!(a.result.key, b.result.key, "{mode:?}");
            assert_eq!(a.result.agg, b.result.agg, "{mode:?}");
            assert_eq!(
                a.result.value.to_bits(),
                b.result.value.to_bits(),
                "{mode:?}"
            );
        }
    }
}

/// Column slices of unequal length are rejected up front on both
/// backends, with nothing partially fed.
#[test]
fn mismatched_columns_are_rejected() {
    let windows = WindowSet::new(vec![w(20, 20)]).unwrap();
    for parallelism in [Parallelism::Sequential, Parallelism::Fixed(2)] {
        let session =
            Session::from_query(WindowQuery::new(windows.clone(), AggregateFunction::Sum))
                .element_work(0)
                .parallelism(parallelism);
        let mut pipeline = session.build().unwrap();
        let err = pipeline
            .push_columns(&[1, 2], &[0], &[1.0, 2.0])
            .unwrap_err();
        assert!(
            matches!(
                err,
                factor_windows::ApiError::Engine(
                    factor_windows::engine::EngineError::ColumnLengthMismatch { .. }
                )
            ),
            "{parallelism:?}: {err}"
        );
        pipeline
            .push_columns(&[1, 2], &[0, 1], &[1.0, 2.0])
            .unwrap();
        let out = pipeline.finish().unwrap();
        assert_eq!(out.events_processed, 2);
    }
}
