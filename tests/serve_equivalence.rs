//! End-to-end serving equivalence: the TCP server, driven by the
//! deterministic load generator over loopback, must deliver result rows
//! that are bit-identical (`f64::to_bits`) to the same queries run
//! through the in-process [`QueryGroup`] pipeline — under bounded
//! disorder and sharded execution (`Parallelism::Fixed(2)`).
//!
//! The load generator's stream is a pure function of its config
//! ([`fw_serve::stream_plan`]), so the reference pipeline replays the
//! exact batches and watermarks the feeder wrote to the wire.

use factor_windows::serve::host::HostConfig;
use factor_windows::serve::loadgen::{stream_plan, LoadGenConfig, PROBE_SQL};
use factor_windows::serve::{ServeConfig, Server};
use factor_windows::{GroupResult, Parallelism, QueryGroup, QueryId};

/// Three overlapping FIG1-style queries: MIN/MAX of the same stream over
/// correlated tumbling windows that share ranges across members, so the
/// group optimizer actually factors work between them.
const FLEET: [&str; 3] = [
    "SELECT k, MIN(v) AS MinTemp FROM S GROUP BY k, \
     Windows(Window('20 s', TumblingWindow(second, 20)), \
             Window('40 s', TumblingWindow(second, 40)))",
    "SELECT k, MIN(v) AS MinWide FROM S GROUP BY k, \
     Windows(Window('20 s', TumblingWindow(second, 20)), \
             Window('30 s', TumblingWindow(second, 30)), \
             Window('60 s', TumblingWindow(second, 60)))",
    "SELECT k, MAX(v) AS MaxTemp FROM S GROUP BY k, \
     Windows(Window('30 s', TumblingWindow(second, 30)), \
             Window('90 s', TumblingWindow(second, 90)))",
];

const DISORDER: u64 = 4;

fn sorted(mut rows: Vec<GroupResult>) -> Vec<GroupResult> {
    rows.sort_by_key(|r| {
        (
            r.query.0,
            r.result.window.range(),
            r.result.window.slide(),
            r.result.interval.start,
            r.result.key,
            r.result.agg,
        )
    });
    rows
}

fn assert_bit_identical(label: &str, served: &[GroupResult], reference: &[GroupResult]) {
    assert_eq!(
        served.len(),
        reference.len(),
        "{label}: row count mismatch ({} served, {} reference)",
        served.len(),
        reference.len()
    );
    for (s, e) in served.iter().zip(reference) {
        assert_eq!(s.query, e.query, "{label}: routed to the wrong query");
        assert_eq!(s.result.window, e.result.window, "{label}: window mismatch");
        assert_eq!(
            s.result.interval, e.result.interval,
            "{label}: interval mismatch"
        );
        assert_eq!(
            (s.result.key, s.result.agg),
            (e.result.key, e.result.agg),
            "{label}: key/agg mismatch"
        );
        assert_eq!(
            s.result.value.to_bits(),
            e.result.value.to_bits(),
            "{label}: value bits differ at {:?}: {} vs {}",
            s.result.interval,
            s.result.value,
            e.result.value
        );
    }
}

#[test]
fn served_rows_are_bit_identical_to_in_process_group_pipeline() {
    let host = HostConfig {
        out_of_order: DISORDER,
        parallelism: Parallelism::Fixed(2),
        element_work: 0,
        ..HostConfig::default()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            host,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();

    let config = LoadGenConfig {
        clients: 3,
        events: 12_000,
        batch: 256,
        watermark_every: 1024,
        keys: 5,
        disorder: DISORDER,
        seed: 11,
        queries: FLEET.iter().map(|q| (*q).to_string()).collect(),
        collect: true,
        ..LoadGenConfig::default()
    };
    let report = factor_windows::serve::run_load(addr, &config).unwrap();
    handle.stop();

    // Sanity on the serving side before comparing: everything the feeder
    // sent was accepted (Block overflow — nothing shed), all four
    // queries stood registered, and the probe latency sampler fired.
    assert_eq!(report.events_sent, config.events);
    assert_eq!(report.snapshot.events_in, config.events);
    assert_eq!(report.snapshot.batches_shed, 0);
    assert_eq!(report.snapshot.results_dropped, 0);
    assert_eq!(report.snapshot.registered_queries, 4);
    assert_eq!(report.snapshot.push_errors, 0);
    assert!(report.latency_samples > 0, "probe latency never sampled");
    assert!(report.rows_delivered > 0);

    // The subscribers registered concurrently, so the server's id
    // assignment over the three SQL texts is a permutation. Rebuild the
    // reference group in *server id order* so QueryId(i) means the same
    // query on both sides; the feeder's probe always registers last.
    let mut by_id: Vec<(u32, usize)> = report
        .clients
        .iter()
        .map(|c| (c.query_id, c.sql_index))
        .collect();
    by_id.sort_unstable();
    assert_eq!(
        by_id.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    assert_eq!(report.probe.query_id, 3);

    let mut builder = QueryGroup::new()
        .out_of_order(DISORDER)
        .parallelism(Parallelism::Fixed(2))
        .element_work(0)
        .collect_results(true);
    for &(_, sql_index) in &by_id {
        builder = builder.sql(FLEET[sql_index]).unwrap();
    }
    builder = builder.sql(PROBE_SQL).unwrap();
    let mut reference = builder.build().unwrap();

    // Replay the identical wire stream: same batches, same watermark
    // announcements, same final sealing watermark.
    let plan = stream_plan(&config);
    for (i, batch) in plan.batches.iter().enumerate() {
        reference
            .push_columns(batch.times(), batch.keys(), batch.values())
            .unwrap();
        if let Some(mark) = plan.watermarks[i] {
            reference.advance_watermark(mark).unwrap();
        }
    }
    reference.advance_watermark(plan.final_watermark).unwrap();
    let expected = sorted(reference.poll_results());
    assert!(!expected.is_empty());

    let slice = |id: u32| -> Vec<GroupResult> {
        expected
            .iter()
            .filter(|r| r.query == QueryId(id))
            .cloned()
            .collect()
    };
    let mut total_served = 0usize;
    for client in &report.clients {
        let served = sorted(client.results.clone());
        total_served += served.len();
        assert_bit_identical(
            &format!("subscriber q{}", client.query_id),
            &served,
            &slice(client.query_id),
        );
    }
    let probe_served = sorted(report.probe.results.clone());
    total_served += probe_served.len();
    assert_bit_identical("probe q3", &probe_served, &slice(report.probe.query_id));

    // Nothing was double-delivered or left behind.
    assert_eq!(total_served, expected.len());
}
