//! The [`QueryGroup`]/[`GroupPipeline`] façade: N independently authored
//! standing queries over one stream, executed through one shared
//! factor-window plan.
//!
//! [`QueryGroup`] is the builder: collect queries (SQL or
//! [`WindowQuery`]), configure the cost model / plan policy / sharing
//! policy / backend exactly as for a [`crate::Session`], and
//! [`QueryGroup::build`] runs the cross-query optimizer
//! ([`fw_core::GroupOptimizer`]) — merging every member's windows into one
//! coverage graph, deduplicating identical windows and identical
//! aggregate terms, and pricing the merged plan against the sum of the
//! standalone plans. The resulting [`GroupPipeline`] streams like a
//! [`crate::Pipeline`], but every result comes back tagged with the
//! member query that subscribed to it ([`GroupResult`]).
//!
//! Queries may come and go while the stream runs:
//! [`GroupPipeline::register`] and [`GroupPipeline::deregister`] take
//! effect at the current watermark — the group seals everything up to the
//! boundary, re-optimizes the merged plan over the new member set, and
//! swaps it in place with window state migrating across, so surviving
//! members' results are byte-identical to uninterrupted solo sessions. A
//! deregistered member receives every result sealed at or before the
//! boundary; a late-registered member receives results for instances that
//! start at or after its registration.
//!
//! ```
//! use factor_windows::engine::Event;
//! use factor_windows::QueryGroup;
//!
//! let mut group = QueryGroup::from_sql(
//!     "SELECT k, MIN(v) FROM S GROUP BY k, Windows( \
//!          Window('fast', TumblingWindow(second, 10)), \
//!          Window('slow', TumblingWindow(second, 20))); \
//!      SELECT k, SUM(v) FROM S GROUP BY k, Windows( \
//!          Window('fast', TumblingWindow(second, 10)), \
//!          Window('slower', TumblingWindow(second, 40)))",
//! )?
//! .collect_results(true)
//! .build()?;
//!
//! for t in 0..40u64 {
//!     group.push(Event::new(t, 0, (t % 7) as f64))?;
//! }
//! let out = group.finish()?;
//! // Every result names its query: q0 gets MIN values, q1 SUM values.
//! assert!(out.results.iter().any(|r| r.query.0 == 0));
//! assert!(out.results.iter().any(|r| r.query.0 == 1));
//! # Ok::<(), factor_windows::ApiError>(())
//! ```

use crate::api::{ApiError, ApiResult};
use fw_core::{
    Cost, CostModel, Error as CoreError, GroupMember, GroupOptimizer, GroupPlan, GroupStrategy,
    PlanChoice, QueryId, QueryPlan, Semantics, SharingPolicy, WindowQuery,
};
use fw_engine::checkpoint::{self as ckpt, CheckpointError};
use fw_engine::{
    Event, GroupExec, GroupResult, GroupRunOutput, Parallelism, PipelineOptions, ProfileLevel,
};
use std::collections::BTreeMap;

/// A builder for a group of standing queries over one stream — the
/// multi-query counterpart of [`crate::Session`].
#[derive(Debug, Clone, Default)]
pub struct QueryGroup {
    queries: Vec<WindowQuery>,
    model: CostModel,
    semantics: Option<Semantics>,
    choice: PlanChoice,
    policy: SharingPolicy,
    out_of_order: u64,
    collect: bool,
    element_work: u32,
    profile: ProfileLevel,
    parallelism: Parallelism,
    durable: bool,
}

impl QueryGroup {
    /// Starts an empty group (add queries with [`Self::query`] /
    /// [`Self::sql`]).
    #[must_use]
    pub fn new() -> Self {
        QueryGroup {
            queries: Vec::new(),
            model: CostModel::default(),
            semantics: None,
            choice: PlanChoice::Auto,
            policy: SharingPolicy::Auto,
            out_of_order: 0,
            collect: false,
            element_work: fw_engine::DEFAULT_ELEMENT_WORK,
            profile: ProfileLevel::Off,
            parallelism: Parallelism::Sequential,
            durable: false,
        }
    }

    /// Starts a group from a `;`-separated sequence of SQL statements
    /// (see [`fw_sql::parse_to_queries`]; [`fw_sql::FIG1_GROUP_SQL`] is
    /// the canonical fixture).
    pub fn from_sql(sql: &str) -> ApiResult<Self> {
        let mut group = QueryGroup::new();
        for query in fw_sql::parse_to_queries(sql)? {
            group.queries.push(query);
        }
        Ok(group)
    }

    /// Adds an already-built query. Ids are assigned in insertion order at
    /// [`Self::build`] (`q0`, `q1`, …).
    #[must_use]
    pub fn query(mut self, query: WindowQuery) -> Self {
        self.queries.push(query);
        self
    }

    /// Parses and adds one SQL query.
    pub fn sql(mut self, sql: &str) -> ApiResult<Self> {
        self.queries.push(fw_sql::parse_to_query(sql)?);
        Ok(self)
    }

    /// Sets the cost model (ingestion rate η and the per-slot surcharge
    /// weight) used for both the merged and the standalone pricings.
    #[must_use]
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Pins the coverage semantics for every member (validated per
    /// member, exactly as [`crate::Session::semantics`] validates its one
    /// query).
    #[must_use]
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = Some(semantics);
        self
    }

    /// Sets the plan-choice policy applied to the merged plan and to
    /// every standalone plan (default [`PlanChoice::Auto`]).
    #[must_use]
    pub fn plan_choice(mut self, choice: PlanChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Sets the sharing policy (default [`SharingPolicy::Auto`]: share
    /// exactly when the merged plan prices below the standalone sum). The
    /// resolved strategy is fixed for the life of the built pipeline —
    /// later registrations re-optimize the plan *within* that strategy.
    #[must_use]
    pub fn sharing(mut self, policy: SharingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Tolerates events arriving up to `tolerance` time units behind the
    /// observed maximum timestamp (see [`crate::Session::out_of_order`]).
    #[must_use]
    pub fn out_of_order(mut self, tolerance: u64) -> Self {
        self.out_of_order = tolerance;
        self
    }

    /// Collects results for [`GroupPipeline::poll_results`] /
    /// [`GroupRunOutput::results`]. Off by default (count-only sinks).
    #[must_use]
    pub fn collect_results(mut self, collect: bool) -> Self {
        self.collect = collect;
        self
    }

    /// Overrides the emulated per-element work
    /// ([`fw_engine::DEFAULT_ELEMENT_WORK`]); `0` disables the emulation.
    #[must_use]
    pub fn element_work(mut self, element_work: u32) -> Self {
        self.element_work = element_work;
        self
    }

    /// Sets the per-plan-node instrumentation level for every member
    /// pipeline (default [`ProfileLevel::Off`]; see
    /// [`crate::Session::profiling`]).
    #[must_use]
    pub fn profiling(mut self, profile: ProfileLevel) -> Self {
        self.profile = profile;
        self
    }

    /// Shards execution by key across worker threads (per pipeline: the
    /// per-query strategy spawns one sharded pipeline per member).
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Makes the built group durable: every member pipeline compiles onto
    /// the slot-based group core so [`GroupPipeline::checkpoint`] works.
    /// Shared-strategy groups are durable regardless of this flag (the
    /// merged pipeline always runs on that core); the flag matters for
    /// groups that resolve to the per-query strategy.
    /// [`QueryGroup::restore`] accepts snapshots regardless.
    #[must_use]
    pub fn durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    /// The queries registered so far, in id order.
    #[must_use]
    pub fn queries(&self) -> &[WindowQuery] {
        &self.queries
    }

    /// Runs the cross-query optimizer and compiles the group into a
    /// streaming [`GroupPipeline`]. Errors on an empty group.
    pub fn build(&self) -> ApiResult<GroupPipeline> {
        let members: Vec<GroupMember> = self
            .queries
            .iter()
            .enumerate()
            .map(|(i, query)| GroupMember {
                id: QueryId(i as u32),
                query: query.clone(),
                since: 0,
            })
            .collect();
        let plan = GroupOptimizer::new(self.model).plan(
            &members,
            self.choice,
            self.policy,
            self.semantics,
        )?;
        let options = PipelineOptions {
            collect: self.collect,
            element_work: self.element_work,
            out_of_order: self.out_of_order,
            profile: self.profile,
        };
        let exec = if let Parallelism::Distributed { workers } = self.parallelism {
            // The group's route table stays coordinator-side; every
            // pipeline it routes into runs on worker processes.
            GroupExec::compile_with_backend(
                &plan,
                options,
                std::sync::Arc::new(fw_dist::DistFactory { workers }),
            )?
        } else if self.durable {
            GroupExec::compile_durable(&plan, options, self.parallelism.shard_count())?
        } else {
            GroupExec::compile(&plan, options, self.parallelism.shard_count())?
        };
        // The strategy is fixed once streaming starts: later re-plans
        // (register/deregister) pin the resolved strategy so the engine
        // never has to migrate state across execution modes.
        let policy = match exec.strategy() {
            GroupStrategy::Shared => SharingPolicy::Shared,
            GroupStrategy::PerQuery => SharingPolicy::Unshared,
        };
        let labels = members
            .iter()
            .map(|m| {
                let labels = m
                    .query
                    .aggregates()
                    .iter()
                    .map(|s| s.label().to_string())
                    .collect();
                (m.id.0, labels)
            })
            .collect();
        Ok(GroupPipeline {
            exec,
            next_id: members.len() as u32,
            members,
            labels,
            plan,
            model: self.model,
            semantics: self.semantics,
            choice: self.choice,
            policy,
            profile: self.profile,
        })
    }

    /// Convenience: build, feed a whole in-order batch, finish.
    pub fn run_batch(&self, events: &[Event]) -> ApiResult<GroupRunOutput> {
        let mut pipeline = self.build()?;
        pipeline.push_batch(events)?;
        pipeline.finish()
    }

    /// Rebuilds a group pipeline from a [`GroupPipeline::checkpoint`]
    /// snapshot. The member set — including queries registered or
    /// deregistered while the original streamed — comes from the
    /// snapshot, not from this builder's [`Self::query`] list; the
    /// builder supplies the runtime configuration (cost model, semantics,
    /// collection, out-of-order tolerance, parallelism). The plan itself
    /// is re-derived by re-running the deterministic cross-query
    /// optimizer over the snapshot's member registry with the snapshot's
    /// pinned sharing policy and plan-choice policy, so slot identities
    /// line up with the serialized state. [`Self::parallelism`] may
    /// differ freely from the checkpointing run (the snapshot is
    /// shard-count-free); restored groups are always durable.
    pub fn restore<R: std::io::Read + ?Sized>(&self, r: &mut R) -> ApiResult<GroupPipeline> {
        ckpt::read_header(r, ckpt::KIND_GROUP_FACADE)?;
        let next_id = ckpt::get_u32(r, "next query id")?;
        let policy = match ckpt::get_u8(r, "pinned sharing policy")? {
            0 => SharingPolicy::Shared,
            1 => SharingPolicy::Unshared,
            _ => {
                return Err(CheckpointError::BadValue {
                    what: "pinned sharing policy code",
                }
                .into())
            }
        };
        let choice = match ckpt::get_u8(r, "plan choice")? {
            0 => PlanChoice::Auto,
            1 => PlanChoice::Original,
            2 => PlanChoice::Rewritten,
            3 => PlanChoice::Factored,
            _ => {
                return Err(CheckpointError::BadValue {
                    what: "plan choice code",
                }
                .into())
            }
        };
        let count = ckpt::get_u32(r, "member count")?;
        let mut members = Vec::with_capacity((count as usize).min(1024));
        for _ in 0..count {
            let id = QueryId(ckpt::get_u32(r, "member id")?);
            let since = ckpt::get_u64(r, "member since")?;
            let query = ckpt::get_query(r)?;
            members.push(GroupMember { id, query, since });
        }
        let count = ckpt::get_u32(r, "label map size")?;
        let mut labels = BTreeMap::new();
        for _ in 0..count {
            let id = ckpt::get_u32(r, "labeled query id")?;
            let n = ckpt::get_u32(r, "label count")?;
            let mut list = Vec::with_capacity((n as usize).min(1024));
            for _ in 0..n {
                list.push(ckpt::get_str(r, "select label")?);
            }
            labels.insert(id, list);
        }
        let plan =
            GroupOptimizer::new(self.model).plan(&members, choice, policy, self.semantics)?;
        let options = PipelineOptions {
            collect: self.collect,
            element_work: self.element_work,
            out_of_order: self.out_of_order,
            profile: self.profile,
        };
        let exec = if let Parallelism::Distributed { workers } = self.parallelism {
            GroupExec::restore_with_backend(
                &plan,
                options,
                std::sync::Arc::new(fw_dist::DistFactory { workers }),
                r,
            )?
        } else {
            GroupExec::restore(&plan, options, self.parallelism.shard_count(), r)?
        };
        Ok(GroupPipeline {
            exec,
            members,
            labels,
            next_id,
            plan,
            model: self.model,
            semantics: self.semantics,
            choice,
            policy,
            profile: self.profile,
        })
    }
}

/// A compiled, long-lived multi-query pipeline produced by
/// [`QueryGroup::build`].
///
/// Streams like a [`crate::Pipeline`] (push, watermarks, polls, finish),
/// with two differences: results are [`GroupResult`]s tagged with their
/// member query, and the member set itself is dynamic
/// ([`Self::register`] / [`Self::deregister`]).
pub struct GroupPipeline {
    exec: GroupExec,
    members: Vec<GroupMember>,
    /// SELECT-list labels per query id — retained after deregistration so
    /// pending final results still resolve through [`Self::label_of`].
    labels: BTreeMap<u32, Vec<String>>,
    next_id: u32,
    plan: GroupPlan,
    model: CostModel,
    semantics: Option<Semantics>,
    choice: PlanChoice,
    /// The sharing policy pinned to the strategy resolved at build time.
    policy: SharingPolicy,
    /// The builder's instrumentation level, echoed into reports.
    profile: ProfileLevel,
}

impl std::fmt::Debug for GroupPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupPipeline")
            .field("queries", &self.members.len())
            .field("strategy", &self.strategy().name())
            .field("watermark", &self.watermark())
            .finish_non_exhaustive()
    }
}

impl GroupPipeline {
    /// Pushes one event to the group.
    pub fn push(&mut self, event: Event) -> ApiResult<()> {
        Ok(self.exec.push(event)?)
    }

    /// Pushes a batch of in-order events.
    pub fn push_batch(&mut self, events: &[Event]) -> ApiResult<()> {
        Ok(self.exec.push_batch(events)?)
    }

    /// Pushes a columnar batch (equal-length timestamp/key/value slices;
    /// see [`crate::Pipeline::push_columns`]). Group routing is
    /// unchanged: the columns feed the same shared (or per-member)
    /// pipelines the row-oriented entry points do.
    pub fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> ApiResult<()> {
        Ok(self.exec.push_columns(times, keys, values)?)
    }

    /// Declares that no event before `watermark` will arrive (sealing and
    /// emission as for [`crate::Pipeline::advance_watermark`]).
    pub fn advance_watermark(&mut self, watermark: u64) -> ApiResult<()> {
        Ok(self.exec.advance_watermark(watermark)?)
    }

    /// Drains the routed results collected since the last poll (always
    /// empty unless the group enabled [`QueryGroup::collect_results`]).
    #[must_use]
    pub fn poll_results(&mut self) -> Vec<GroupResult> {
        self.exec.poll_results()
    }

    /// Ends the stream and returns the group's accounting plus any
    /// results not yet polled, in canonical `(query, window, instance,
    /// key, term)` order.
    pub fn finish(self) -> ApiResult<GroupRunOutput> {
        Ok(self.exec.finish()?)
    }

    /// Registers a new standing query at the current watermark and
    /// re-optimizes the merged plan over the grown member set. The new
    /// member receives results for window instances starting at or after
    /// the registration watermark; every existing member's results are
    /// unaffected (window state migrates across the plan swap). Returns
    /// the new member's id.
    pub fn register(&mut self, query: WindowQuery) -> ApiResult<QueryId> {
        let watermark = self.exec.watermark();
        let id = QueryId(self.next_id);
        let labels = query
            .aggregates()
            .iter()
            .map(|s| s.label().to_string())
            .collect();
        self.members.push(GroupMember {
            id,
            query,
            since: watermark,
        });
        match self.replan(watermark) {
            Ok(()) => {
                self.next_id += 1;
                self.labels.insert(id.0, labels);
                Ok(id)
            }
            Err(e) => {
                self.members.pop();
                Err(e)
            }
        }
    }

    /// Parses and registers one SQL query (see [`Self::register`]).
    pub fn register_sql(&mut self, sql: &str) -> ApiResult<QueryId> {
        let query = fw_sql::parse_to_query(sql)?;
        self.register(query)
    }

    /// Deregisters a standing query at the current watermark: the member
    /// receives every result sealed at or before the boundary (drain them
    /// with [`Self::poll_results`]), its windows and slots leave the
    /// merged plan, and the remaining members stream on unaffected. The
    /// last remaining query cannot be deregistered (a group is never
    /// empty); unknown or already-deregistered ids are
    /// [`ApiError::UnknownQuery`].
    pub fn deregister(&mut self, id: QueryId) -> ApiResult<()> {
        let Some(position) = self.members.iter().position(|m| m.id == id) else {
            return Err(ApiError::UnknownQuery { id });
        };
        if self.members.len() == 1 {
            return Err(CoreError::EmptyGroup.into());
        }
        let watermark = self.exec.watermark();
        let removed = self.members.remove(position);
        if let Err(e) = self.replan(watermark) {
            self.members.insert(position, removed);
            return Err(e);
        }
        Ok(())
    }

    /// Re-optimizes over the current member set (strategy pinned) and
    /// swaps the plan at `watermark`.
    fn replan(&mut self, watermark: u64) -> ApiResult<()> {
        let plan = GroupOptimizer::new(self.model).plan(
            &self.members,
            self.choice,
            self.policy,
            self.semantics,
        )?;
        self.exec.rebuild(&plan, watermark)?;
        self.plan = plan;
        Ok(())
    }

    /// Writes a self-describing snapshot of the whole group — the member
    /// registry (ids, registration watermarks, full queries), retained
    /// SELECT labels, the pinned sharing policy and plan-choice policy,
    /// and every backend pipeline's pane state — and keeps streaming.
    /// Restore with [`QueryGroup::restore`], then replay the stream
    /// suffix from event number [`Self::events_pushed`] as observed at
    /// checkpoint time; recovery is exactly-once.
    ///
    /// Per-query-strategy groups must have been built with
    /// [`QueryGroup::durable`]; otherwise this fails with
    /// [`CheckpointError::Unsupported`].
    pub fn checkpoint<W: std::io::Write + ?Sized>(&mut self, w: &mut W) -> ApiResult<()> {
        ckpt::write_header(w, ckpt::KIND_GROUP_FACADE)?;
        ckpt::put_u32(w, self.next_id)?;
        ckpt::put_u8(
            w,
            match self.policy {
                SharingPolicy::Shared => 0,
                SharingPolicy::Unshared => 1,
                SharingPolicy::Auto => {
                    return Err(CheckpointError::BadValue {
                        what: "sharing policy was never pinned",
                    }
                    .into())
                }
            },
        )?;
        ckpt::put_u8(
            w,
            match self.choice {
                PlanChoice::Auto => 0,
                PlanChoice::Original => 1,
                PlanChoice::Rewritten => 2,
                PlanChoice::Factored => 3,
            },
        )?;
        ckpt::put_u32(w, ckpt::count_u32(self.members.len(), "member count")?)?;
        for member in &self.members {
            ckpt::put_u32(w, member.id.0)?;
            ckpt::put_u64(w, member.since)?;
            ckpt::put_query(w, &member.query)?;
        }
        ckpt::put_u32(w, ckpt::count_u32(self.labels.len(), "label map size")?)?;
        for (id, list) in &self.labels {
            ckpt::put_u32(w, *id)?;
            ckpt::put_u32(w, ckpt::count_u32(list.len(), "label count")?)?;
            for label in list {
                ckpt::put_str(w, label)?;
            }
        }
        self.exec.checkpoint(&self.plan, w)?;
        Ok(())
    }

    /// The ids of the currently registered queries, in registration order.
    #[must_use]
    pub fn queries(&self) -> Vec<QueryId> {
        self.members.iter().map(|m| m.id).collect()
    }

    /// The registered query behind `id`, if still registered.
    #[must_use]
    pub fn query(&self, id: QueryId) -> Option<&WindowQuery> {
        self.members.iter().find(|m| m.id == id).map(|m| &m.query)
    }

    /// The execution strategy resolved at build time (fixed thereafter).
    #[must_use]
    pub fn strategy(&self) -> GroupStrategy {
        self.exec.strategy()
    }

    /// The current group plan: strategy, merged bundle and routes, member
    /// bundles, and the costs the sharing decision compared.
    #[must_use]
    pub fn plan(&self) -> &GroupPlan {
        &self.plan
    }

    /// The merged shared plan currently executing, when the group runs
    /// the shared strategy.
    #[must_use]
    pub fn shared_plan(&self) -> Option<&QueryPlan> {
        match self.strategy() {
            GroupStrategy::Shared => self.plan.shared.as_ref().map(|s| &s.bundle.plan),
            GroupStrategy::PerQuery => None,
        }
    }

    /// Modeled cost of what the group executes: the merged plan's cost
    /// under the shared strategy, the standalone sum under per-query.
    #[must_use]
    pub fn cost(&self) -> Cost {
        match self.strategy() {
            GroupStrategy::Shared => self.plan.shared_cost().unwrap_or(self.plan.unshared_cost),
            GroupStrategy::PerQuery => self.plan.unshared_cost,
        }
    }

    /// The SELECT-list label of the term that produced `result`, resolved
    /// against the originating member's query (labels survive
    /// deregistration, so pending final results still resolve).
    ///
    /// # Panics
    /// If `result` carries a query id this group never issued.
    #[must_use]
    pub fn label_of(&self, result: &GroupResult) -> &str {
        let labels = self
            .labels
            .get(&result.query.0)
            .expect("result from a query this group never issued");
        &labels[result.result.agg as usize]
    }

    /// Events pushed into the group so far.
    #[must_use]
    pub fn events_pushed(&self) -> u64 {
        self.exec.events_pushed()
    }

    /// Routed results emitted so far (including polled ones; counts
    /// per-member deliveries, so one shared window value consumed by two
    /// members counts twice). `0` when results are not collected.
    #[must_use]
    pub fn results_emitted(&self) -> u64 {
        self.exec.results_emitted()
    }

    /// The group's ordering watermark — also the boundary the next
    /// [`Self::register`] / [`Self::deregister`] takes effect at.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.exec.watermark()
    }

    /// Events currently buffered on the ingest side.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.exec.buffered()
    }

    /// Cost-model accounting summed over every pipeline the group runs
    /// (under the per-query strategy this sums the members — the ~N× bill
    /// the shared strategy avoids). [`fw_engine::ExecStats::replans`]
    /// counts the plan swaps from registrations and deregistrations.
    #[must_use]
    pub fn stats(&self) -> fw_engine::ExecStats {
        self.exec.stats()
    }

    /// Key-interner high-water mark as `(slots, bytes)` summed over every
    /// pipeline the group runs — the dense key space backing the pane
    /// slabs. Observability only.
    #[must_use]
    pub fn interner_stats(&self) -> (u64, u64) {
        self.exec.interner_stats()
    }

    /// Per-plan-node observed counters summed over every pipeline the
    /// group runs (empty unless [`QueryGroup::profiling`] was set).
    /// Shared groups report the merged plan's nodes; per-query groups
    /// merge member profiles by window identity.
    #[must_use]
    pub fn node_profiles(&self) -> Vec<fw_engine::NodeProfile> {
        self.exec.node_profiles()
    }

    /// The `EXPLAIN ANALYZE` report for the group: observed per-node
    /// counters joined with the cost model's predicted pane flow. Under
    /// the shared strategy the join is against the merged plan; under
    /// per-query execution every member plan's flow is merged by window
    /// identity first (two members sharing a window report one row with
    /// their summed flow), mirroring how the observed counters merge.
    pub fn profile(&self) -> ApiResult<crate::profile::PlanProfile> {
        let observed = self.node_profiles();
        let stats = self.stats();
        let watermark = self.watermark();
        match (&self.plan.shared, self.strategy()) {
            (Some(shared), GroupStrategy::Shared) => Ok(crate::profile::PlanProfile::assemble(
                &shared.bundle.plan,
                &self.model,
                shared.choice,
                shared.bundle.cost,
                self.profile,
                true,
                watermark,
                stats,
                observed,
                0,
                None,
            )?),
            _ => {
                let mut flows: Vec<fw_core::NodeFlow> = Vec::new();
                for member in &self.plan.members {
                    for f in member.bundle.plan.node_flows(&self.model)? {
                        match flows.iter_mut().find(|x| x.window == f.window) {
                            Some(x) => {
                                x.updates = x.updates.saturating_add(f.updates);
                                x.combines = x.combines.saturating_add(f.combines);
                                x.cost = x.cost.saturating_add(f.cost);
                                x.exposed |= f.exposed;
                            }
                            None => flows.push(f),
                        }
                    }
                }
                Ok(crate::profile::PlanProfile::assemble_from_flows(
                    flows,
                    self.choice,
                    self.plan.unshared_cost,
                    self.profile,
                    true,
                    watermark,
                    stats,
                    observed,
                    0,
                    None,
                ))
            }
        }
    }

    /// Renders [`GroupPipeline::profile`] as fixed-layout text.
    pub fn explain(&self) -> ApiResult<String> {
        Ok(self.profile()?.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_core::{AggregateFunction, Window, WindowSet};
    use fw_engine::sorted_group_results;

    fn query(ranges: &[u64], f: AggregateFunction) -> WindowQuery {
        let windows = WindowSet::new(
            ranges
                .iter()
                .map(|&r| Window::tumbling(r).unwrap())
                .collect(),
        )
        .unwrap();
        WindowQuery::new(windows, f)
    }

    fn stream(n: u64) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t % 3) as u32, ((t * 7) % 23) as f64))
            .collect()
    }

    #[test]
    fn group_of_one_matches_the_session() {
        let q = query(&[20, 30, 40], AggregateFunction::Min);
        let events = stream(300);
        let session = crate::Session::from_query(q.clone())
            .collect_results(true)
            .element_work(0);
        let solo = session.run_batch(&events).unwrap();

        let group = QueryGroup::new()
            .query(q)
            .collect_results(true)
            .element_work(0);
        let out = group.run_batch(&events).unwrap();
        assert_eq!(out.events_processed, 300);
        let values: Vec<_> = out.results.iter().map(|r| r.result).collect();
        assert_eq!(
            fw_engine::sorted_results(values),
            fw_engine::sorted_results(solo.results)
        );
        assert!(out.results.iter().all(|r| r.query == QueryId(0)));
    }

    #[test]
    fn sql_group_round_trips_with_labels() {
        let mut group = QueryGroup::from_sql(fw_sql::FIG1_GROUP_SQL)
            .unwrap()
            .collect_results(true)
            .element_work(0)
            .build()
            .unwrap();
        assert_eq!(group.queries().len(), 3);
        assert_eq!(group.strategy(), GroupStrategy::Shared);
        for t in 0..7200u64 {
            group
                .push(Event::new(t, (t % 2) as u32, (t % 13) as f64))
                .unwrap();
        }
        let labels: Vec<String> = {
            let sample = |q: u32, agg: u32| GroupResult {
                query: QueryId(q),
                result: fw_engine::WindowResult {
                    window: Window::tumbling(1200).unwrap(),
                    interval: fw_core::Interval::new(0, 1200),
                    key: 0,
                    agg,
                    value: 0.0,
                },
            };
            (0..3)
                .map(|q| group.label_of(&sample(q, 0)).to_string())
                .collect()
        };
        assert_eq!(labels, vec!["MinTemp", "MaxTemp", "AvgTemp"]);
        let out = group.finish().unwrap();
        assert!(out.results.iter().any(|r| r.query == QueryId(2)));
    }

    #[test]
    fn register_and_deregister_round_trip() {
        let mut group = QueryGroup::new()
            .query(query(&[20, 40], AggregateFunction::Sum))
            .query(query(&[20, 60], AggregateFunction::Count))
            .collect_results(true)
            .element_work(0)
            .build()
            .unwrap();
        let events = stream(480);
        group.push_batch(&events[..240]).unwrap();
        group.advance_watermark(240).unwrap();

        let late = group
            .register(query(&[30, 60], AggregateFunction::Min))
            .unwrap();
        assert_eq!(late, QueryId(2));
        group.deregister(QueryId(1)).unwrap();
        assert_eq!(group.queries(), vec![QueryId(0), QueryId(2)]);
        assert!(matches!(
            group.deregister(QueryId(1)),
            Err(ApiError::UnknownQuery { .. })
        ));

        group.push_batch(&events[240..]).unwrap();
        let out = group.finish().unwrap();
        assert_eq!(out.stats.replans, 2);
        // The departed member's results all sealed by the boundary; the
        // late member's all start after it.
        for r in &out.results {
            match r.query {
                QueryId(1) => assert!(r.result.interval.end <= 240),
                QueryId(2) => assert!(r.result.interval.start >= 240),
                _ => {}
            }
        }
        let sorted = sorted_group_results(out.results.clone());
        assert_eq!(sorted, out.results, "finish returns canonical order");
    }

    #[test]
    fn last_query_cannot_leave() {
        let mut group = QueryGroup::new()
            .query(query(&[20], AggregateFunction::Sum))
            .build()
            .unwrap();
        let err = group.deregister(QueryId(0)).unwrap_err();
        assert!(matches!(err, ApiError::Optimize(CoreError::EmptyGroup)));
    }

    #[test]
    fn empty_group_does_not_build() {
        let err = QueryGroup::new().build().unwrap_err();
        assert!(matches!(err, ApiError::Optimize(CoreError::EmptyGroup)));
    }

    #[test]
    fn group_checkpoint_restores_the_registry_and_rescales() {
        let mut group = QueryGroup::new()
            .query(query(&[20, 40], AggregateFunction::Sum))
            .query(query(&[20, 60], AggregateFunction::Count))
            .sharing(SharingPolicy::Shared)
            .collect_results(true)
            .element_work(0)
            .build()
            .unwrap();
        let events = stream(480);
        group.push_batch(&events[..240]).unwrap();
        group.advance_watermark(240).unwrap();
        let late = group
            .register(query(&[30, 60], AggregateFunction::Min))
            .unwrap();
        group.push_batch(&events[240..300]).unwrap();
        let cursor = group.events_pushed() as usize;
        let mut snapshot = Vec::new();
        group.checkpoint(&mut snapshot).unwrap();

        // The checkpointing group streams on: its uninterrupted output is
        // the recovery oracle.
        group.push_batch(&events[300..]).unwrap();
        let oracle = group.finish().unwrap();

        // Restore at a different parallelism; the member registry (late
        // registration included) comes back from the snapshot.
        let restorer = QueryGroup::new()
            .collect_results(true)
            .element_work(0)
            .parallelism(Parallelism::Fixed(3));
        let mut restored = restorer.restore(&mut snapshot.as_slice()).unwrap();
        assert_eq!(restored.queries(), vec![QueryId(0), QueryId(1), late]);
        restored.push_batch(&events[cursor..]).unwrap();
        let out = restored.finish().unwrap();
        assert_eq!(
            sorted_group_results(out.results),
            sorted_group_results(oracle.results)
        );
        assert_eq!(out.stats.replans, oracle.stats.replans);
    }

    #[test]
    fn per_query_group_checkpoint_requires_durability() {
        let builder = QueryGroup::new()
            .query(query(&[20, 40], AggregateFunction::Sum))
            .query(query(&[20, 60], AggregateFunction::Count))
            .sharing(SharingPolicy::Unshared)
            .collect_results(true)
            .element_work(0);
        let mut plain = builder.clone().build().unwrap();
        let err = plain.checkpoint(&mut Vec::new()).unwrap_err();
        assert!(matches!(
            err,
            ApiError::Checkpoint(CheckpointError::Unsupported { .. })
        ));

        // With durability the per-query strategy round-trips too.
        let events = stream(360);
        let mut durable = builder.clone().durable(true).build().unwrap();
        durable.push_batch(&events[..200]).unwrap();
        let mut snapshot = Vec::new();
        durable.checkpoint(&mut snapshot).unwrap();
        durable.push_batch(&events[200..]).unwrap();
        let oracle = durable.finish().unwrap();

        let mut restored = builder.restore(&mut snapshot.as_slice()).unwrap();
        restored.push_batch(&events[200..]).unwrap();
        let out = restored.finish().unwrap();
        assert_eq!(
            sorted_group_results(out.results),
            sorted_group_results(oracle.results)
        );
    }

    #[test]
    fn sharing_policy_pins_the_strategy() {
        let builder = QueryGroup::new()
            .query(query(&[20, 40], AggregateFunction::Sum))
            .query(query(&[20, 80], AggregateFunction::Min));
        let shared = builder
            .clone()
            .sharing(SharingPolicy::Shared)
            .build()
            .unwrap();
        assert_eq!(shared.strategy(), GroupStrategy::Shared);
        assert!(shared.shared_plan().is_some());
        let unshared = builder.sharing(SharingPolicy::Unshared).build().unwrap();
        assert_eq!(unshared.strategy(), GroupStrategy::PerQuery);
        assert!(unshared.shared_plan().is_none());
        assert!(shared.cost() <= unshared.cost());
    }
}
