//! # factor-windows — umbrella crate
//!
//! One façade from SQL to incremental execution, plus re-exports of the
//! full Factor Windows reproduction workspace:
//!
//! * [`Session`] / [`Pipeline`] (the [`api`] module) — the streaming API:
//!   parse (or accept) a query, run the cost-based optimizer once, pick a
//!   plan per [`PlanChoice`], and push events incrementally.
//! * [`core`] (`fw-core`) — the paper's optimizer: window coverage graphs,
//!   the cost model, Algorithms 1–5, factor windows, and query rewriting.
//! * [`engine`] (`fw-engine`) — a Trill-like single-core streaming engine
//!   that executes the plans.
//! * [`sql`] (`fw-sql`) — the ASA-flavored declarative frontend.
//! * [`slicing`] (`fw-slicing`) — a Scotty-style general stream slicing
//!   baseline.
//! * [`workload`] (`fw-workload`) — window-set generators and datasets.
//! * [`serve`] (`fw-serve`) — the streaming ingress layer: a TCP frame
//!   protocol, a multi-client session server with bounded-queue
//!   backpressure, a metrics registry, and a load-generator client.
//!
//! The experiment harness (`fw-harness`, binary `fw-experiments`) sits on
//! top of this crate rather than inside it: it regenerates every table and
//! figure of the paper's evaluation through the same [`Session`] API every
//! other consumer uses.
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory.
//!
//! ```
//! use factor_windows::{PlanChoice, Session};
//! use factor_windows::engine::Event;
//!
//! let mut pipeline = Session::from_sql(factor_windows::sql::FIG1_SQL)?
//!     .plan_choice(PlanChoice::Auto)
//!     .collect_results(true)
//!     .build()?;
//! for t in 0..3600u64 {
//!     pipeline.push(Event::new(t, t as u32 % 4, (t % 37) as f64))?;
//! }
//! let out = pipeline.finish()?;
//! assert!(out.results_emitted > 0);
//! # Ok::<(), factor_windows::ApiError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod group;
pub mod profile;

pub use fw_core as core;
pub use fw_engine as engine;
pub use fw_serve as serve;
pub use fw_slicing as slicing;
pub use fw_sql as sql;
pub use fw_workload as workload;

pub use api::{explain_sql, ApiError, ApiResult, Pipeline, Session};
pub use fw_core::{GroupStrategy, PlanChoice, QueryId, SharingPolicy};
pub use fw_engine::{EventBatch, GroupResult, Parallelism};
pub use fw_engine::{NodeProfile, ProfileLevel};
pub use fw_serve::{ServeClient, ServeConfig, ServeError, Server};
pub use group::{GroupPipeline, QueryGroup};
pub use profile::{NodeReport, PlanProfile};

/// One-stop imports for typical users: the session façade plus the
/// optimizer-level types it is configured with.
pub mod prelude {
    pub use crate::api::{explain_sql, ApiError, ApiResult, Pipeline, Session};
    pub use crate::group::{GroupPipeline, QueryGroup};
    pub use crate::profile::{NodeReport, PlanProfile};
    pub use fw_core::prelude::*;
    pub use fw_core::{GroupStrategy, QueryId, SharingPolicy};
    pub use fw_engine::{Event, EventBatch, GroupResult, Parallelism, RunOutput, WindowResult};
    pub use fw_engine::{NodeProfile, ProfileLevel};
    pub use fw_serve::{ServeClient, ServeConfig, ServeError, Server};
}
