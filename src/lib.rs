//! # factor-windows — umbrella crate
//!
//! Re-exports the full Factor Windows reproduction workspace:
//!
//! * [`core`] (`fw-core`) — the paper's optimizer: window coverage graphs,
//!   the cost model, Algorithms 1–5, factor windows, and query rewriting.
//! * [`engine`] (`fw-engine`) — a Trill-like single-core streaming engine
//!   that executes the plans.
//! * [`sql`] (`fw-sql`) — the ASA-flavored declarative frontend.
//! * [`slicing`] (`fw-slicing`) — a Scotty-style general stream slicing
//!   baseline.
//! * [`workload`] (`fw-workload`) — window-set generators and datasets.
//! * [`harness`] (`fw-harness`) — the experiment harness regenerating every
//!   table and figure of the paper's evaluation.
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory.

pub use fw_core as core;
pub use fw_engine as engine;
pub use fw_harness as harness;
pub use fw_slicing as slicing;
pub use fw_sql as sql;
pub use fw_workload as workload;

pub use fw_core::prelude;
