//! The `Session`/`Pipeline` façade: one API from SQL text (or a built
//! [`WindowQuery`]) to incremental streaming execution.
//!
//! The paper's pitch is that factor-window rewriting is a drop-in
//! optimization for any engine with a declarative frontend. This module is
//! that drop-in surface for the reproduction: a [`Session`] builder runs
//! the cost-based optimizer once, selects a plan per the [`PlanChoice`]
//! policy, and compiles it into a long-lived [`Pipeline`] with a push API
//! ([`Pipeline::push`], [`Pipeline::advance_watermark`],
//! [`Pipeline::poll_results`], [`Pipeline::finish`]). Out-of-order input
//! within a configured tolerance is repaired transparently, and
//! [`Session::parallelism`] shards execution by key across worker threads
//! without changing the API or the results.
//!
//! Queries may carry several aggregate terms
//! (`SELECT MIN(T), MAX(T), AVG(T) …`): they execute over one shared pane
//! flow, results come back tagged with the term index
//! ([`WindowResult::agg`]), and [`Pipeline::label_of`] resolves the tag to
//! the term's SQL label.
//!
//! ```
//! use factor_windows::{PlanChoice, Session};
//! use factor_windows::engine::Event;
//!
//! let sql = "SELECT DeviceID, MIN(T) FROM Input GROUP BY DeviceID, Windows( \
//!                Window('fast', TumblingWindow(second, 10)), \
//!                Window('slow', TumblingWindow(second, 30)))";
//! let mut pipeline = Session::from_sql(sql)?
//!     .plan_choice(PlanChoice::Auto)
//!     .collect_results(true)
//!     .build()?;
//!
//! for t in 0..35u64 {
//!     pipeline.push(Event::new(t, 0, (t % 7) as f64))?;
//! }
//! pipeline.advance_watermark(30)?; // everything ending by t=30 seals
//! let sealed = pipeline.poll_results();
//! assert_eq!(sealed.len(), 4); // three 10s instances + one 30s instance
//! let out = pipeline.finish()?;
//! assert_eq!(out.events_processed, 35);
//! # Ok::<(), factor_windows::ApiError>(())
//! ```

use crate::profile::PlanProfile;
use fw_core::{
    AdaptivePlanner, CostModel, Error as CoreError, OptimizationOutcome, Optimizer, PlanBundle,
    PlanChoice, QueryPlan, RateEstimator, Semantics, WindowQuery,
};
use fw_dist::DistPipeline;
use fw_engine::{
    CheckpointError, EngineError, Event, ExecStats, NodeProfile, Parallelism, PipelineOptions,
    PlanPipeline, ProfileLevel, RunOutput, ShardedPipeline, Throughput, TraceEvent, TraceEventKind,
    TraceRing, WindowResult,
};
use fw_sql::ParseError;
use std::cell::OnceCell;
use std::fmt;

/// Any failure on the SQL → optimizer → engine path.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The SQL text did not parse (or violated the window model).
    Parse(ParseError),
    /// The optimizer rejected the query (semantics, overflow, ...).
    Optimize(CoreError),
    /// The engine rejected the plan or the stream.
    Engine(EngineError),
    /// A group operation referenced a query id the group never issued (or
    /// one that was already deregistered).
    UnknownQuery {
        /// The unresolved id.
        id: fw_core::QueryId,
    },
    /// A checkpoint could not be written, or a snapshot could not be
    /// restored (I/O failure, corruption, or a mismatched query).
    Checkpoint(CheckpointError),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Parse(e) => write!(f, "parse error: {} (byte {})", e.message, e.offset),
            ApiError::Optimize(e) => write!(f, "optimizer error: {e}"),
            ApiError::Engine(e) => write!(f, "engine error: {e}"),
            ApiError::UnknownQuery { id } => write!(f, "unknown query {id} in this group"),
            ApiError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<ParseError> for ApiError {
    fn from(e: ParseError) -> Self {
        ApiError::Parse(e)
    }
}

impl From<CoreError> for ApiError {
    fn from(e: CoreError) -> Self {
        ApiError::Optimize(e)
    }
}

impl From<EngineError> for ApiError {
    fn from(e: EngineError) -> Self {
        ApiError::Engine(e)
    }
}

impl From<CheckpointError> for ApiError {
    fn from(e: CheckpointError) -> Self {
        ApiError::Checkpoint(e)
    }
}

/// Result alias for the façade.
pub type ApiResult<T> = std::result::Result<T, ApiError>;

/// Runs one `EXPLAIN [ANALYZE]` SQL statement end-to-end — the
/// statement-level frontend over [`Session::explain`] /
/// [`Pipeline::explain`].
///
/// * `EXPLAIN <query>` optimizes the query and renders the plan report
///   with the cost model's predicted pane flow; nothing executes and
///   `events` are ignored.
/// * `EXPLAIN ANALYZE <query>` compiles the winning plan with node
///   counters on ([`ProfileLevel::Counters`]), streams `events` through
///   it in order, advances the watermark far enough to seal every opened
///   window, and renders the report joining observed per-node counters
///   against the prediction.
/// * A statement without an `EXPLAIN` prefix is rejected: standing
///   queries execute through [`Session`], not through this one-shot
///   reporting path.
pub fn explain_sql(sql: &str, events: &[Event]) -> ApiResult<String> {
    let (analyze, parsed) = match fw_sql::parse_statement(sql)? {
        fw_sql::ParsedStatement::Explain { analyze, query } => (analyze, query),
        fw_sql::ParsedStatement::Query(_) => {
            return Err(ApiError::Parse(ParseError {
                message: "expected an EXPLAIN [ANALYZE] statement \
                          (plain queries execute through Session)"
                    .to_string(),
                offset: 0,
            }))
        }
    };
    let query = parsed.to_window_query()?;
    let max_range = query
        .windows()
        .iter()
        .map(fw_core::Window::range)
        .max()
        .unwrap_or(0);
    let session = Session::from_query(query).profiling(ProfileLevel::Counters);
    if !analyze {
        return session.explain();
    }
    let mut pipeline = session.build()?;
    pipeline.push_batch(events)?;
    if let Some(last) = events.last() {
        // Seal every window the batch opened: the latest event's window
        // instances all close by `last.time + max_range`.
        pipeline.advance_watermark(last.time.saturating_add(max_range))?;
    }
    pipeline.explain()
}

/// A configured query session: the single entry point from a declarative
/// query to an executing pipeline.
///
/// The session is a builder. Construction ([`Session::from_sql`] /
/// [`Session::from_query`]) captures the query; the setters configure the
/// cost model, coverage semantics, plan-choice policy, out-of-order
/// tolerance, and result collection; [`Session::build`] runs the optimizer
/// (once — the outcome is cached across repeated builds) and compiles the
/// chosen plan into a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct Session {
    query: WindowQuery,
    model: CostModel,
    semantics: Option<Semantics>,
    choice: PlanChoice,
    out_of_order: u64,
    collect: bool,
    element_work: u32,
    profile: ProfileLevel,
    parallelism: Parallelism,
    /// Re-optimization drift threshold; `Some` enables adaptive planning.
    adaptive: Option<f64>,
    /// Compile onto the slot-based group core so the pipeline can be
    /// checkpointed ([`Pipeline::checkpoint`]).
    durable: bool,
    outcome: OnceCell<OptimizationOutcome>,
}

impl Session {
    /// Starts a session from ASA-flavored SQL (see [`fw_sql`]).
    pub fn from_sql(sql: &str) -> ApiResult<Self> {
        Ok(Session::from_query(fw_sql::parse_to_query(sql)?))
    }

    /// Starts a session from an already-built [`WindowQuery`].
    #[must_use]
    pub fn from_query(query: WindowQuery) -> Self {
        Session {
            query,
            model: CostModel::default(),
            semantics: None,
            choice: PlanChoice::Auto,
            out_of_order: 0,
            collect: false,
            element_work: fw_engine::DEFAULT_ELEMENT_WORK,
            profile: ProfileLevel::Off,
            parallelism: Parallelism::Sequential,
            adaptive: None,
            durable: false,
            outcome: OnceCell::new(),
        }
    }

    /// Sets the cost model (ingestion rate η). Resets any cached
    /// optimization.
    #[must_use]
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self.outcome = OnceCell::new();
        self
    }

    /// Pins the coverage semantics instead of the function's default
    /// (covered-by for MIN/MAX, partitioned-by for SUM/COUNT/AVG). Resets
    /// any cached optimization.
    #[must_use]
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = Some(semantics);
        self.outcome = OnceCell::new();
        self
    }

    /// Sets the plan-choice policy (default [`PlanChoice::Auto`]). Does
    /// not re-run the optimizer: all three plans are produced once and the
    /// policy only selects among them.
    #[must_use]
    pub fn plan_choice(mut self, choice: PlanChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Tolerates events arriving up to `tolerance` time units behind the
    /// observed maximum timestamp (repaired via the engine's reorder
    /// buffer). `0` (the default) demands in-order input.
    #[must_use]
    pub fn out_of_order(mut self, tolerance: u64) -> Self {
        self.out_of_order = tolerance;
        self
    }

    /// Collects results for [`Pipeline::poll_results`] /
    /// [`RunOutput::results`]. Off by default (count-only sink) so
    /// throughput measurements pay a constant sink cost.
    #[must_use]
    pub fn collect_results(mut self, collect: bool) -> Self {
        self.collect = collect;
        self
    }

    /// Overrides the emulated per-element work
    /// ([`fw_engine::DEFAULT_ELEMENT_WORK`]); `0` disables the emulation.
    #[must_use]
    pub fn element_work(mut self, element_work: u32) -> Self {
        self.element_work = element_work;
        self
    }

    /// Sets the per-plan-node instrumentation level (default
    /// [`ProfileLevel::Off`]). [`ProfileLevel::Counters`] attributes
    /// updates, combines, seals, emitted rows, and pane occupancy to each
    /// plan node ([`Pipeline::profile`] / [`Pipeline::explain`]);
    /// [`ProfileLevel::Timed`] adds sampled per-node nanoseconds.
    /// Profiling is observation-only — results are bit-identical at every
    /// level.
    #[must_use]
    pub fn profiling(mut self, profile: ProfileLevel) -> Self {
        self.profile = profile;
        self
    }

    /// Enables adaptive re-optimization ([`fw_core::AdaptivePlanner`]):
    /// the pipeline estimates the observed ingestion rate (EWMA over
    /// event timestamps) and, at every [`Pipeline::advance_watermark`]
    /// boundary, re-runs the cost-based optimizer when the rate has
    /// drifted from the planned rate by at least `threshold` (a ratio
    /// greater than 1; e.g. `1.5` means ±50% drift). A re-optimization that changes
    /// the winning plan swaps it in place — window state migrates, so
    /// results are identical to a fixed-plan run, and
    /// [`fw_engine::ExecStats::replans`] counts the swaps.
    ///
    /// Adaptive pipelines compile onto the slot-based group core (the
    /// only core that supports live plan swaps), so single-aggregate
    /// queries give up the monomorphized fast path. Rejected at build
    /// time for all-holistic queries, whose three plans are identical at
    /// every rate.
    #[must_use]
    pub fn adaptive(mut self, threshold: f64) -> Self {
        self.adaptive = Some(threshold);
        self
    }

    /// Makes built pipelines durable: they compile onto the slot-based
    /// group core (the only core whose pane state is exportable) so
    /// [`Pipeline::checkpoint`] works. Single-aggregate queries give up
    /// the monomorphized fast path, exactly as with [`Session::adaptive`]
    /// (which implies durability). [`Session::restore`] accepts snapshots
    /// regardless of this flag.
    #[must_use]
    pub fn durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    /// Shards execution by key across worker threads
    /// ([`fw_engine::ShardedPipeline`]). The default,
    /// [`Parallelism::Sequential`], keeps the single-threaded in-process
    /// engine; [`Parallelism::Auto`] spawns one worker per available
    /// core; [`Parallelism::Fixed`]`(n)` pins the worker count. Results
    /// are identical across all settings (canonically ordered for the
    /// sharded backends).
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The query this session serves.
    #[must_use]
    pub fn query(&self) -> &WindowQuery {
        &self.query
    }

    /// Runs the cost-based optimizer (cached after the first call) and
    /// returns the full outcome: all three plan bundles, their costs, and
    /// the optimization timings.
    pub fn optimize(&self) -> ApiResult<&OptimizationOutcome> {
        if let Some(outcome) = self.outcome.get() {
            return Ok(outcome);
        }
        let outcome = match self.semantics {
            Some(semantics) => self
                .model_optimizer()
                .optimize_with(&self.query, semantics)?,
            None => self.model_optimizer().optimize(&self.query)?,
        };
        let _ = self.outcome.set(outcome);
        Ok(self.outcome.get().expect("just set"))
    }

    fn model_optimizer(&self) -> Optimizer {
        Optimizer::new(self.model)
    }

    /// The plan bundle the current policy selects.
    pub fn selected_plan(&self) -> ApiResult<&PlanBundle> {
        Ok(self.optimize()?.select(self.choice))
    }

    /// The plain `EXPLAIN` report for the selected plan: the cost
    /// model's predicted per-node pane flow, with no execution required
    /// (the observed side is absent). For the runtime join, build the
    /// pipeline and use [`Pipeline::profile`].
    pub fn plan_profile(&self) -> ApiResult<PlanProfile> {
        let outcome = self.optimize()?;
        let bundle = outcome.select(self.choice);
        let choice = outcome.resolve(self.choice);
        Ok(PlanProfile::assemble(
            &bundle.plan,
            &self.model,
            choice,
            bundle.cost,
            self.profile,
            false,
            0,
            ExecStats::default(),
            Vec::new(),
            0,
            None,
        )?)
    }

    /// Renders [`Session::plan_profile`] as text — what the SQL layer's
    /// `EXPLAIN <stmt>` prints.
    pub fn explain(&self) -> ApiResult<String> {
        Ok(self.plan_profile()?.render())
    }

    /// The concrete plan choice the current policy resolves to.
    pub fn resolved_choice(&self) -> ApiResult<PlanChoice> {
        Ok(self.optimize()?.resolve(self.choice))
    }

    /// Optimizes (once) and compiles the chosen plan into a long-lived
    /// [`Pipeline`]. Repeated builds reuse the cached optimization and
    /// only recompile operator state, so measuring several fresh pipelines
    /// is cheap. With [`Session::parallelism`] set, the pipeline
    /// transparently runs on the key-sharded multi-core backend.
    pub fn build(&self) -> ApiResult<Pipeline> {
        let outcome = self.optimize()?;
        let bundle = outcome.select(self.choice).clone();
        let choice = outcome.resolve(self.choice);
        let semantics = outcome.semantics;
        let options = PipelineOptions {
            collect: self.collect,
            element_work: self.element_work,
            out_of_order: self.out_of_order,
            profile: self.profile,
        };
        let adaptive = self.adaptive_state(semantics)?;
        // Adaptive pipelines swap plans in place and durable pipelines
        // export their pane state, both of which only the slot-based
        // group core supports.
        // Distributed parallelism dispatches on the variant, not the
        // shard count: the same worker number means processes there,
        // threads here.
        if let Parallelism::Distributed { workers } = self.parallelism {
            let grouped = adaptive.is_some() || self.durable;
            let backend = Backend::Dist(Box::new(DistPipeline::compile(
                &bundle.plan,
                options,
                grouped,
                workers,
            )?));
            return Ok(Pipeline {
                backend,
                bundle,
                choice,
                semantics,
                adaptive,
                model: self.model,
                profile: self.profile,
                trace: TraceRing::default(),
                seen_emitted: 0,
                seen_compactions: 0,
            });
        }
        let backend = match (
            self.parallelism.shard_count(),
            adaptive.is_some() || self.durable,
        ) {
            (0, false) => Backend::Single(Box::new(PlanPipeline::compile(&bundle.plan, options)?)),
            (0, true) => Backend::Single(Box::new(PlanPipeline::compile_grouped(
                &bundle.plan,
                options,
            )?)),
            (shards, false) => {
                Backend::Sharded(ShardedPipeline::compile(&bundle.plan, options, shards)?)
            }
            (shards, true) => Backend::Sharded(ShardedPipeline::compile_grouped(
                &bundle.plan,
                options,
                shards,
            )?),
        };
        Ok(Pipeline {
            backend,
            bundle,
            choice,
            semantics,
            adaptive,
            model: self.model,
            profile: self.profile,
            trace: TraceRing::default(),
            seen_emitted: 0,
            seen_compactions: 0,
        })
    }

    /// Builds the [`AdaptiveState`] for this configuration (`None` unless
    /// [`Session::adaptive`] was set).
    fn adaptive_state(&self, semantics: Option<Semantics>) -> ApiResult<Option<AdaptiveState>> {
        match self.adaptive {
            None => Ok(None),
            Some(threshold) => {
                let semantics = semantics.ok_or(CoreError::HolisticFunction {
                    function: self.query.function().name(),
                })?;
                let planner = AdaptivePlanner::from_model(
                    self.query.clone(),
                    semantics,
                    self.model,
                    threshold,
                )?;
                Ok(Some(AdaptiveState {
                    planner,
                    estimator: RateEstimator::new(ADAPTIVE_EWMA_ALPHA),
                    requested: self.choice,
                    observed_max: 0,
                }))
            }
        }
    }

    /// Rebuilds a pipeline from a [`Pipeline::checkpoint`] snapshot at
    /// this session's configuration. The session must describe the same
    /// query the snapshot was taken from — a snapshot carries no plan;
    /// slot identities are re-derived by re-running the deterministic
    /// optimizer. [`Session::parallelism`] may differ freely from the
    /// checkpointing run: the snapshot is shard-count-free, so a
    /// checkpoint taken at N shards restores into M worker threads (or
    /// the single-threaded backend) with byte-identical results.
    ///
    /// Restored pipelines are always durable. Adaptive rate-estimator
    /// state is deliberately not part of a snapshot — a restored adaptive
    /// session re-learns the observed rate from the replayed stream.
    pub fn restore<R: std::io::Read + ?Sized>(&self, r: &mut R) -> ApiResult<Pipeline> {
        let outcome = self.optimize()?;
        let bundle = outcome.select(self.choice).clone();
        let choice = outcome.resolve(self.choice);
        let semantics = outcome.semantics;
        let options = PipelineOptions {
            collect: self.collect,
            element_work: self.element_work,
            out_of_order: self.out_of_order,
            profile: self.profile,
        };
        let adaptive = self.adaptive_state(semantics)?;
        let backend = if let Parallelism::Distributed { workers } = self.parallelism {
            // The distributed restore re-partitions the document itself;
            // slurp the reader (checkpoints are in-memory/file sized).
            let mut doc = Vec::new();
            r.read_to_end(&mut doc).map_err(|e| CheckpointError::Io {
                kind: e.kind(),
                message: e.to_string(),
            })?;
            Backend::Dist(Box::new(DistPipeline::restore(
                &bundle.plan,
                options,
                true,
                workers,
                &doc,
            )?))
        } else {
            match self.parallelism.shard_count() {
                0 => Backend::Single(Box::new(PlanPipeline::restore(&bundle.plan, options, r)?)),
                shards => {
                    Backend::Sharded(ShardedPipeline::restore(&bundle.plan, options, shards, r)?)
                }
            }
        };
        let mut pipeline = Pipeline {
            backend,
            bundle,
            choice,
            semantics,
            adaptive,
            model: self.model,
            profile: self.profile,
            trace: TraceRing::default(),
            seen_emitted: 0,
            seen_compactions: 0,
        };
        let watermark = pipeline.watermark();
        let events = pipeline.events_processed();
        pipeline
            .trace
            .record(TraceEventKind::Resume, watermark, events);
        Ok(pipeline)
    }

    /// Convenience: build a pipeline, feed a whole in-order batch, finish.
    pub fn run_batch(&self, events: &[Event]) -> ApiResult<RunOutput> {
        let mut pipeline = self.build()?;
        pipeline.push_batch(events)?;
        pipeline.finish()
    }

    /// Measures the chosen plan's throughput over `events`: one warm-up
    /// run plus `repeats` measured runs, each on a freshly compiled
    /// pipeline with a count-only sink (the collect flag is ignored so
    /// sink costs stay constant across plans).
    pub fn measure_throughput(&self, events: &[Event], repeats: u32) -> ApiResult<Throughput> {
        let repeats = repeats.max(1);
        let session = self.clone().collect_results(false);
        session.optimize()?; // do not charge optimization to the warm-up
        session.run_batch(events)?; // warm-up: page in data, train branches
        let mut total = 0.0;
        let mut best = 0.0f64;
        for _ in 0..repeats {
            let eps = session.run_batch(events)?.throughput_eps();
            total += eps;
            best = best.max(eps);
        }
        Ok(Throughput {
            mean_eps: total / f64::from(repeats),
            best_eps: best,
            runs: repeats,
        })
    }
}

/// The execution backend a [`Pipeline`] runs on: the single-threaded
/// in-process engine, or the key-sharded multi-core engine.
#[derive(Debug)]
enum Backend {
    Single(Box<PlanPipeline>),
    Sharded(ShardedPipeline),
    Dist(Box<DistPipeline>),
}

/// EWMA weight of the newest rate observation for adaptive sessions: a
/// compromise between convergence speed (a few dozen time units) and
/// robustness against bursty arrivals.
const ADAPTIVE_EWMA_ALPHA: f64 = 0.2;

/// Runtime state of an adaptive pipeline: the rate estimator fed on every
/// push and the planner consulted at watermark boundaries.
#[derive(Debug, Clone)]
struct AdaptiveState {
    planner: AdaptivePlanner,
    estimator: RateEstimator,
    /// The session's plan-choice policy, re-applied after each
    /// re-optimization.
    requested: PlanChoice,
    /// Maximum event time fed to the estimator, which requires
    /// non-decreasing observations: late events (repaired by the reorder
    /// buffer before they reach the operators) are skipped rather than
    /// rewinding the estimator's time unit.
    observed_max: u64,
}

impl AdaptiveState {
    fn observe(&mut self, time: u64) {
        if time >= self.observed_max {
            self.estimator.observe(time);
            self.observed_max = time;
        }
    }
}

/// A compiled, long-lived execution pipeline produced by
/// [`Session::build`].
///
/// Wraps the engine's [`PlanPipeline`] (or, with [`Session::parallelism`],
/// a [`ShardedPipeline`]) together with the provenance of the plan it runs
/// (which [`PlanChoice`] won, at what modeled cost, under which
/// semantics). The two backends produce identical results; on the sharded
/// backend, engine errors may surface one call later than the event that
/// caused them (feeding is asynchronous), and polls are merged into
/// canonical `(window, instance, key)` order.
#[derive(Debug)]
pub struct Pipeline {
    backend: Backend,
    bundle: PlanBundle,
    choice: PlanChoice,
    semantics: Option<Semantics>,
    adaptive: Option<AdaptiveState>,
    /// The cost model the executing plan was priced under (rate refreshed
    /// on adaptive replans) — the predicted side of [`Pipeline::profile`].
    model: CostModel,
    /// The session's instrumentation level, echoed into reports.
    profile: ProfileLevel,
    /// Structured lifecycle log (seals, replans, checkpoints, interner
    /// compactions): the cores only count, the facade owns the ring.
    trace: TraceRing,
    /// Emitted-rows count at the last recorded boundary (seal deltas).
    seen_emitted: u64,
    /// Compaction count at the last recorded boundary (delta detection).
    seen_compactions: u64,
}

impl Pipeline {
    /// Pushes one event. Out-of-order input within the session's tolerance
    /// is repaired; anything later is an [`EngineError::OutOfOrderEvent`].
    pub fn push(&mut self, event: Event) -> ApiResult<()> {
        match &mut self.backend {
            Backend::Single(p) => p.push(event)?,
            Backend::Sharded(p) => p.push(event)?,
            Backend::Dist(p) => p.push(event)?,
        }
        if let Some(state) = &mut self.adaptive {
            state.observe(event.time);
        }
        Ok(())
    }

    /// Pushes a batch of in-order events (timed once around the batch;
    /// scattered by key in one pass on the sharded backend).
    pub fn push_batch(&mut self, events: &[Event]) -> ApiResult<()> {
        match &mut self.backend {
            Backend::Single(p) => p.push_batch(events)?,
            Backend::Sharded(p) => p.push_batch(events)?,
            Backend::Dist(p) => p.push_batch(events)?,
        }
        if let Some(state) = &mut self.adaptive {
            for event in events {
                state.observe(event.time);
            }
        }
        Ok(())
    }

    /// Pushes a columnar batch (equal-length timestamp/key/value slices) —
    /// the zero-copy ingestion primitive. On the single-threaded backend
    /// the columns are fed to the operators without materializing a single
    /// `Event`; on the sharded backend they are scattered column-to-column
    /// into the per-shard batches. Results are identical to pushing the
    /// same events through [`Self::push`] or [`Self::push_batch`].
    /// An [`fw_engine::EventBatch`] provides the columns via
    /// `batch.columns()`.
    pub fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> ApiResult<()> {
        match &mut self.backend {
            Backend::Single(p) => p.push_columns(times, keys, values)?,
            Backend::Sharded(p) => p.push_columns(times, keys, values)?,
            Backend::Dist(p) => p.push_columns(times, keys, values)?,
        }
        if let Some(state) = &mut self.adaptive {
            for &time in times {
                state.observe(time);
            }
        }
        Ok(())
    }

    /// Declares that no event before `watermark` will arrive: flushes the
    /// reorder buffer up to it and seals every window instance ending at
    /// or before it (broadcast to every shard on the sharded backend).
    ///
    /// On an adaptive session ([`Session::adaptive`]) this is also the
    /// re-optimization point: if the observed rate has drifted past the
    /// threshold and the re-derived winning plan differs, the pipeline
    /// swaps plans in place before returning (results are unaffected —
    /// window state migrates across the swap).
    pub fn advance_watermark(&mut self, watermark: u64) -> ApiResult<()> {
        match &mut self.backend {
            Backend::Single(p) => p.advance_watermark(watermark)?,
            Backend::Sharded(p) => p.advance_watermark(watermark)?,
            Backend::Dist(p) => p.advance_watermark(watermark)?,
        }
        self.note_boundary(watermark);
        self.maybe_replan(watermark)
    }

    /// Records the boundary in the trace ring: the seal itself, plus any
    /// interner compactions the core performed since the last boundary
    /// (the cores only maintain counters; the facade owns the ring, so
    /// the hot path stays allocation-free). On the sharded backend the
    /// payload counts stay zero — reading them would synchronize every
    /// worker at every watermark.
    fn note_boundary(&mut self, watermark: u64) {
        let (emitted, compactions) = match &self.backend {
            Backend::Single(p) => (p.results_emitted(), p.compactions()),
            Backend::Sharded(_) | Backend::Dist(_) => (self.seen_emitted, self.seen_compactions),
        };
        self.trace
            .record(TraceEventKind::Seal, watermark, emitted - self.seen_emitted);
        if compactions > self.seen_compactions {
            self.trace
                .record(TraceEventKind::Compaction, watermark, compactions);
        }
        self.seen_emitted = emitted;
        self.seen_compactions = compactions;
    }

    /// Consults the adaptive planner (no-op for static sessions): on a
    /// rate drift past the threshold, re-optimizes and swaps the plan at
    /// `watermark` if the plan the session's policy now selects differs
    /// from the executing one. The comparison is against the *selected*
    /// plan, not the planner's topology-change signal: under
    /// [`PlanChoice::Auto`] a rate change can flip which bundle is
    /// cheapest even when every bundle's topology is unchanged.
    fn maybe_replan(&mut self, watermark: u64) -> ApiResult<()> {
        let Some(state) = &mut self.adaptive else {
            return Ok(());
        };
        let Some(rate) = state.estimator.rate() else {
            return Ok(());
        };
        let _ = state.planner.observe_rate(rate)?;
        let outcome = state.planner.current();
        let bundle = outcome.select(state.requested);
        if bundle.plan == self.bundle.plan {
            return Ok(());
        }
        let bundle = bundle.clone();
        let choice = outcome.resolve(state.requested);
        match &mut self.backend {
            Backend::Single(p) => p.rebuild(&bundle.plan, watermark)?,
            Backend::Sharded(p) => p.rebuild(&bundle.plan, watermark)?,
            Backend::Dist(p) => p.rebuild(&bundle.plan, watermark)?,
        }
        self.bundle = bundle;
        self.choice = choice;
        // Keep the profile's predicted side honest: the executing plan is
        // now priced at the planner's refreshed rate.
        self.model = self.model.with_rate(state.planner.planned_rate());
        if let Some(r) = state.planner.last_replan() {
            let ratio_milli = (r.ratio * 1000.0).round() as u64;
            self.trace.record(
                TraceEventKind::Replan,
                r.observed.round() as u64,
                ratio_milli,
            );
        }
        self.trace
            .record(TraceEventKind::Rebuild, watermark, state.planner.replans());
        Ok(())
    }

    /// Writes a self-describing binary snapshot of the pipeline's live
    /// state — open panes, slot accumulators, the reorder buffer,
    /// undelivered results, cumulative accounting, and the sealing
    /// watermark — and keeps streaming (checkpointing is transparent: the
    /// pipeline's subsequent results are unaffected). Restore the bytes
    /// with [`Session::restore`], then replay the stream suffix starting
    /// at event number [`Pipeline::events_processed`] as observed at
    /// checkpoint time; recovery is then exactly-once — no window is
    /// emitted twice or skipped.
    ///
    /// Requires a durable pipeline ([`Session::durable`], implied by
    /// [`Session::adaptive`] and by [`Session::restore`]); otherwise
    /// fails with [`CheckpointError::Unsupported`].
    pub fn checkpoint<W: std::io::Write + ?Sized>(&mut self, w: &mut W) -> ApiResult<()> {
        match &mut self.backend {
            Backend::Single(p) => p.checkpoint(&self.bundle.plan, w)?,
            Backend::Sharded(p) => p.checkpoint(&self.bundle.plan, w)?,
            Backend::Dist(p) => p.checkpoint(w)?,
        }
        let watermark = self.watermark();
        let events = self.events_processed();
        self.trace
            .record(TraceEventKind::Checkpoint, watermark, events);
        Ok(())
    }

    /// Drains the results collected since the last poll (always empty
    /// unless the session enabled [`Session::collect_results`]). On the
    /// sharded backend this is a synchronizing barrier and the merged
    /// results come back canonically ordered.
    #[must_use]
    pub fn poll_results(&mut self) -> Vec<WindowResult> {
        match &mut self.backend {
            Backend::Single(p) => p.poll_results(),
            Backend::Sharded(p) => p.poll_results(),
            Backend::Dist(p) => p.poll_results(),
        }
    }

    /// Ends the stream and returns the run's accounting plus any results
    /// not yet polled.
    pub fn finish(self) -> ApiResult<RunOutput> {
        match self.backend {
            Backend::Single(p) => Ok(p.finish()?),
            Backend::Sharded(p) => Ok(p.finish()?),
            Backend::Dist(p) => Ok(p.finish()?),
        }
    }

    /// The logical plan this pipeline executes.
    #[must_use]
    pub fn plan(&self) -> &QueryPlan {
        &self.bundle.plan
    }

    /// The aggregate terms this pipeline evaluates, in SELECT-list order.
    /// A [`WindowResult::agg`] index points into this slice; for
    /// single-aggregate queries it is the one-element list.
    #[must_use]
    pub fn aggregates(&self) -> &[fw_core::AggregateSpec] {
        self.bundle.plan.aggregates()
    }

    /// The label of the aggregate term that produced `result` (the SQL
    /// `AS` alias, `FUNC(column)`, or the bare function name).
    #[must_use]
    pub fn label_of(&self, result: &WindowResult) -> &str {
        self.aggregates()[result.agg as usize].label()
    }

    /// The modeled cost of the executing plan.
    #[must_use]
    pub fn cost(&self) -> fw_core::Cost {
        self.bundle.cost
    }

    /// The concrete plan choice that was compiled (never
    /// [`PlanChoice::Auto`]).
    #[must_use]
    pub fn choice(&self) -> PlanChoice {
        self.choice
    }

    /// The coverage semantics the optimizer exploited (`None` when a
    /// holistic function fell back to the unshared plan).
    #[must_use]
    pub fn semantics(&self) -> Option<Semantics> {
        self.semantics
    }

    /// Events pushed into the pipeline so far, reorder-buffered and
    /// in-flight ones included — the replay cursor for
    /// [`Pipeline::checkpoint`]. The exact operator-fed count is in
    /// [`RunOutput::events_processed`].
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        match &self.backend {
            Backend::Single(p) => p.events_processed() + p.buffered() as u64,
            Backend::Sharded(p) => p.events_pushed(),
            Backend::Dist(p) => p.events_pushed(),
        }
    }

    /// Results emitted so far (including polled ones). A synchronizing
    /// snapshot on the sharded backend.
    #[must_use]
    pub fn results_emitted(&self) -> u64 {
        match &self.backend {
            Backend::Single(p) => p.results_emitted(),
            Backend::Sharded(p) => p.snapshot().1,
            Backend::Dist(p) => p.results_emitted(),
        }
    }

    /// Current ordering watermark.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        match &self.backend {
            Backend::Single(p) => p.watermark(),
            Backend::Sharded(p) => p.watermark(),
            Backend::Dist(p) => p.watermark(),
        }
    }

    /// Cost-model element counts so far (cumulative across any adaptive
    /// plan swaps; [`ExecStats::replans`] counts the swaps). A
    /// synchronizing snapshot on the sharded backend.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        match &self.backend {
            Backend::Single(p) => p.stats(),
            Backend::Sharded(p) => p.snapshot().2,
            Backend::Dist(p) => p.stats(),
        }
    }

    /// Key-interner high-water mark as `(slots, bytes)`: the most
    /// distinct keys interned since the last slab compaction and the
    /// interner's table memory, summed across shards on the sharded
    /// backend (a synchronizing snapshot there). Observability only.
    #[must_use]
    pub fn interner_stats(&self) -> (u64, u64) {
        match &self.backend {
            Backend::Single(p) => p.interner_stats(),
            Backend::Sharded(p) => p.interner_stats(),
            Backend::Dist(p) => p.interner_stats(),
        }
    }

    /// Per-plan-node observed counters (empty vectors of zeros unless the
    /// session enabled [`Session::profiling`]): updates, combines, seals,
    /// emitted rows, pane-slab occupancy high-water, and sampled
    /// nanoseconds per node, summed across shards and across adaptive
    /// plan generations. A synchronizing snapshot on the sharded backend.
    #[must_use]
    pub fn node_profiles(&self) -> Vec<NodeProfile> {
        match &self.backend {
            Backend::Single(p) => p.node_profiles(),
            Backend::Sharded(p) => p.node_profiles(),
            Backend::Dist(p) => p.node_profiles(),
        }
    }

    /// The `EXPLAIN ANALYZE` report: every plan node's observed counters
    /// joined with the cost model's predicted pane flow, plus the global
    /// [`ExecStats`] the per-node rows reconcile with and the last
    /// adaptive replan's observed/planned drift. Works at any
    /// [`ProfileLevel`] — with profiling off the observed side is zero.
    pub fn profile(&self) -> ApiResult<PlanProfile> {
        let observed = self.node_profiles();
        Ok(PlanProfile::assemble(
            &self.bundle.plan,
            &self.model,
            self.choice,
            self.bundle.cost,
            self.profile,
            true,
            self.watermark(),
            self.stats(),
            observed,
            self.replans(),
            self.adaptive
                .as_ref()
                .and_then(|s| s.planner.last_replan().copied()),
        )?)
    }

    /// Renders [`Pipeline::profile`] as fixed-layout text — what the SQL
    /// layer's `EXPLAIN ANALYZE <stmt>` prints.
    pub fn explain(&self) -> ApiResult<String> {
        Ok(self.profile()?.render())
    }

    /// Drains the structured trace events recorded since the last drain
    /// (watermark seals, adaptive replans and rebuilds, checkpoints,
    /// interner compactions, restore resumes), oldest first. The ring is
    /// bounded ([`fw_engine::DEFAULT_TRACE_CAP`]) and allocation-free on
    /// the recording side; overwritten events are counted in
    /// [`Pipeline::trace_dropped`].
    pub fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        self.trace.drain_into(out);
    }

    /// Trace events overwritten in the ring before being drained.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// The audit log of adaptive replans (empty on non-adaptive
    /// sessions): each entry records the observed/predicted rate ratio
    /// that triggered the re-optimization and whether the plan changed.
    #[must_use]
    pub fn replan_log(&self) -> &[fw_core::ReplanRecord] {
        self.adaptive
            .as_ref()
            .map_or(&[], |s| s.planner.replan_log())
    }

    /// The adaptive planner's current ingestion-rate estimate (events per
    /// time unit); `None` on non-adaptive sessions or before the first
    /// full time unit has been observed.
    #[must_use]
    pub fn observed_rate(&self) -> Option<f64> {
        self.adaptive.as_ref().and_then(|s| s.estimator.rate())
    }

    /// The rate the currently executing plan was optimized for (the cost
    /// model's η on non-adaptive sessions).
    #[must_use]
    pub fn planned_rate(&self) -> Option<u64> {
        self.adaptive.as_ref().map(|s| s.planner.planned_rate())
    }

    /// Adaptive re-optimizations performed so far (`0` on non-adaptive
    /// sessions; also reported as [`ExecStats::replans`], where only the
    /// re-optimizations that actually changed the plan perform a swap).
    #[must_use]
    pub fn replans(&self) -> u64 {
        self.adaptive.as_ref().map_or(0, |s| s.planner.replans())
    }

    /// Events currently held in the reorder buffer (single-threaded) or
    /// the ingest-side scatter buffers (sharded).
    #[must_use]
    pub fn buffered(&self) -> usize {
        match &self.backend {
            Backend::Single(p) => p.buffered(),
            Backend::Sharded(p) => p.buffered(),
            Backend::Dist(p) => p.buffered(),
        }
    }

    /// Number of shard worker threads (`0` on the single-threaded
    /// backend).
    #[must_use]
    pub fn shards(&self) -> usize {
        match &self.backend {
            Backend::Single(_) => 0,
            Backend::Sharded(p) => p.shards(),
            Backend::Dist(p) => p.workers(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_core::{AggregateFunction, Window, WindowSet};
    use fw_engine::sorted_results;

    fn demo_query() -> WindowQuery {
        let windows = WindowSet::new(vec![
            Window::tumbling(20).unwrap(),
            Window::tumbling(30).unwrap(),
            Window::tumbling(40).unwrap(),
        ])
        .unwrap();
        WindowQuery::new(windows, AggregateFunction::Min)
    }

    fn stream(n: u64) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t % 3) as u32, ((t * 7) % 23) as f64))
            .collect()
    }

    #[test]
    fn auto_resolves_to_the_cheapest_plan() {
        let session = Session::from_query(demo_query());
        assert_eq!(session.resolved_choice().unwrap(), PlanChoice::Factored);
        let pipeline = session.build().unwrap();
        assert_eq!(pipeline.choice(), PlanChoice::Factored);
        assert_eq!(pipeline.cost(), 150); // Example 7
    }

    #[test]
    fn all_choices_agree_on_results() {
        let events = stream(300);
        let mut all = Vec::new();
        for choice in PlanChoice::CONCRETE {
            let session = Session::from_query(demo_query())
                .plan_choice(choice)
                .collect_results(true);
            let out = session.run_batch(&events).unwrap();
            all.push(sorted_results(out.results));
        }
        assert!(!all[0].is_empty());
        assert_eq!(all[0], all[1]);
        assert_eq!(all[0], all[2]);
    }

    #[test]
    fn optimization_is_cached_across_builds() {
        let session = Session::from_query(demo_query());
        let first = session.optimize().unwrap() as *const OptimizationOutcome;
        let _ = session.build().unwrap();
        let _ = session.build().unwrap();
        let second = session.optimize().unwrap() as *const OptimizationOutcome;
        assert_eq!(first, second, "optimizer must run once per configuration");
    }

    #[test]
    fn cost_model_reset_invalidates_cache() {
        let session = Session::from_query(demo_query());
        let cost_at_1 = session.selected_plan().unwrap().cost;
        let session = session.cost_model(CostModel::new(4));
        let cost_at_4 = session.selected_plan().unwrap().cost;
        assert!(cost_at_4 > cost_at_1, "{cost_at_4} vs {cost_at_1}");
    }

    #[test]
    fn from_sql_round_trips_figure_one() {
        let session = Session::from_sql(fw_sql::FIG1_SQL).unwrap();
        assert_eq!(session.optimize().unwrap().original.cost, 21_600);
        let pipeline = session.build().unwrap();
        assert_eq!(pipeline.choice(), PlanChoice::Factored);
    }

    #[test]
    fn parse_errors_surface_as_api_errors() {
        let err = Session::from_sql("SELECT broken").unwrap_err();
        assert!(matches!(err, ApiError::Parse(_)), "{err}");
        assert!(err.to_string().contains("parse error"), "{err}");
    }

    #[test]
    fn semantics_violations_surface_as_api_errors() {
        let windows = WindowSet::new(vec![
            Window::tumbling(20).unwrap(),
            Window::tumbling(40).unwrap(),
        ])
        .unwrap();
        let query = WindowQuery::new(windows, AggregateFunction::Sum);
        let err = Session::from_query(query)
            .semantics(Semantics::CoveredBy)
            .build()
            .unwrap_err();
        assert!(matches!(err, ApiError::Optimize(_)), "{err}");
    }

    #[test]
    fn out_of_order_within_tolerance_is_repaired() {
        let ordered = stream(200);
        let mut jittered = ordered.clone();
        for chunk in jittered.chunks_mut(3) {
            chunk.reverse();
        }
        let session = Session::from_query(demo_query()).collect_results(true);
        let reference = session.run_batch(&ordered).unwrap();

        let tolerant = session.clone().out_of_order(4);
        let mut pipeline = tolerant.build().unwrap();
        for &e in &jittered {
            pipeline.push(e).unwrap();
        }
        let repaired = pipeline.finish().unwrap();
        assert_eq!(
            sorted_results(repaired.results),
            sorted_results(reference.results)
        );

        // Without tolerance the jitter is a hard error.
        let strict = session.run_batch(&jittered).unwrap_err();
        assert!(matches!(
            strict,
            ApiError::Engine(EngineError::OutOfOrderEvent { .. })
        ));
    }

    #[test]
    fn sharded_backends_match_sequential_results() {
        let events = stream(400);
        let sequential = Session::from_query(demo_query())
            .collect_results(true)
            .element_work(0)
            .run_batch(&events)
            .unwrap();
        for parallelism in [
            Parallelism::Auto,
            Parallelism::Fixed(1),
            Parallelism::Fixed(3),
        ] {
            let session = Session::from_query(demo_query())
                .collect_results(true)
                .element_work(0)
                .parallelism(parallelism);
            let mut pipeline = session.build().unwrap();
            assert!(pipeline.shards() >= 1, "{parallelism:?}");
            pipeline.push_batch(&events).unwrap();
            let out = pipeline.finish().unwrap();
            assert_eq!(out.events_processed, 400);
            assert_eq!(
                sorted_results(sequential.results.clone()),
                out.results,
                "{parallelism:?}"
            );
        }
    }

    #[test]
    fn sharded_incremental_push_with_watermarks_matches_batch() {
        let events = stream(300);
        let session = Session::from_query(demo_query())
            .collect_results(true)
            .element_work(0);
        let batch = session.run_batch(&events).unwrap();

        let mut pipeline = session.parallelism(Parallelism::Fixed(2)).build().unwrap();
        let mut collected = Vec::new();
        for (i, &event) in events.iter().enumerate() {
            pipeline.push(event).unwrap();
            if i % 120 == 119 {
                pipeline.advance_watermark(event.time).unwrap();
                collected.extend(pipeline.poll_results());
            }
        }
        let tail = pipeline.finish().unwrap();
        collected.extend(tail.results);
        assert_eq!(sorted_results(batch.results), sorted_results(collected));
    }

    #[test]
    fn multi_aggregate_sql_tags_results_with_labels() {
        let sql = "SELECT k, MIN(v) AS Low, MAX(v) AS High, COUNT(*) \
                   FROM S GROUP BY k, Windows( \
                       Window('fast', TumblingWindow(second, 10)), \
                       Window('slow', TumblingWindow(second, 20)))";
        let session = Session::from_sql(sql).unwrap().collect_results(true);
        let mut pipeline = session.build().unwrap();
        let labels: Vec<String> = pipeline
            .aggregates()
            .iter()
            .map(|s| s.label().to_string())
            .collect();
        assert_eq!(labels, vec!["Low", "High", "COUNT(*)"]);
        for t in 0..25u64 {
            pipeline.push(Event::new(t, 0, (t % 7) as f64)).unwrap();
        }
        pipeline.advance_watermark(20).unwrap();
        let sealed = pipeline.poll_results();
        // Two 10s instances + one 20s instance, three terms each.
        assert_eq!(sealed.len(), 3 * 3);
        for r in &sealed {
            let label = pipeline.label_of(r).to_string();
            assert_eq!(label, labels[r.agg as usize]);
        }
        // COUNT over [0,10) is 10 whatever the window.
        let count0 = sealed
            .iter()
            .find(|r| r.agg == 2 && r.interval.start == 0 && r.window.range() == 10)
            .unwrap();
        assert_eq!(count0.value, 10.0);
    }

    #[test]
    fn single_aggregate_pipelines_expose_one_term() {
        let pipeline = Session::from_query(demo_query()).build().unwrap();
        assert_eq!(pipeline.aggregates().len(), 1);
        assert_eq!(pipeline.aggregates()[0].label(), "MIN");
    }

    #[test]
    fn adaptive_session_replans_on_rate_drift_without_changing_results() {
        // The window set whose best factor structure differs between
        // η = 1 and η = 2+ (see fw_core::adaptive): a real rate jump must
        // trigger a replan, and the in-place plan swap must not disturb
        // results.
        let windows = WindowSet::new(
            [10u64, 20, 94, 100, 300]
                .map(|r| Window::tumbling(r).unwrap())
                .to_vec(),
        )
        .unwrap();
        let query = WindowQuery::new(windows, AggregateFunction::Min);

        // Phase 1: one event per time unit; phase 2: four per unit.
        let mut events = Vec::new();
        for t in 0..600u64 {
            events.push(Event::new(t, (t % 3) as u32, (t % 19) as f64));
        }
        for t in 600..1200u64 {
            for k in 0..4u32 {
                events.push(Event::new(t, k, ((t + u64::from(k)) % 19) as f64));
            }
        }

        let reference = Session::from_query(query.clone())
            .collect_results(true)
            .element_work(0)
            .run_batch(&events)
            .unwrap();

        for parallelism in [Parallelism::Sequential, Parallelism::Fixed(2)] {
            let session = Session::from_query(query.clone())
                .adaptive(1.5)
                .collect_results(true)
                .element_work(0)
                .parallelism(parallelism);
            let mut pipeline = session.build().unwrap();
            assert_eq!(pipeline.replans(), 0);
            let mut collected = Vec::new();
            for chunk in events.chunks(300) {
                pipeline.push_batch(chunk).unwrap();
                let watermark = pipeline.watermark();
                pipeline.advance_watermark(watermark).unwrap();
                collected.extend(pipeline.poll_results());
            }
            assert!(
                pipeline.replans() >= 1,
                "rate doubled but no replan ({parallelism:?})"
            );
            let rate = pipeline.observed_rate().unwrap();
            assert!(rate > 2.0, "estimator should see the jump, got {rate}");
            assert!(pipeline.planned_rate().unwrap() >= 2);
            let out = pipeline.finish().unwrap();
            assert!(out.stats.replans >= 1, "{parallelism:?}");
            collected.extend(out.results);
            assert_eq!(
                sorted_results(collected),
                sorted_results(reference.results.clone()),
                "adaptive replanning changed results under {parallelism:?}"
            );
        }
    }

    #[test]
    fn adaptive_session_tolerates_out_of_order_input() {
        // Late events are repaired by the reorder buffer before reaching
        // the operators; the rate estimator must skip them rather than
        // rewinding its time unit (a regression would panic in debug
        // builds and inflate the estimate in release).
        let windows = WindowSet::new(vec![
            Window::tumbling(20).unwrap(),
            Window::tumbling(40).unwrap(),
        ])
        .unwrap();
        let query = WindowQuery::new(windows, AggregateFunction::Min);
        let ordered = stream(400);
        let mut jittered = ordered.clone();
        for chunk in jittered.chunks_mut(4) {
            chunk.reverse();
        }
        let reference = Session::from_query(query.clone())
            .collect_results(true)
            .element_work(0)
            .run_batch(&ordered)
            .unwrap();
        let mut pipeline = Session::from_query(query)
            .adaptive(1.5)
            .out_of_order(4)
            .collect_results(true)
            .element_work(0)
            .build()
            .unwrap();
        for &e in &jittered {
            pipeline.push(e).unwrap();
        }
        let watermark = pipeline.watermark();
        pipeline.advance_watermark(watermark).unwrap();
        assert!(pipeline.observed_rate().is_some());
        let out = pipeline.finish().unwrap();
        assert_eq!(
            sorted_results(out.results),
            sorted_results(reference.results)
        );
    }

    #[test]
    fn adaptive_rejects_all_holistic_queries() {
        let windows = WindowSet::new(vec![Window::tumbling(20).unwrap()]).unwrap();
        let query = WindowQuery::new(windows, AggregateFunction::Median);
        let err = Session::from_query(query)
            .adaptive(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ApiError::Optimize(fw_core::Error::HolisticFunction { .. })
        ));
    }

    #[test]
    fn durable_pipeline_checkpoints_and_restores_across_parallelism() {
        let events = stream(400);
        let session = Session::from_query(demo_query())
            .collect_results(true)
            .element_work(0)
            .durable(true)
            .parallelism(Parallelism::Fixed(2));
        let reference = session.run_batch(&events).unwrap();

        let mut pipeline = session.build().unwrap();
        pipeline.push_batch(&events[..250]).unwrap();
        let cursor = pipeline.events_processed() as usize;
        assert_eq!(cursor, 250);
        let mut snapshot = Vec::new();
        pipeline.checkpoint(&mut snapshot).unwrap();

        // Checkpointing is transparent: the live pipeline streams on.
        pipeline.push_batch(&events[250..]).unwrap();
        let live = pipeline.finish().unwrap();
        assert_eq!(
            sorted_results(live.results),
            sorted_results(reference.results.clone())
        );

        // The snapshot restores at any parallelism (2 -> 0, 2 -> 4).
        for restorer in [
            session.clone().parallelism(Parallelism::Sequential),
            session.clone().parallelism(Parallelism::Fixed(4)),
        ] {
            let mut restored = restorer.restore(&mut snapshot.as_slice()).unwrap();
            restored.push_batch(&events[cursor..]).unwrap();
            let out = restored.finish().unwrap();
            assert_eq!(out.events_processed, 400);
            assert_eq!(
                sorted_results(out.results),
                sorted_results(reference.results.clone())
            );
        }
    }

    #[test]
    fn checkpoint_requires_a_durable_session() {
        let mut pipeline = Session::from_query(demo_query()).build().unwrap();
        let err = pipeline.checkpoint(&mut Vec::new()).unwrap_err();
        assert!(matches!(
            err,
            ApiError::Checkpoint(CheckpointError::Unsupported { .. })
        ));
    }

    #[test]
    fn restore_rejects_foreign_bytes() {
        let session = Session::from_query(demo_query());
        let err = session.restore(&mut &b"not a checkpoint"[..]).unwrap_err();
        assert!(matches!(
            err,
            ApiError::Checkpoint(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn throughput_measurement_reports_sane_numbers() {
        let session = Session::from_query(demo_query()).element_work(0);
        let tp = session.measure_throughput(&stream(5_000), 2).unwrap();
        assert!(tp.mean_eps > 0.0 && tp.mean_eps.is_finite());
        assert!(tp.best_eps >= tp.mean_eps * 0.5);
        assert_eq!(tp.runs, 2);
    }
}
