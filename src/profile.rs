//! `EXPLAIN` / `EXPLAIN ANALYZE` reports: the cost model's predicted
//! per-node pane flow joined with the runtime's observed counters.
//!
//! The optimizer picks factored plans by *predicting* pane flow per plan
//! node (`n·η·r` raw updates, `n·M` shared combines — Section III-B of
//! the paper); the engine *observes* the same quantities per node when a
//! session enables [`Session::profiling`](crate::Session::profiling).
//! A [`PlanProfile`] joins the two sides row by row so the central claim
//! of the paper — the cost model's flow split holds at runtime — is
//! checkable on any live pipeline:
//!
//! * [`Pipeline::profile`](crate::Pipeline::profile) /
//!   [`Pipeline::explain`](crate::Pipeline::explain) produce the
//!   `EXPLAIN ANALYZE` report (predicted + observed + ratios);
//! * [`Session::plan_profile`](crate::Session::plan_profile) /
//!   [`Session::explain`](crate::Session::explain) produce the plain
//!   `EXPLAIN` report (predicted flow only, no execution required).
//!
//! Reports render as fixed-layout text ([`PlanProfile::render`]) and as
//! JSON through the workspace's dependency-free codec
//! ([`fw_core::json::ToJson`]). Observed counters always reconcile with
//! the pipeline's global [`ExecStats`]: live rows plus
//! [`PlanProfile::retired`] rows sum exactly to the cumulative totals.

use fw_core::json::{JsonValue, ToJson};
use fw_core::{Cost, CostModel, PlanChoice, QueryPlan, ReplanRecord};
use fw_engine::{ExecStats, NodeProfile, ProfileLevel, RETIRED_NODE};

/// One window node's row in an `EXPLAIN [ANALYZE]` report.
///
/// The predicted side comes from [`fw_core::NodeFlow`] (per cost-model
/// period); the observed side is cumulative since pipeline start. The
/// two are scale-incommensurate, so the comparison is by *share*:
/// [`NodeReport::flow_ratio`] divides the node's share of observed pane
/// elements by its share of predicted flow.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Plan node id; [`fw_engine::RETIRED_NODE`] for rows whose window
    /// left the plan in a replan (retired-generation counters).
    pub node: usize,
    /// Display label from the query text (empty for retired rows).
    pub label: String,
    /// Window range.
    pub range: u64,
    /// Window slide.
    pub slide: u64,
    /// Whether the node contributes rows to the query output.
    pub exposed: bool,
    /// Whether the node ingests the raw stream (vs. sub-aggregates fed
    /// from another window).
    pub raw_fed: bool,
    /// Predicted pane updates per cost-model period (`n·η·r`).
    pub predicted_updates: Cost,
    /// Predicted pane combines per period (`n·M`).
    pub predicted_combines: Cost,
    /// The node's share of the modeled plan cost, fan-out surcharge
    /// included; summing over the live rows reproduces the plan cost
    /// exactly.
    pub predicted_cost: Cost,
    /// Observed raw-event accumulator updates.
    pub updates: u64,
    /// Observed sub-aggregate combines.
    pub combines: u64,
    /// Observed per-term accumulator operations.
    pub agg_ops: u64,
    /// Window instances sealed at this node.
    pub seals: u64,
    /// Result rows emitted from this node (zero for factor windows).
    pub emitted: u64,
    /// High-water of live pane-slab entries (summed across shards).
    pub pane_live_hw: u64,
    /// Sampled nanoseconds attributed to this node (see
    /// [`fw_engine::PROFILE_CLOCK_STRIDE`]); zero unless the session
    /// profiles at [`ProfileLevel::Timed`].
    pub nanos: u64,
    /// Observed share of pane elements divided by predicted share
    /// (`1.0` = the model's flow split held at runtime). `None` on plain
    /// `EXPLAIN`, for nodes with no predicted flow, and before any
    /// elements were observed.
    pub flow_ratio: Option<f64>,
}

impl NodeReport {
    /// Observed pane elements (updates + combines) at this node.
    #[must_use]
    pub fn observed_elements(&self) -> u64 {
        self.updates + self.combines
    }

    /// Predicted pane elements per period (updates + combines, before
    /// the fan-out surcharge).
    #[must_use]
    pub fn predicted_elements(&self) -> Cost {
        self.predicted_updates
            .saturating_add(self.predicted_combines)
    }

    /// Short role tag for display: feed source and output exposure.
    #[must_use]
    pub fn role(&self) -> String {
        let feed = if self.raw_fed { "raw" } else { "fed" };
        let out = if self.exposed { "exposed" } else { "factor" };
        format!("{feed},{out}")
    }
}

/// A full `EXPLAIN [ANALYZE]` report for one executing (or merely
/// planned) pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProfile {
    /// The plan choice the report describes: the concrete resolved
    /// choice for single-query pipelines and shared groups; the group's
    /// plan policy (possibly [`PlanChoice::Auto`]) for per-query groups,
    /// whose members resolve independently.
    pub choice: PlanChoice,
    /// Modeled plan cost per period.
    pub cost: Cost,
    /// The instrumentation level the pipeline runs at. With
    /// [`ProfileLevel::Off`] an `ANALYZE` report still reconciles — all
    /// per-node observed counters are simply zero.
    pub level: ProfileLevel,
    /// `true` for `EXPLAIN ANALYZE` (observed side populated), `false`
    /// for plain `EXPLAIN` (predicted side only).
    pub analyze: bool,
    /// Sealing watermark at report time.
    pub watermark: u64,
    /// Global cumulative execution counters at report time; the per-node
    /// rows (live + retired) sum exactly to these.
    pub stats: ExecStats,
    /// Adaptive re-optimizations performed so far.
    pub replans: u64,
    /// The most recent adaptive replan decision (the observed/predicted
    /// rate drift that triggered it), if any.
    pub last_replan: Option<ReplanRecord>,
    /// Live plan nodes, in plan order.
    pub nodes: Vec<NodeReport>,
    /// Counters of windows that left the plan in a replan: no predicted
    /// side, but required for the observed totals to reconcile with
    /// [`PlanProfile::stats`].
    pub retired: Vec<NodeReport>,
}

impl PlanProfile {
    /// Joins a plan's predicted flow with a set of observed node
    /// profiles into a report.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        plan: &QueryPlan,
        model: &CostModel,
        choice: PlanChoice,
        cost: Cost,
        level: ProfileLevel,
        analyze: bool,
        watermark: u64,
        stats: ExecStats,
        observed: Vec<NodeProfile>,
        replans: u64,
        last_replan: Option<ReplanRecord>,
    ) -> fw_core::Result<PlanProfile> {
        let flows = plan.node_flows(model)?;
        Ok(Self::assemble_from_flows(
            flows,
            choice,
            cost,
            level,
            analyze,
            watermark,
            stats,
            observed,
            replans,
            last_replan,
        ))
    }

    /// Joins an already-computed predicted flow set with observed node
    /// profiles. Used directly by per-query groups, whose members'
    /// per-plan flows are merged by window identity before the join.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble_from_flows(
        flows: Vec<fw_core::NodeFlow>,
        choice: PlanChoice,
        cost: Cost,
        level: ProfileLevel,
        analyze: bool,
        watermark: u64,
        stats: ExecStats,
        mut observed: Vec<NodeProfile>,
        replans: u64,
        last_replan: Option<ReplanRecord>,
    ) -> PlanProfile {
        let total_pred: Cost = flows.iter().map(fw_core::NodeFlow::elements).sum();
        let total_obs: u64 = observed.iter().map(|p| p.updates + p.combines).sum();
        let mut nodes = Vec::with_capacity(flows.len());
        for f in &flows {
            let obs = take_observed(&mut observed, f.node, f.window.range(), f.window.slide());
            let mut row = NodeReport {
                node: f.node,
                label: f.label.clone(),
                range: f.window.range(),
                slide: f.window.slide(),
                exposed: f.exposed,
                raw_fed: f.fed_by.is_none(),
                predicted_updates: f.updates,
                predicted_combines: f.combines,
                predicted_cost: f.cost,
                updates: obs.updates,
                combines: obs.combines,
                agg_ops: obs.agg_ops,
                seals: obs.seals,
                emitted: obs.emitted,
                pane_live_hw: obs.pane_live_hw,
                nanos: obs.nanos,
                flow_ratio: None,
            };
            if analyze && total_obs > 0 && total_pred > 0 && f.elements() > 0 {
                let obs_share = row.observed_elements() as f64 / total_obs as f64;
                let pred_share = f.elements() as f64 / total_pred as f64;
                row.flow_ratio = Some(obs_share / pred_share);
            }
            nodes.push(row);
        }
        // Whatever observed counters found no flow row belong to windows
        // of retired plan generations: keep them so totals reconcile.
        let retired = observed
            .into_iter()
            .map(|p| NodeReport {
                node: RETIRED_NODE,
                label: String::new(),
                range: p.range,
                slide: p.slide,
                exposed: p.exposed,
                raw_fed: p.raw_fed,
                predicted_updates: 0,
                predicted_combines: 0,
                predicted_cost: 0,
                updates: p.updates,
                combines: p.combines,
                agg_ops: p.agg_ops,
                seals: p.seals,
                emitted: p.emitted,
                pane_live_hw: p.pane_live_hw,
                nanos: p.nanos,
                flow_ratio: None,
            })
            .collect();
        PlanProfile {
            choice,
            cost,
            level,
            analyze,
            watermark,
            stats,
            replans,
            last_replan,
            nodes,
            retired,
        }
    }

    /// Observed totals over every row, live and retired, as
    /// `(updates, combines, agg_ops)`. On a settled pipeline (no events
    /// staged in shard queues) these equal the global
    /// [`PlanProfile::stats`] exactly.
    #[must_use]
    pub fn observed_totals(&self) -> (u64, u64, u64) {
        let mut totals = (0, 0, 0);
        for r in self.nodes.iter().chain(&self.retired) {
            totals.0 += r.updates;
            totals.1 += r.combines;
            totals.2 += r.agg_ops;
        }
        totals
    }

    /// Renders the report as fixed-layout text: `EXPLAIN` shows the
    /// predicted columns only; `EXPLAIN ANALYZE` appends the observed
    /// columns, the reconciliation totals, and the last replan's drift.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let verb = if self.analyze {
            "EXPLAIN ANALYZE"
        } else {
            "EXPLAIN"
        };
        let _ = write!(
            out,
            "{verb}  plan={:?}  cost/period={}",
            self.choice, self.cost
        );
        if self.analyze {
            let _ = write!(
                out,
                "  profiling={:?}  watermark={}  replans={}",
                self.level, self.watermark, self.replans
            );
        }
        out.push('\n');
        let name_w = self
            .nodes
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let _ = write!(
            out,
            "{:<6} {:<name_w$} {:>14} {:<12} {:>12} {:>12} {:>12}",
            "node", "window", "[range/slide]", "role", "pred.upd", "pred.cmb", "pred.cost"
        );
        if self.analyze {
            let _ = write!(
                out,
                " | {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>10} {:>6}",
                "updates", "combines", "agg_ops", "seals", "rows", "pane_hw", "time_ms", "flow"
            );
        }
        out.push('\n');
        for r in self.nodes.iter().chain(&self.retired) {
            let id = if r.node == RETIRED_NODE {
                "-".to_string()
            } else {
                format!("#{}", r.node)
            };
            let label = if r.node == RETIRED_NODE {
                "(retired)"
            } else {
                r.label.as_str()
            };
            let _ = write!(
                out,
                "{:<6} {:<name_w$} {:>14} {:<12} {:>12} {:>12} {:>12}",
                id,
                label,
                format!("[{}/{}]", r.range, r.slide),
                r.role(),
                r.predicted_updates,
                r.predicted_combines,
                r.predicted_cost
            );
            if self.analyze {
                let flow = r
                    .flow_ratio
                    .map_or_else(|| "-".to_string(), |x| format!("{x:.2}"));
                let _ = write!(
                    out,
                    " | {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>10.2} {:>6}",
                    r.updates,
                    r.combines,
                    r.agg_ops,
                    r.seals,
                    r.emitted,
                    r.pane_live_hw,
                    r.nanos as f64 / 1e6,
                    flow
                );
            }
            out.push('\n');
        }
        if self.analyze {
            let (u, c, a) = self.observed_totals();
            let _ = writeln!(
                out,
                "totals  updates={u}/{}  combines={c}/{}  agg_ops={a}/{}  (observed/ExecStats)",
                self.stats.updates, self.stats.combines, self.stats.agg_ops
            );
            match &self.last_replan {
                Some(r) => {
                    let _ = writeln!(
                        out,
                        "last replan  observed={:.2}  planned={:.2}  drift={:.2}x  plan_changed={}",
                        r.observed, r.planned, r.ratio, r.plan_changed
                    );
                }
                None => {
                    let _ = writeln!(out, "last replan  none");
                }
            }
        }
        out
    }
}

/// Extracts the observed profile for a flow row: matched by live node id
/// first, then by window identity (tolerates id reassignment across
/// replans). Returns zeroed counters when nothing was observed.
fn take_observed(
    observed: &mut Vec<NodeProfile>,
    node: usize,
    range: u64,
    slide: u64,
) -> NodeProfile {
    let by_id = observed.iter().position(|p| p.node == node);
    let idx = by_id.or_else(|| {
        observed
            .iter()
            .position(|p| p.range == range && p.slide == slide)
    });
    match idx {
        Some(i) => observed.swap_remove(i),
        None => NodeProfile::default(),
    }
}

/// Encodes a float as a JSON string with fixed precision (the in-tree
/// JSON codec is integer-only by design; ratios ride as strings).
fn json_f64(v: f64) -> JsonValue {
    JsonValue::String(format!("{v:.6}"))
}

fn json_cost(v: Cost) -> JsonValue {
    JsonValue::Number(i128::try_from(v).unwrap_or(i128::MAX))
}

impl ToJson for NodeReport {
    fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            (
                "node".to_string(),
                if self.node == RETIRED_NODE {
                    JsonValue::Null
                } else {
                    JsonValue::Number(self.node as i128)
                },
            ),
            ("label".to_string(), JsonValue::String(self.label.clone())),
            (
                "range".to_string(),
                JsonValue::Number(i128::from(self.range)),
            ),
            (
                "slide".to_string(),
                JsonValue::Number(i128::from(self.slide)),
            ),
            ("exposed".to_string(), JsonValue::Bool(self.exposed)),
            ("raw_fed".to_string(), JsonValue::Bool(self.raw_fed)),
            (
                "predicted_updates".to_string(),
                json_cost(self.predicted_updates),
            ),
            (
                "predicted_combines".to_string(),
                json_cost(self.predicted_combines),
            ),
            ("predicted_cost".to_string(), json_cost(self.predicted_cost)),
            (
                "updates".to_string(),
                JsonValue::Number(i128::from(self.updates)),
            ),
            (
                "combines".to_string(),
                JsonValue::Number(i128::from(self.combines)),
            ),
            (
                "agg_ops".to_string(),
                JsonValue::Number(i128::from(self.agg_ops)),
            ),
            (
                "seals".to_string(),
                JsonValue::Number(i128::from(self.seals)),
            ),
            (
                "emitted".to_string(),
                JsonValue::Number(i128::from(self.emitted)),
            ),
            (
                "pane_live_hw".to_string(),
                JsonValue::Number(i128::from(self.pane_live_hw)),
            ),
            (
                "nanos".to_string(),
                JsonValue::Number(i128::from(self.nanos)),
            ),
        ];
        fields.push((
            "flow_ratio".to_string(),
            self.flow_ratio.map_or(JsonValue::Null, json_f64),
        ));
        JsonValue::Object(fields)
    }
}

impl ToJson for PlanProfile {
    fn to_json_value(&self) -> JsonValue {
        let replan = self.last_replan.as_ref().map_or(JsonValue::Null, |r| {
            JsonValue::Object(vec![
                ("observed".to_string(), json_f64(r.observed)),
                ("planned".to_string(), json_f64(r.planned)),
                ("ratio".to_string(), json_f64(r.ratio)),
                ("plan_changed".to_string(), JsonValue::Bool(r.plan_changed)),
            ])
        });
        let (u, c, a) = self.observed_totals();
        JsonValue::Object(vec![
            (
                "choice".to_string(),
                JsonValue::String(format!("{:?}", self.choice)),
            ),
            ("cost".to_string(), json_cost(self.cost)),
            (
                "level".to_string(),
                JsonValue::String(format!("{:?}", self.level)),
            ),
            ("analyze".to_string(), JsonValue::Bool(self.analyze)),
            (
                "watermark".to_string(),
                JsonValue::Number(i128::from(self.watermark)),
            ),
            (
                "stats".to_string(),
                JsonValue::Object(vec![
                    (
                        "updates".to_string(),
                        JsonValue::Number(i128::from(self.stats.updates)),
                    ),
                    (
                        "combines".to_string(),
                        JsonValue::Number(i128::from(self.stats.combines)),
                    ),
                    (
                        "agg_ops".to_string(),
                        JsonValue::Number(i128::from(self.stats.agg_ops)),
                    ),
                    (
                        "replans".to_string(),
                        JsonValue::Number(i128::from(self.stats.replans)),
                    ),
                ]),
            ),
            (
                "observed_totals".to_string(),
                JsonValue::Object(vec![
                    ("updates".to_string(), JsonValue::Number(i128::from(u))),
                    ("combines".to_string(), JsonValue::Number(i128::from(c))),
                    ("agg_ops".to_string(), JsonValue::Number(i128::from(a))),
                ]),
            ),
            (
                "replans".to_string(),
                JsonValue::Number(i128::from(self.replans)),
            ),
            ("last_replan".to_string(), replan),
            (
                "nodes".to_string(),
                JsonValue::Array(self.nodes.iter().map(ToJson::to_json_value).collect()),
            ),
            (
                "retired".to_string(),
                JsonValue::Array(self.retired.iter().map(ToJson::to_json_value).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use fw_engine::Event;

    fn fig1_session() -> Session {
        Session::from_sql(fw_sql::FIG1_SQL).unwrap()
    }

    #[test]
    fn plain_explain_reports_predicted_flow_only() {
        let profile = fig1_session().plan_profile().unwrap();
        assert!(!profile.analyze);
        assert!(!profile.nodes.is_empty());
        assert!(profile.retired.is_empty());
        let cost_sum: Cost = profile.nodes.iter().map(|n| n.predicted_cost).sum();
        assert_eq!(cost_sum, profile.cost, "node costs decompose plan cost");
        let text = profile.render();
        assert!(text.starts_with("EXPLAIN  plan="), "{text}");
        assert!(
            !text.contains("totals"),
            "plain EXPLAIN has no observed side"
        );
    }

    #[test]
    fn analyze_reconciles_with_exec_stats() {
        let mut pipeline = fig1_session()
            .profiling(ProfileLevel::Counters)
            .build()
            .unwrap();
        for t in 0..1200u64 {
            pipeline
                .push(Event::new(t, (t % 3) as u32, (t % 17) as f64))
                .unwrap();
        }
        pipeline.advance_watermark(1200).unwrap();
        let profile = pipeline.profile().unwrap();
        assert!(profile.analyze);
        let (u, c, a) = profile.observed_totals();
        assert_eq!(u, profile.stats.updates);
        assert_eq!(c, profile.stats.combines);
        assert_eq!(a, profile.stats.agg_ops);
        assert!(u > 0);
        let text = pipeline.explain().unwrap();
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("totals"), "{text}");
    }

    #[test]
    fn profile_json_round_trips_through_the_parser() {
        let profile = fig1_session().plan_profile().unwrap();
        let text = profile.to_json();
        let doc = fw_core::json::parse(&text).unwrap();
        assert_eq!(doc.get("analyze"), Some(&JsonValue::Bool(false)), "{text}");
        let nodes = doc.get("nodes").unwrap();
        match nodes {
            JsonValue::Array(items) => assert_eq!(items.len(), profile.nodes.len()),
            other => panic!("nodes should be an array, got {other:?}"),
        }
    }
}
