//! Serialization round-trips: windows, window sets, and whole plans are
//! JSON-serializable (via the crate's dependency-free [`fw_core::json`]
//! codec) so deployments can persist optimizer decisions — e.g. ship a
//! rewritten plan to a fleet of stream processors.

use fw_core::json::{FromJson, ToJson};
use fw_core::prelude::*;
use fw_core::{AggregateSpec, QueryPlan};

fn example_outcome() -> fw_core::OptimizationOutcome {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(30).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Min);
    Optimizer::default().optimize(&query).unwrap()
}

#[test]
fn window_round_trips_through_json() {
    let w = Window::hopping(40, 10).unwrap();
    let json = w.to_json();
    let back = Window::from_json(&json).unwrap();
    assert_eq!(w, back);
    assert_eq!(json, r#"{"range":40,"slide":10}"#);
}

#[test]
fn window_set_round_trips_through_json() {
    let ws = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::hopping(60, 20).unwrap(),
    ])
    .unwrap();
    let json = ws.to_json();
    let back = WindowSet::from_json(&json).unwrap();
    assert_eq!(ws, back);
}

#[test]
fn plans_round_trip_through_json() {
    let outcome = example_outcome();
    for bundle in [&outcome.original, &outcome.rewritten, &outcome.factored] {
        let json = bundle.plan.to_json();
        let back = QueryPlan::from_json(&json).unwrap();
        assert_eq!(bundle.plan, back);
        assert!(back.validate().is_ok());
        // A deserialized plan is fully functional.
        assert_eq!(back.cost(&CostModel::default()).unwrap(), bundle.cost);
        assert_eq!(back.to_trill_string(), bundle.plan.to_trill_string());
    }
}

#[test]
fn factored_plan_json_marks_hidden_windows() {
    let outcome = example_outcome();
    let json = outcome.factored.plan.to_json();
    assert!(json.contains("\"exposed\":false"), "{json}");
}

#[test]
fn invalid_plan_json_is_rejected() {
    // Structurally broken documents fail decoding, not later execution.
    assert!(QueryPlan::from_json("{").is_err());
    assert!(QueryPlan::from_json(r#"{"function":"MIN","nodes":[],"source":0,"union":0}"#).is_err());
    // A union that skips an exposed window fails plan validation.
    let json = r#"{"function":"Min","nodes":[{"op":"Source","inputs":[]},
        {"op":{"WindowAgg":{"window":{"range":10,"slide":10},"label":"a","exposed":true}},"inputs":[0]},
        {"op":{"WindowAgg":{"window":{"range":20,"slide":20},"label":"b","exposed":true}},"inputs":[0]},
        {"op":"Union","inputs":[1]}],"source":0,"union":3}"#;
    let err = QueryPlan::from_json(json).unwrap_err();
    assert!(err.message.contains("union"), "{err}");
}

#[test]
fn multi_aggregate_plans_round_trip_with_their_term_list() {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let specs = vec![
        AggregateSpec::over_column(AggregateFunction::Min, "T").with_label("Low"),
        AggregateSpec::over_column(AggregateFunction::Max, "T"),
        AggregateSpec::new(AggregateFunction::Count),
    ];
    let query = WindowQuery::with_aggregates(windows, specs).unwrap();
    let outcome = Optimizer::default().optimize(&query).unwrap();
    for bundle in [&outcome.original, &outcome.rewritten, &outcome.factored] {
        let json = bundle.plan.to_json();
        assert!(json.contains("\"aggregates\""), "{json}");
        let back = QueryPlan::from_json(&json).unwrap();
        assert_eq!(bundle.plan, back);
        assert_eq!(back.aggregates().len(), 3);
        assert_eq!(back.aggregates()[0].label(), "Low");
        assert_eq!(back.aggregates()[1].label(), "MAX(T)");
        assert_eq!(back.cost(&CostModel::default()).unwrap(), bundle.cost);
    }
}

#[test]
fn pre_multi_aggregate_documents_still_decode() {
    // Documents written before the aggregate-list refactor carry only a
    // `function` tag; they decode as a single-term list.
    let json = r#"{"function":"Min","nodes":[{"op":"Source","inputs":[]},
        {"op":{"WindowAgg":{"window":{"range":10,"slide":10},"label":"a","exposed":true}},"inputs":[0]},
        {"op":"Union","inputs":[1]}],"source":0,"union":2}"#;
    let plan = QueryPlan::from_json(json).unwrap();
    assert_eq!(plan.function(), AggregateFunction::Min);
    assert_eq!(plan.aggregates().len(), 1);
    assert_eq!(plan.aggregates()[0].label(), "MIN");
}

#[test]
fn labels_survive_the_round_trip() {
    let mut labels = std::collections::BTreeMap::new();
    labels.insert(
        Window::tumbling(20).unwrap(),
        "20 min \"quoted\"".to_string(),
    );
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Min).with_labels(labels);
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let back = QueryPlan::from_json(&outcome.factored.plan.to_json()).unwrap();
    assert!(back.to_trill_string().contains("20 min \"quoted\""));
}
