//! Serialization round-trips: windows, window sets, and whole plans are
//! `serde`-serializable so deployments can persist optimizer decisions
//! (e.g. ship a rewritten plan to a fleet of stream processors).

use fw_core::prelude::*;
use fw_core::QueryPlan;

fn example_outcome() -> fw_core::OptimizationOutcome {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(30).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Min);
    Optimizer::default().optimize(&query).unwrap()
}

#[test]
fn window_round_trips_through_json() {
    let w = Window::hopping(40, 10).unwrap();
    let json = serde_json::to_string(&w).unwrap();
    let back: Window = serde_json::from_str(&json).unwrap();
    assert_eq!(w, back);
}

#[test]
fn window_set_round_trips_through_json() {
    let ws = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::hopping(60, 20).unwrap(),
    ])
    .unwrap();
    let json = serde_json::to_string(&ws).unwrap();
    let back: WindowSet = serde_json::from_str(&json).unwrap();
    assert_eq!(ws, back);
}

#[test]
fn plans_round_trip_through_json() {
    let outcome = example_outcome();
    for bundle in [&outcome.original, &outcome.rewritten, &outcome.factored] {
        let json = serde_json::to_string_pretty(&bundle.plan).unwrap();
        let back: QueryPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(bundle.plan, back);
        assert!(back.validate().is_ok());
        // A deserialized plan is fully functional.
        assert_eq!(back.cost(&CostModel::default()).unwrap(), bundle.cost);
        assert_eq!(back.to_trill_string(), bundle.plan.to_trill_string());
    }
}

#[test]
fn factored_plan_json_marks_hidden_windows() {
    let outcome = example_outcome();
    let json = serde_json::to_string(&outcome.factored.plan).unwrap();
    assert!(json.contains("\"exposed\":false"), "{json}");
}
