//! Randomized tests of the paper's theory: the divisibility
//! characterizations (Theorems 1 and 4) against the interval-level
//! definitions, the partial-order structure (Theorem 2), the covering
//! multiplier (Theorem 3), cost-model identities, and optimizer
//! invariants. Cases are drawn from a deterministic PRNG so every run
//! checks the same (large) sample.

use fw_core::coverage::{
    covering_multiplier, covering_set, definition1_covered, definition5_partitioned, is_covered_by,
    is_partitioned_by, is_strictly_covered_by, is_strictly_partitioned_by,
};
use fw_core::factor::{factor_benefit, minimize_with_factors};
use fw_core::min_cost::minimize;
use fw_core::rational::Rational;
use fw_core::{CostModel, Semantics, Wcg, Window, WindowSet};

/// Minimal deterministic PRNG (SplitMix64) — fw-core has no dependencies,
/// so the test carries its own generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    fn window(&mut self) -> Window {
        let s = self.range(1, 30);
        let k = self.range(1, 6);
        Window::new(s * k, s).expect("valid")
    }

    fn window_set(&mut self, max: usize) -> WindowSet {
        let n = self.range(1, max as u64) as usize;
        WindowSet::new((0..n).map(|_| self.window()).collect()).expect("non-empty")
    }
}

const CHECK_INTERVALS: u64 = 24;
const CASES: u64 = 256;

#[test]
fn theorem1_matches_definition1() {
    // The O(1) divisibility test is exactly the interval-level
    // Definition 1.
    let mut rng = Rng(0x71);
    for _ in 0..CASES {
        let (a, b) = (rng.window(), rng.window());
        assert_eq!(
            is_covered_by(&a, &b),
            definition1_covered(&a, &b, CHECK_INTERVALS),
            "{a} vs {b}"
        );
    }
}

#[test]
fn theorem4_matches_definition5() {
    let mut rng = Rng(0x74);
    for _ in 0..CASES {
        let (a, b) = (rng.window(), rng.window());
        assert_eq!(
            is_partitioned_by(&a, &b),
            definition5_partitioned(&a, &b, CHECK_INTERVALS),
            "{a} vs {b}"
        );
    }
}

#[test]
fn partitioning_implies_coverage() {
    let mut rng = Rng(0x75);
    for _ in 0..CASES {
        let (a, b) = (rng.window(), rng.window());
        if is_partitioned_by(&a, &b) {
            assert!(is_covered_by(&a, &b), "{a} vs {b}");
        }
    }
}

#[test]
fn coverage_is_antisymmetric() {
    // Theorem 2: W1 ≤ W2 and W2 ≤ W1 imply W1 = W2.
    let mut rng = Rng(0x72);
    for _ in 0..CASES {
        let (a, b) = (rng.window(), rng.window());
        if is_covered_by(&a, &b) && is_covered_by(&b, &a) {
            assert_eq!(a, b);
        }
    }
}

#[test]
fn coverage_is_transitive() {
    let mut rng = Rng(0x73);
    for _ in 0..CASES {
        let (a, b, c) = (rng.window(), rng.window(), rng.window());
        if is_covered_by(&a, &b) && is_covered_by(&b, &c) {
            assert!(is_covered_by(&a, &c), "{a} ≤ {b} ≤ {c}");
        }
    }
}

#[test]
fn theorem3_multiplier_counts_covering_set() {
    let mut rng = Rng(0x30);
    for _ in 0..CASES {
        let (a, b) = (rng.window(), rng.window());
        if is_strictly_covered_by(&a, &b) {
            let m = covering_multiplier(&a, &b);
            for i in 0..CHECK_INTERVALS {
                let iv = a.interval(i);
                let cover = covering_set(&b, &iv);
                assert_eq!(cover.len() as u64, m);
                // The covering set assembles exactly the interval.
                assert_eq!(cover.first().expect("non-empty").start, iv.start);
                assert_eq!(cover.last().expect("non-empty").end, iv.end);
                for pair in cover.windows(2) {
                    assert!(pair[1].start <= pair[0].end, "gap in covering set");
                    assert!(pair[1].start > pair[0].start);
                }
            }
        }
    }
}

#[test]
fn partition_covering_sets_are_disjoint() {
    let mut rng = Rng(0x31);
    for _ in 0..CASES {
        let (a, b) = (rng.window(), rng.window());
        if is_strictly_partitioned_by(&a, &b) {
            for i in 0..CHECK_INTERVALS {
                let cover = covering_set(&b, &a.interval(i));
                for pair in cover.windows(2) {
                    assert_eq!(pair[1].start, pair[0].end);
                }
            }
        }
    }
}

#[test]
fn recurrence_count_matches_enumeration() {
    // n = 1 + (R − r)/s counts the instances wholly inside [0, R).
    let mut rng = Rng(0x42);
    for _ in 0..CASES {
        let w = rng.window();
        let mult = u128::from(rng.range(1, 4));
        let period = u128::from(w.range()) * mult;
        let n = w.recurrence_count(period).expect("period >= range");
        let mut enumerated = 0u128;
        let mut m = 0u64;
        loop {
            let iv = w.interval(m);
            if u128::from(iv.end) > period {
                break;
            }
            enumerated += 1;
            m += 1;
        }
        assert_eq!(n, enumerated, "{w} over {period}");
    }
}

#[test]
fn minimize_is_per_window_optimal() {
    // Algorithm 1 equals the brute-force minimum over parent choices.
    let mut rng = Rng(0xA1);
    for _ in 0..128 {
        let windows = rng.window_set(5);
        let model = CostModel::default();
        for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
            let Ok(period) = model.period(windows.iter()) else {
                continue;
            };
            let mc = minimize(Wcg::build_augmented(&windows, semantics), &model, period)
                .expect("minimizes");
            let mut brute = 0u128;
            for wi in windows.iter() {
                let mut best = model.raw_cost(wi, period).expect("cost");
                for wj in windows.iter() {
                    if wi != wj && semantics.relates(wi, wj) {
                        best = best.min(model.shared_cost(wi, wj, period).expect("cost"));
                    }
                }
                brute += best;
            }
            assert_eq!(mc.total_cost(), brute, "{windows} {semantics:?}");
            assert!(mc.is_forest());
        }
    }
}

#[test]
fn factors_never_regress() {
    let mut rng = Rng(0xFA);
    for _ in 0..128 {
        let windows = rng.window_set(6);
        let model = CostModel::default();
        for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
            let Ok(period) = model.period(windows.iter()) else {
                continue;
            };
            let plain = minimize(Wcg::build_augmented(&windows, semantics), &model, period)
                .expect("minimizes");
            let with = minimize_with_factors(&windows, semantics, &model).expect("minimizes");
            assert!(
                with.total_cost() <= plain.total_cost(),
                "{windows} {semantics:?}: {} > {}",
                with.total_cost(),
                plain.total_cost()
            );
        }
    }
}

#[test]
fn benefit_is_realized_by_insertion() {
    // For any valid factor candidate between the virtual root and the
    // raw-fed windows, δ_f equals the exact cost change of the local
    // pattern — and the full Algorithm-1 rerun can only do better.
    let mut rng = Rng(0xBE);
    for _ in 0..CASES {
        let windows = rng.window_set(4);
        let rf_idx = rng.range(0, 7) as usize;
        let model = CostModel::default();
        let semantics = Semantics::CoveredBy;
        let Ok(period) = model.period(windows.iter()) else {
            continue;
        };
        let wcg = Wcg::build_augmented(&windows, semantics);
        let mc = minimize(wcg.clone(), &model, period).expect("minimizes");
        let raw_fed: Vec<Window> = mc
            .active_nodes()
            .filter(|&i| matches!(mc.feed(i), fw_core::Feed::Raw))
            .map(|i| wcg.node(i).window)
            .collect();
        if raw_fed.is_empty() {
            continue;
        }
        // Enumerate a few candidate factors; skip invalid ones.
        let sd = raw_fed
            .iter()
            .map(Window::slide)
            .fold(0, fw_core::cost::gcd);
        let rmin = raw_fed.iter().map(Window::range).min().expect("non-empty");
        let sf = sd;
        let rf = sf * (rf_idx as u64 + 1);
        if rf > rmin || sf == 0 {
            continue;
        }
        let cand = Window::new(rf, sf).expect("rf multiple of sf");
        let valid = wcg.find(&cand).is_none()
            && is_strictly_covered_by(&cand, &Window::unit())
            && raw_fed.iter().all(|wj| is_strictly_covered_by(wj, &cand));
        if !valid {
            continue;
        }
        let delta = factor_benefit(&model, period, &Window::unit(), true, &cand, &raw_fed)
            .expect("benefit computes");
        // Manually expand and re-minimize.
        let mut expanded = wcg.clone();
        let root = expanded.root().expect("augmented");
        let children: Vec<usize> = raw_fed
            .iter()
            .map(|w| expanded.find(w).expect("vertex"))
            .collect();
        expanded
            .insert_factor(cand, root, &children)
            .expect("fresh vertex");
        let mut re = minimize(expanded, &model, period).expect("minimizes");
        re.prune_dead_factors();
        // The local pattern move realizes exactly δ_f; the Algorithm-1
        // rerun (and dead-factor pruning) can only improve on it. Negative
        // candidates are force-inserted here — Algorithm 3 itself filters
        // them — so `realized` may be negative, but never below δ_f.
        let realized = mc.total_cost() as i128 - re.total_cost() as i128;
        assert!(
            realized >= delta,
            "realized {realized} < promised {delta} for {cand} over {windows}"
        );
    }
}

#[test]
fn rational_ordering_matches_f64() {
    let mut rng = Rng(0x4A);
    for _ in 0..CASES {
        let a = rng.range(0, 2000) as i128 - 1000;
        let b = rng.range(1, 1000) as i128;
        let c = rng.range(0, 2000) as i128 - 1000;
        let d = rng.range(1, 1000) as i128;
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        let fx = a as f64 / b as f64;
        let fy = c as f64 / d as f64;
        if (fx - fy).abs() > 1e-9 {
            assert_eq!(x < y, fx < fy, "{a}/{b} vs {c}/{d}");
        }
        // Field laws on small values.
        assert_eq!(x + y, y + x);
        assert_eq!((x - y) + y, x);
        assert_eq!(x * y, y * x);
    }
}
