//! Property-based tests of the paper's theory: the divisibility
//! characterizations (Theorems 1 and 4) against the interval-level
//! definitions, the partial-order structure (Theorem 2), the covering
//! multiplier (Theorem 3), cost-model identities, and optimizer
//! invariants.

use fw_core::coverage::{
    covering_multiplier, covering_set, definition1_covered, definition5_partitioned,
    is_covered_by, is_partitioned_by, is_strictly_covered_by, is_strictly_partitioned_by,
};
use fw_core::factor::{factor_benefit, minimize_with_factors};
use fw_core::min_cost::minimize;
use fw_core::rational::Rational;
use fw_core::{CostModel, Semantics, Wcg, Window, WindowSet};
use proptest::prelude::*;

fn arb_window() -> impl Strategy<Value = Window> {
    (1u64..=30, 1u64..=6).prop_map(|(s, k)| Window::new(s * k, s).expect("valid"))
}

fn arb_window_set(max: usize) -> impl Strategy<Value = WindowSet> {
    proptest::collection::vec(arb_window(), 1..=max)
        .prop_map(|ws| WindowSet::new(ws).expect("non-empty"))
}

const CHECK_INTERVALS: u64 = 24;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn theorem1_matches_definition1(a in arb_window(), b in arb_window()) {
        // The O(1) divisibility test is exactly the interval-level
        // Definition 1.
        prop_assert_eq!(is_covered_by(&a, &b), definition1_covered(&a, &b, CHECK_INTERVALS));
    }

    #[test]
    fn theorem4_matches_definition5(a in arb_window(), b in arb_window()) {
        prop_assert_eq!(
            is_partitioned_by(&a, &b),
            definition5_partitioned(&a, &b, CHECK_INTERVALS)
        );
    }

    #[test]
    fn partitioning_implies_coverage(a in arb_window(), b in arb_window()) {
        if is_partitioned_by(&a, &b) {
            prop_assert!(is_covered_by(&a, &b));
        }
    }

    #[test]
    fn coverage_is_antisymmetric(a in arb_window(), b in arb_window()) {
        // Theorem 2: W1 ≤ W2 and W2 ≤ W1 imply W1 = W2.
        if is_covered_by(&a, &b) && is_covered_by(&b, &a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn coverage_is_transitive(a in arb_window(), b in arb_window(), c in arb_window()) {
        if is_covered_by(&a, &b) && is_covered_by(&b, &c) {
            prop_assert!(is_covered_by(&a, &c), "{a} ≤ {b} ≤ {c}");
        }
    }

    #[test]
    fn theorem3_multiplier_counts_covering_set(a in arb_window(), b in arb_window()) {
        if is_strictly_covered_by(&a, &b) {
            let m = covering_multiplier(&a, &b);
            for i in 0..CHECK_INTERVALS {
                let iv = a.interval(i);
                let cover = covering_set(&b, &iv);
                prop_assert_eq!(cover.len() as u64, m);
                // The covering set assembles exactly the interval.
                prop_assert_eq!(cover.first().expect("non-empty").start, iv.start);
                prop_assert_eq!(cover.last().expect("non-empty").end, iv.end);
                for pair in cover.windows(2) {
                    prop_assert!(pair[1].start <= pair[0].end, "gap in covering set");
                    prop_assert!(pair[1].start > pair[0].start);
                }
            }
        }
    }

    #[test]
    fn partition_covering_sets_are_disjoint(a in arb_window(), b in arb_window()) {
        if is_strictly_partitioned_by(&a, &b) {
            for i in 0..CHECK_INTERVALS {
                let cover = covering_set(&b, &a.interval(i));
                for pair in cover.windows(2) {
                    prop_assert_eq!(pair[1].start, pair[0].end);
                }
            }
        }
    }

    #[test]
    fn recurrence_count_matches_enumeration(w in arb_window(), mult in 1u128..5) {
        // n = 1 + (R − r)/s counts the instances wholly inside [0, R).
        let period = u128::from(w.range()) * mult;
        let n = w.recurrence_count(period).expect("period >= range");
        let mut enumerated = 0u128;
        let mut m = 0u64;
        loop {
            let iv = w.interval(m);
            if u128::from(iv.end) > period {
                break;
            }
            enumerated += 1;
            m += 1;
        }
        prop_assert_eq!(n, enumerated);
    }

    #[test]
    fn minimize_is_per_window_optimal(windows in arb_window_set(5)) {
        // Algorithm 1 equals the brute-force minimum over parent choices.
        let model = CostModel::default();
        for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
            let Ok(period) = model.period(windows.iter()) else { return Ok(()); };
            let mc = minimize(Wcg::build_augmented(&windows, semantics), &model, period)
                .expect("minimizes");
            let mut brute = 0u128;
            for wi in windows.iter() {
                let mut best = model.raw_cost(wi, period).expect("cost");
                for wj in windows.iter() {
                    if wi != wj && semantics.relates(wi, wj) {
                        best = best.min(model.shared_cost(wi, wj, period).expect("cost"));
                    }
                }
                brute += best;
            }
            prop_assert_eq!(mc.total_cost(), brute);
            prop_assert!(mc.is_forest());
        }
    }

    #[test]
    fn factors_never_regress(windows in arb_window_set(6)) {
        let model = CostModel::default();
        for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
            let Ok(period) = model.period(windows.iter()) else { return Ok(()); };
            let plain = minimize(Wcg::build_augmented(&windows, semantics), &model, period)
                .expect("minimizes");
            let with = minimize_with_factors(&windows, semantics, &model).expect("minimizes");
            prop_assert!(
                with.total_cost() <= plain.total_cost(),
                "{windows} {semantics:?}: {} > {}",
                with.total_cost(),
                plain.total_cost()
            );
        }
    }

    #[test]
    fn benefit_is_realized_by_insertion(
        windows in arb_window_set(4),
        rf_idx in 0usize..8,
    ) {
        // For any valid factor candidate between the virtual root and the
        // raw-fed windows, δ_f equals the exact cost change of the local
        // pattern — and the full Algorithm-1 rerun can only do better.
        let model = CostModel::default();
        let semantics = Semantics::CoveredBy;
        let Ok(period) = model.period(windows.iter()) else { return Ok(()); };
        let wcg = Wcg::build_augmented(&windows, semantics);
        let mc = minimize(wcg.clone(), &model, period).expect("minimizes");
        let raw_fed: Vec<Window> = mc
            .active_nodes()
            .filter(|&i| matches!(mc.feed(i), fw_core::Feed::Raw))
            .map(|i| wcg.node(i).window)
            .collect();
        if raw_fed.is_empty() {
            return Ok(());
        }
        // Enumerate a few candidate factors; skip invalid ones.
        let sd = raw_fed.iter().map(Window::slide).fold(0, fw_core::cost::gcd);
        let rmin = raw_fed.iter().map(Window::range).min().expect("non-empty");
        let sf = sd;
        let rf = sf * (rf_idx as u64 + 1);
        if rf > rmin || sf == 0 {
            return Ok(());
        }
        let cand = Window::new(rf, sf).expect("rf multiple of sf");
        let valid = wcg.find(&cand).is_none()
            && is_strictly_covered_by(&cand, &Window::unit())
            && raw_fed.iter().all(|wj| is_strictly_covered_by(wj, &cand));
        if !valid {
            return Ok(());
        }
        let delta =
            factor_benefit(&model, period, &Window::unit(), true, &cand, &raw_fed)
                .expect("benefit computes");
        // Manually expand and re-minimize.
        let mut expanded = wcg.clone();
        let root = expanded.root().expect("augmented");
        let children: Vec<usize> =
            raw_fed.iter().map(|w| expanded.find(w).expect("vertex")).collect();
        expanded.insert_factor(cand, root, &children).expect("fresh vertex");
        let mut re = minimize(expanded, &model, period).expect("minimizes");
        re.prune_dead_factors();
        // The local pattern move realizes exactly δ_f; the Algorithm-1
        // rerun (and dead-factor pruning) can only improve on it. Negative
        // candidates are force-inserted here — Algorithm 3 itself filters
        // them — so `realized` may be negative, but never below δ_f.
        let realized = mc.total_cost() as i128 - re.total_cost() as i128;
        prop_assert!(
            realized >= delta,
            "realized {realized} < promised {delta} for {cand} over {windows}"
        );
    }

    #[test]
    fn rational_ordering_matches_f64(a in -1000i128..1000, b in 1i128..1000,
                                     c in -1000i128..1000, d in 1i128..1000) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        let fx = a as f64 / b as f64;
        let fy = c as f64 / d as f64;
        if (fx - fy).abs() > 1e-9 {
            prop_assert_eq!(x < y, fx < fy);
        }
        // Field laws on small values.
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x - y) + y, x);
        prop_assert_eq!(x * y, y * x);
    }
}
