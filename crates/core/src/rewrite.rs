//! Query rewriting (Section III-C and Appendix B): translating a min-cost
//! WCG forest into an executable plan DAG, plus the original (unshared)
//! plan every query starts from.

use crate::min_cost::{Feed, MinCostWcg};
use crate::optimizer::WindowQuery;
use crate::plan::{NodeId, PlanBuilder, QueryPlan};
use crate::wcg::NodeKind;

/// The original plan of Figure 2(a): multicast the input to one aggregate
/// per window and union the results. The multicast is elided when the
/// query has a single window (Appendix B).
#[must_use]
pub fn original_plan(query: &WindowQuery) -> QueryPlan {
    let mut b = PlanBuilder::with_aggregates(query.aggregates().to_vec());
    let src = b.source();
    let fan_out = if query.windows().len() > 1 {
        b.multicast(src)
    } else {
        src
    };
    let mut union_inputs = Vec::with_capacity(query.windows().len());
    for w in query.windows().iter() {
        let id = b.window_agg(fan_out, *w, query.label_of(w), true);
        union_inputs.push(id);
    }
    b.finish(union_inputs)
}

/// Rewrites the min-cost WCG into a plan per Appendix B:
///
/// * forest roots read from the source (through a shared multicast when
///   there are several);
/// * a window with children feeds them through a multicast, which also
///   links to the union when the window is exposed;
/// * factor windows never link to the union, and a factor window with a
///   single child skips the multicast (pure pass-through).
#[must_use]
pub fn rewrite(min_cost: &MinCostWcg, query: &WindowQuery) -> QueryPlan {
    let wcg = min_cost.wcg();
    let mut b = PlanBuilder::with_aggregates(query.aggregates().to_vec());
    let src = b.source();

    let active: Vec<usize> = min_cost.active_nodes().collect();
    let roots: Vec<usize> = active
        .iter()
        .copied()
        .filter(|&i| is_root_feed(min_cost, i))
        .collect();
    let fan_out = if roots.len() > 1 {
        b.multicast(src)
    } else {
        src
    };

    // Emit windows in topological order (parents before children); the
    // forest guarantees termination.
    let mut agg_node: vec_map::VecMap<NodeId> = vec_map::VecMap::new(wcg.len());
    let mut mcast_node: vec_map::VecMap<NodeId> = vec_map::VecMap::new(wcg.len());
    let mut union_inputs = Vec::new();
    let mut stack: Vec<usize> = roots.clone();
    // Roots are processed FIFO to keep plan node order aligned with the
    // min-cost WCG's vertex order (stable output for tests and rendering).
    stack.reverse();
    while let Some(i) = stack.pop() {
        let node = wcg.node(i);
        let exposed = node.kind == NodeKind::User;
        let input: NodeId = match min_cost.feed(i) {
            Feed::From(p) if !wcg.is_virtual(p) => mcast_node
                .get(p)
                .or_else(|| agg_node.get(p))
                .expect("parent emitted first"),
            _ => fan_out,
        };
        let id = b.window_agg(input, node.window, query.label_of(&node.window), exposed);
        agg_node.set(i, id);

        let children: Vec<usize> = min_cost
            .children(i)
            .iter()
            .copied()
            .filter(|&c| min_cost.is_active(c))
            .collect();
        let consumers = children.len() + usize::from(exposed);
        if consumers > 1 {
            let m = b.multicast(id);
            mcast_node.set(i, m);
            if exposed {
                union_inputs.push(m);
            }
        } else if exposed {
            union_inputs.push(id);
        }
        for c in children.into_iter().rev() {
            stack.push(c);
        }
    }
    b.finish(union_inputs)
}

fn is_root_feed(min_cost: &MinCostWcg, i: usize) -> bool {
    match min_cost.feed(i) {
        Feed::Raw => true,
        Feed::From(p) => min_cost.wcg().is_virtual(p),
    }
}

/// A tiny `usize → T` map over a dense index space; avoids hashing in the
/// rewrite hot path and keeps `Option` handling explicit.
mod vec_map {
    #[derive(Debug)]
    pub struct VecMap<T> {
        slots: Vec<Option<T>>,
    }

    impl<T: Copy> VecMap<T> {
        pub fn new(capacity: usize) -> Self {
            VecMap {
                slots: vec![None; capacity],
            }
        }

        pub fn set(&mut self, key: usize, value: T) {
            self.slots[key] = Some(value);
        }

        pub fn get(&self, key: usize) -> Option<T> {
            self.slots[key]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::coverage::Semantics;
    use crate::factor::minimize_with_factors;
    use crate::min_cost::minimize;
    use crate::taxonomy::AggregateFunction;
    use crate::wcg::Wcg;
    use crate::window::{Window, WindowSet};

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn query(ws: &[Window]) -> WindowQuery {
        WindowQuery::new(WindowSet::new(ws.to_vec()).unwrap(), AggregateFunction::Min)
    }

    #[test]
    fn original_plan_matches_figure2a() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)]);
        let p = original_plan(&q);
        assert!(p.validate().is_ok());
        assert_eq!(p.window_nodes().count(), 3);
        assert_eq!(p.factor_window_count(), 0);
        for id in p.window_nodes() {
            assert_eq!(p.feeding_window(id), None);
        }
        let s = p.to_trill_string();
        assert!(
            s.starts_with("Input.Multicast(s0 => s0.Tumbling(20)"),
            "{s}"
        );
        assert!(s.contains(".Union(s0.Tumbling(30)"), "{s}");
        assert!(s.contains(".Union(s0.Tumbling(40)"), "{s}");
    }

    #[test]
    fn original_plan_single_window_elides_multicast() {
        let q = query(&[w(20, 20)]);
        let p = original_plan(&q);
        assert!(p.validate().is_ok());
        let s = p.to_trill_string();
        assert!(s.starts_with("Input.Tumbling(20)"), "{s}");
    }

    #[test]
    fn rewrite_matches_figure2b() {
        // Windows {20,30,40}: min-cost forest is 20→40 and 30 raw.
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)]);
        let model = CostModel::default();
        let period = model.period(q.windows().iter()).unwrap();
        let mc = minimize(
            Wcg::build_augmented(q.windows(), Semantics::PartitionedBy),
            &model,
            period,
        )
        .unwrap();
        let p = rewrite(&mc, &q);
        assert!(p.validate().is_ok(), "{:?}", p.validate());
        assert_eq!(p.cost(&model).unwrap(), mc.total_cost());
        let s = p.to_trill_string();
        assert!(
            s.starts_with("Input.Multicast(s0 => s0.Tumbling(20)"),
            "{s}"
        );
        assert!(
            s.contains(".Multicast(s1 => s1.Union(s1.Tumbling(40)"),
            "{s}"
        );
        assert!(s.contains(".Union(s0.Tumbling(30)"), "{s}");
    }

    #[test]
    fn rewrite_matches_figure2c_with_factor() {
        // With factors, the single root is the hidden W(10,10).
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)]);
        let model = CostModel::default();
        let mc = minimize_with_factors(q.windows(), Semantics::PartitionedBy, &model).unwrap();
        let p = rewrite(&mc, &q);
        assert!(p.validate().is_ok(), "{:?}", p.validate());
        assert_eq!(p.cost(&model).unwrap(), 150);
        assert_eq!(p.factor_window_count(), 1);
        let s = p.to_trill_string();
        assert!(s.starts_with("Input.Tumbling(10).GroupAggregate"), "{s}");
        // The factor multicast body must not union its own stream.
        assert!(s.contains(".Multicast(s1 => s1.Tumbling(20)"), "{s}");
        assert!(s.contains(".Union(s1.Tumbling(30)"), "{s}");
        assert!(
            s.contains(".Multicast(s2 => s2.Union(s2.Tumbling(40)"),
            "{s}"
        );
    }

    #[test]
    fn rewrite_cost_always_equals_min_cost_total() {
        let sets = vec![
            vec![w(10, 10), w(20, 20), w(30, 30), w(40, 40)],
            vec![w(15, 15), w(17, 17), w(19, 19)],
            vec![w(40, 20), w(60, 20), w(80, 20)],
            vec![w(10, 5), w(20, 10), w(40, 20)],
        ];
        let model = CostModel::default();
        for windows in sets {
            let q = query(&windows);
            for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
                let mc = minimize_with_factors(q.windows(), semantics, &model).unwrap();
                let p = rewrite(&mc, &q);
                assert!(p.validate().is_ok(), "{windows:?}: {:?}", p.validate());
                assert_eq!(
                    p.cost(&model).unwrap(),
                    mc.total_cost(),
                    "{windows:?} {semantics:?}"
                );
            }
        }
    }
}
