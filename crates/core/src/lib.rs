//! # fw-core — Factor Windows: cost-based rewriting of correlated window aggregates
//!
//! This crate implements the optimizer of *"Factor Windows: Cost-based
//! Query Rewriting for Optimizing Correlated Window Aggregates"* (ICDE
//! 2022): the window coverage model (Theorems 1–6), the window coverage
//! graph (WCG), the cost model and Algorithm 1 (min-cost WCG), factor
//! windows (Algorithms 2–5), and the Appendix-B query rewriting that turns
//! a min-cost WCG into an executable plan DAG.
//!
//! ## Quick tour
//!
//! ```
//! use fw_core::prelude::*;
//!
//! // The query of the paper's Example 7: SUM over tumbling windows of
//! // 20, 30, and 40 time units.
//! let windows = WindowSet::new(vec![
//!     Window::tumbling(20)?,
//!     Window::tumbling(30)?,
//!     Window::tumbling(40)?,
//! ])?;
//! let query = WindowQuery::new(windows, AggregateFunction::Sum);
//! let outcome = Optimizer::default().optimize(&query)?;
//!
//! assert_eq!(outcome.original.cost, 360);  // unshared plan
//! assert_eq!(outcome.rewritten.cost, 246); // Algorithm 1
//! assert_eq!(outcome.factored.cost, 150);  // Algorithm 3: W(10,10) inserted
//! println!("{}", outcome.factored.plan.to_trill_string());
//! # Ok::<(), fw_core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod cost;
pub mod coverage;
pub mod error;
pub mod factor;
pub mod group;
pub mod json;
pub mod min_cost;
pub mod optimizer;
pub mod plan;
pub mod rational;
pub mod rewrite;
pub mod taxonomy;
pub mod wcg;
pub mod window;

pub use adaptive::{AdaptivePlanner, RateEstimator, ReplanRecord};
pub use cost::{Cost, CostModel};
pub use coverage::Semantics;
pub use error::{Error, Result};
pub use group::{
    GroupMember, GroupOptimizer, GroupPlan, GroupStrategy, MemberPlan, QueryId, Route, SharedPlan,
    SharingPolicy,
};
pub use json::{FromJson, ToJson};
pub use min_cost::{Feed, MinCostWcg};
pub use optimizer::{OptimizationOutcome, Optimizer, PlanBundle, PlanChoice, WindowQuery};
pub use plan::{NodeFlow, NodeId, PlanNode, PlanOp, QueryPlan};
pub use taxonomy::{
    check_joint_semantics, joint_semantics, AggregateClass, AggregateFunction, AggregateSpec,
};
pub use wcg::{NodeKind, Wcg};
pub use window::{Interval, Window, WindowSet};

/// One-stop imports for typical users of the crate.
pub mod prelude {
    pub use crate::cost::CostModel;
    pub use crate::coverage::Semantics;
    pub use crate::optimizer::{OptimizationOutcome, Optimizer, PlanChoice, WindowQuery};
    pub use crate::plan::QueryPlan;
    pub use crate::taxonomy::{AggregateFunction, AggregateSpec};
    pub use crate::window::{Interval, Window, WindowSet};
}
