//! Cross-query optimization: merging the windows of several concurrently
//! registered queries into one window coverage graph and one shared plan.
//!
//! The paper defines the Wcg over the windows of a single query, but
//! nothing in the formalism restricts it to one SELECT: windows from
//! different standing queries over the same stream are just as correlated,
//! and the cost-based rewrite applies verbatim to their union. This module
//! implements that generalization — the optimizer half of the query-group
//! subsystem:
//!
//! * [`GroupOptimizer::plan`] merges every member's window set into one
//!   deduplicated [`WindowSet`], merges the members' aggregate terms into
//!   one deduplicated slot list (two queries asking for `MIN(T)` share one
//!   accumulator slot), derives the joint coverage semantics, and runs the
//!   ordinary [`Optimizer`] over the merged query — so Algorithms 1–5 and
//!   the factor-window search apply unchanged across queries.
//! * The merged plan's cost ([`crate::plan::QueryPlan::cost`]) attributes
//!   pane flow **once** and charges every deduplicated slot beyond the
//!   first via [`crate::cost::CostModel::extra_agg_percent`] — the
//!   per-query surcharge on top of shared maintenance.
//! * Sharing is not assumed to pay: the optimizer also prices every member
//!   standalone and [`SharingPolicy::Auto`] falls back to per-query plans
//!   ([`GroupStrategy::PerQuery`]) when the merged plan costs more than the
//!   sum of the independent ones (e.g. disjoint window sets whose union has
//!   a huge period, or slot surcharges outweighing the shared pane flow).
//! * [`Route`]s record, for every `(exposed window, merged slot)` pair,
//!   which member queries consume the value and under which query-local
//!   SELECT index — the data the engine's routing layer
//!   (`fw_engine::group`) uses to hand each result back to its query.

use crate::cost::{Cost, CostModel};
use crate::coverage::Semantics;
use crate::error::{Error, Result};
use crate::optimizer::{Optimizer, PlanBundle, PlanChoice, WindowQuery};
use crate::taxonomy::AggregateSpec;
use crate::window::{Window, WindowSet};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one registered query within a group. Ids are assigned by
/// the registry (the `QueryGroup` façade), are unique for the lifetime of
/// a group, and are never reused after deregistration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One registered query of a group: its id, its query, and the watermark
/// it was registered at (`0` for founding members). A member registered at
/// watermark `w` receives results only for window instances that *start*
/// at or after `w` — earlier instances would be computed over a stream
/// prefix the member never subscribed to.
#[derive(Debug, Clone)]
pub struct GroupMember {
    /// The member's id.
    pub id: QueryId,
    /// The member's query.
    pub query: WindowQuery,
    /// Registration watermark: results for instances starting earlier are
    /// suppressed for this member.
    pub since: u64,
}

/// Whether a group shares execution across its queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingPolicy {
    /// Cost-based: share when the merged plan is no more expensive than
    /// the sum of the per-query plans; fall back otherwise.
    #[default]
    Auto,
    /// Always execute the merged shared plan.
    Shared,
    /// Always execute one plan per query (the unshared baseline the
    /// `multi_query` benchmark compares against).
    Unshared,
}

/// The execution strategy a [`GroupPlan`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupStrategy {
    /// One merged plan over the union of all members' windows; results are
    /// routed back per query.
    Shared,
    /// One independent plan per member (sharing did not pay, or was
    /// disabled by policy).
    PerQuery,
}

impl GroupStrategy {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GroupStrategy::Shared => "shared",
            GroupStrategy::PerQuery => "per-query",
        }
    }
}

/// One routing entry of a shared plan: the value of `(window, slot)` is
/// consumed by member `query` as its SELECT-list term `agg`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The exposed window producing the value.
    pub window: Window,
    /// Index into the merged plan's aggregate list.
    pub slot: u32,
    /// The consuming member.
    pub query: QueryId,
    /// The member's query-local SELECT-list index for this value.
    pub agg: u32,
    /// The member's registration watermark (results for instances starting
    /// earlier are suppressed).
    pub since: u64,
}

/// The shared half of a [`GroupPlan`]: the merged query, its chosen plan
/// bundle, and the routing table.
#[derive(Debug, Clone)]
pub struct SharedPlan {
    /// The merged query (union window set, deduplicated slot list).
    pub merged: WindowQuery,
    /// The selected plan over the merged query, with its modeled cost.
    pub bundle: PlanBundle,
    /// The concrete plan choice the policy resolved to.
    pub choice: PlanChoice,
    /// The coverage semantics the merged optimization used (`None` when
    /// every slot is holistic and the original plan is all there is).
    pub semantics: Option<Semantics>,
    /// Routing entries for every `(window, slot, member)` combination.
    pub routes: Vec<Route>,
}

/// One member's standalone plan (used by the per-query strategy and for
/// the shared-vs-unshared cost comparison).
#[derive(Debug, Clone)]
pub struct MemberPlan {
    /// The member's id.
    pub id: QueryId,
    /// The member's registration watermark.
    pub since: u64,
    /// The member's selected standalone plan.
    pub bundle: PlanBundle,
    /// The concrete plan choice the policy resolved to.
    pub choice: PlanChoice,
}

/// The group optimizer's output: the resolved strategy, the merged shared
/// plan (when it could be built), every member's standalone plan, and the
/// costs the strategy decision compared.
#[derive(Debug, Clone)]
pub struct GroupPlan {
    /// The strategy the policy resolved to.
    pub strategy: GroupStrategy,
    /// The merged shared plan. `None` when the policy was pinned to
    /// unshared execution (the merged plan would be discarded) or when
    /// merging itself failed (e.g. the union period overflowed) and the
    /// policy allowed falling back to per-query execution.
    pub shared: Option<SharedPlan>,
    /// Every member's standalone plan, in registration order.
    pub members: Vec<MemberPlan>,
    /// Sum of the standalone plan costs (the unshared baseline).
    pub unshared_cost: Cost,
}

impl GroupPlan {
    /// The shared plan's modeled cost, when a shared plan exists.
    #[must_use]
    pub fn shared_cost(&self) -> Option<Cost> {
        self.shared.as_ref().map(|s| s.bundle.cost)
    }

    /// Predicted speedup of the resolved strategy over unshared execution
    /// (`1.0` for the per-query strategy).
    #[must_use]
    pub fn predicted_sharing_gain(&self) -> f64 {
        match (self.strategy, self.shared_cost()) {
            (GroupStrategy::Shared, Some(shared)) if shared > 0 => {
                self.unshared_cost as f64 / shared as f64
            }
            _ => 1.0,
        }
    }
}

/// The cross-query optimizer: prices a group of standing queries shared
/// and unshared, and resolves the execution strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupOptimizer {
    model: CostModel,
}

impl GroupOptimizer {
    /// Creates a group optimizer over the given cost model.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        GroupOptimizer { model }
    }

    /// The cost model in use.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Builds the merged query for a member list: the union of every
    /// member's windows (duplicates collapse) and the deduplicated slot
    /// list (slots are identified by `(function, column)`; labels are
    /// canonicalized to `FUNC(column)`). Window display labels are merged
    /// first-member-wins. Errors on an empty member list.
    pub fn merged_query(members: &[GroupMember]) -> Result<WindowQuery> {
        if members.is_empty() {
            return Err(Error::EmptyGroup);
        }
        let mut windows: Vec<Window> = Vec::new();
        let mut labels: BTreeMap<Window, String> = BTreeMap::new();
        let mut slots: Vec<AggregateSpec> = Vec::new();
        for member in members {
            for w in member.query.windows().iter() {
                windows.push(*w);
                labels.entry(*w).or_insert_with(|| member.query.label_of(w));
            }
            for spec in member.query.aggregates() {
                if slot_of(&slots, spec).is_none() {
                    slots.push(AggregateSpec::over_column(spec.function(), spec.column()));
                }
            }
        }
        let windows = WindowSet::new(windows)?;
        Ok(WindowQuery::with_aggregates(windows, slots)?.with_labels(labels))
    }

    /// Optimizes a group: merges the members' queries, prices the shared
    /// plan and every standalone plan under `choice`, and resolves the
    /// execution strategy per `policy`. Explicit `semantics` (if any) are
    /// validated against every member, exactly as for a single query.
    pub fn plan(
        &self,
        members: &[GroupMember],
        choice: PlanChoice,
        policy: SharingPolicy,
        semantics: Option<Semantics>,
    ) -> Result<GroupPlan> {
        if members.is_empty() {
            return Err(Error::EmptyGroup);
        }
        debug_assert!(
            members
                .iter()
                .enumerate()
                .all(|(i, m)| members[..i].iter().all(|p| p.id != m.id)),
            "duplicate query ids in a group"
        );
        let optimizer = Optimizer::new(self.model);
        let optimize = |query: &WindowQuery| match semantics {
            Some(semantics) => optimizer.optimize_with(query, semantics),
            None => optimizer.optimize(query),
        };

        // Standalone plans: the per-query strategy and the baseline the
        // sharing decision compares against.
        let mut member_plans = Vec::with_capacity(members.len());
        let mut unshared_cost: Cost = 0;
        for member in members {
            let outcome = optimize(&member.query)?;
            let bundle = outcome.select(choice).clone();
            let resolved = outcome.resolve(choice);
            unshared_cost = unshared_cost
                .checked_add(bundle.cost)
                .ok_or(Error::CostOverflow)?;
            member_plans.push(MemberPlan {
                id: member.id,
                since: member.since,
                bundle,
                choice: resolved,
            });
        }

        // The merged plan — not built under a pinned Unshared policy
        // (it would be discarded, and pinned-unshared groups replan on
        // every register/deregister). Merging can fail where the
        // standalone plans do not (the union period can overflow); under
        // Auto that is a fallback, under Shared it is the caller's error.
        let shared = if policy == SharingPolicy::Unshared {
            None
        } else {
            match Self::merged_query(members) {
                Ok(merged) => match optimize(&merged) {
                    Ok(outcome) => {
                        let bundle = outcome.select(choice).clone();
                        let resolved = outcome.resolve(choice);
                        let routes = build_routes(members, &merged)?;
                        Some(SharedPlan {
                            merged,
                            bundle,
                            choice: resolved,
                            semantics: outcome.semantics,
                            routes,
                        })
                    }
                    Err(e) if policy == SharingPolicy::Shared => return Err(e),
                    Err(_) => None,
                },
                Err(e) if policy == SharingPolicy::Shared => return Err(e),
                Err(_) => None,
            }
        };

        let strategy = match (policy, &shared) {
            (SharingPolicy::Shared, Some(_)) => GroupStrategy::Shared,
            (SharingPolicy::Shared, None) => unreachable!("errors propagated above"),
            (SharingPolicy::Unshared, _) => GroupStrategy::PerQuery,
            (SharingPolicy::Auto, Some(s)) if s.bundle.cost <= unshared_cost => {
                GroupStrategy::Shared
            }
            (SharingPolicy::Auto, _) => GroupStrategy::PerQuery,
        };
        Ok(GroupPlan {
            strategy,
            shared,
            members: member_plans,
            unshared_cost,
        })
    }
}

/// Index of the slot matching `spec` by `(function, column)` identity.
fn slot_of(slots: &[AggregateSpec], spec: &AggregateSpec) -> Option<usize> {
    slots
        .iter()
        .position(|s| s.function() == spec.function() && s.column() == spec.column())
}

/// Builds the routing table: one entry per (member, member window, member
/// term), resolved to the merged plan's slot indices.
fn build_routes(members: &[GroupMember], merged: &WindowQuery) -> Result<Vec<Route>> {
    let slots = merged.aggregates();
    let mut routes = Vec::new();
    for member in members {
        for window in member.query.windows().iter() {
            for (agg, spec) in member.query.aggregates().iter().enumerate() {
                let slot = slot_of(slots, spec).expect("merged slot list covers every member");
                routes.push(Route {
                    window: *window,
                    slot: slot as u32,
                    query: member.id,
                    agg: agg as u32,
                    since: member.since,
                });
            }
        }
    }
    Ok(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::AggregateFunction;

    fn w(r: u64) -> Window {
        Window::tumbling(r).unwrap()
    }

    fn member(id: u32, ranges: &[u64], funcs: &[AggregateFunction]) -> GroupMember {
        let windows = WindowSet::new(ranges.iter().map(|&r| w(r)).collect()).unwrap();
        let specs = funcs.iter().map(|&f| AggregateSpec::new(f)).collect();
        GroupMember {
            id: QueryId(id),
            query: WindowQuery::with_aggregates(windows, specs).unwrap(),
            since: 0,
        }
    }

    #[test]
    fn merged_query_unions_windows_and_dedups_slots() {
        let members = [
            member(0, &[20, 30, 40], &[AggregateFunction::Min]),
            member(1, &[20, 40, 80], &[AggregateFunction::Min]),
            member(2, &[30, 60], &[AggregateFunction::Sum]),
        ];
        let merged = GroupOptimizer::merged_query(&members).unwrap();
        let ranges: Vec<u64> = merged.windows().iter().map(Window::range).collect();
        assert_eq!(ranges, vec![20, 30, 40, 60, 80]);
        // MIN appears in two members but yields one slot.
        assert_eq!(merged.aggregates().len(), 2);
        assert_eq!(merged.aggregates()[0].label(), "MIN(V)");
        assert_eq!(merged.aggregates()[1].label(), "SUM(V)");
        // MIN alone would allow covered-by; SUM forces partitioned-by.
        assert_eq!(merged.default_semantics(), Some(Semantics::PartitionedBy));
    }

    #[test]
    fn empty_group_is_an_error() {
        assert!(matches!(
            GroupOptimizer::merged_query(&[]),
            Err(Error::EmptyGroup)
        ));
        assert!(matches!(
            GroupOptimizer::default().plan(&[], PlanChoice::Auto, SharingPolicy::Auto, None),
            Err(Error::EmptyGroup)
        ));
    }

    #[test]
    fn correlated_queries_share_and_cost_less_than_unshared() {
        let members = [
            member(0, &[20, 30, 40], &[AggregateFunction::Sum]),
            member(1, &[20, 40, 60], &[AggregateFunction::Count]),
            member(2, &[30, 60, 120], &[AggregateFunction::Min]),
            member(3, &[20, 40, 120], &[AggregateFunction::Max]),
        ];
        let plan = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Auto, None)
            .unwrap();
        assert_eq!(plan.strategy, GroupStrategy::Shared);
        let shared = plan.shared.as_ref().unwrap();
        assert!(shared.bundle.cost < plan.unshared_cost);
        // Measured acceptance target (< 2x a single query while unshared
        // pays ~4x) holds already in the model: 4 correlated queries cost
        // less than 2x the most expensive standalone member.
        let max_single = plan.members.iter().map(|m| m.bundle.cost).max().unwrap();
        assert!(
            shared.bundle.cost < 2 * max_single,
            "{} vs 2x{max_single}",
            shared.bundle.cost
        );
        assert!(plan.predicted_sharing_gain() > 1.0);
        // Routing covers every (member, window, term) triple.
        assert_eq!(shared.routes.len(), 4 * 3);
        for route in &shared.routes {
            let member = &members[route.query.0 as usize];
            assert!(member.query.windows().contains(&route.window));
            let slot = &shared.merged.aggregates()[route.slot as usize];
            let spec = &member.query.aggregates()[route.agg as usize];
            assert_eq!(slot.function(), spec.function());
        }
    }

    #[test]
    fn shared_slots_are_deduplicated_in_routing() {
        let members = [
            member(0, &[20, 40], &[AggregateFunction::Min]),
            member(1, &[20, 60], &[AggregateFunction::Min]),
        ];
        let plan = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Shared, None)
            .unwrap();
        let shared = plan.shared.unwrap();
        assert_eq!(shared.merged.aggregates().len(), 1);
        // The shared window 20 routes slot 0 to both members.
        let consumers: Vec<QueryId> = shared
            .routes
            .iter()
            .filter(|r| r.window == w(20) && r.slot == 0)
            .map(|r| r.query)
            .collect();
        assert_eq!(consumers, vec![QueryId(0), QueryId(1)]);
    }

    #[test]
    fn uncorrelated_queries_fall_back_to_per_query_plans() {
        // Mutually prime ranges: no coverage edges, so the merged plan
        // only adds slot surcharges on top of the same raw pane flows.
        let members = [
            member(0, &[15], &[AggregateFunction::Sum]),
            member(1, &[17], &[AggregateFunction::Count]),
            member(2, &[19], &[AggregateFunction::Min]),
        ];
        let plan = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Auto, None)
            .unwrap();
        assert_eq!(plan.strategy, GroupStrategy::PerQuery);
        let shared = plan.shared.as_ref().unwrap();
        assert!(shared.bundle.cost > plan.unshared_cost);
        assert_eq!(plan.members.len(), 3);
        assert!((plan.predicted_sharing_gain() - 1.0).abs() < 1e-12);
        // Policy pins override the cost comparison.
        let pinned = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Shared, None)
            .unwrap();
        assert_eq!(pinned.strategy, GroupStrategy::Shared);
    }

    #[test]
    fn one_query_group_degenerates_to_the_query_itself() {
        let members = [member(0, &[20, 30, 40], &[AggregateFunction::Sum])];
        let plan = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Auto, None)
            .unwrap();
        assert_eq!(plan.strategy, GroupStrategy::Shared);
        let shared = plan.shared.unwrap();
        // Identical to optimizing the query alone (Example 7).
        assert_eq!(shared.bundle.cost, 150);
        assert_eq!(shared.choice, PlanChoice::Factored);
        let solo = Optimizer::default()
            .optimize(&members[0].query)
            .unwrap()
            .factored
            .plan;
        // Topology is identical; only the slot label is canonicalized
        // ("SUM(V)" instead of the bare "SUM").
        assert_eq!(shared.bundle.plan.nodes(), solo.nodes());
        assert_eq!(
            shared.bundle.plan.aggregates()[0].function(),
            solo.aggregates()[0].function()
        );
        assert_eq!(plan.unshared_cost, 150);
    }

    #[test]
    fn explicit_semantics_are_validated_per_member() {
        let members = [
            member(0, &[20, 40], &[AggregateFunction::Min]),
            member(1, &[20, 60], &[AggregateFunction::Sum]),
        ];
        let err = GroupOptimizer::default()
            .plan(
                &members,
                PlanChoice::Auto,
                SharingPolicy::Shared,
                Some(Semantics::CoveredBy),
            )
            .unwrap_err();
        assert!(matches!(err, Error::IncompatibleSemantics { .. }));
    }

    #[test]
    fn all_holistic_group_still_shares_duplicate_work() {
        // Two MEDIAN queries over overlapping windows: no sub-aggregation
        // exists, but the merged original plan computes each window once.
        let members = [
            member(0, &[20, 40], &[AggregateFunction::Median]),
            member(1, &[20, 40], &[AggregateFunction::Median]),
        ];
        let plan = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Auto, None)
            .unwrap();
        assert_eq!(plan.strategy, GroupStrategy::Shared);
        let shared = plan.shared.unwrap();
        assert_eq!(shared.semantics, None);
        assert_eq!(shared.merged.aggregates().len(), 1);
        assert!(shared.bundle.cost < plan.unshared_cost);
    }

    #[test]
    fn member_since_flows_into_routes() {
        let mut late = member(1, &[20], &[AggregateFunction::Sum]);
        late.since = 120;
        let members = [member(0, &[20, 40], &[AggregateFunction::Sum]), late];
        let plan = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Shared, None)
            .unwrap();
        let shared = plan.shared.unwrap();
        for route in &shared.routes {
            let expected = if route.query == QueryId(1) { 120 } else { 0 };
            assert_eq!(route.since, expected);
        }
        assert_eq!(plan.members[1].since, 120);
    }
}
