//! Exact rational arithmetic over `i128`.
//!
//! The optimizer's decision predicates (λ in Equation 4, the Theorem 9
//! comparison, the benefit inequality in Algorithm 4) are ratios of large
//! integers; evaluating them in floating point risks flipping decisions
//! near ties, so all comparisons here are exact.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// An exact rational number with an always-positive denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Creates `num / den`, normalizing sign and reducing to lowest terms.
    /// Panics on a zero denominator (programmer error).
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    #[must_use]
    pub fn integer(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        Rational::integer(0)
    }

    /// One.
    #[must_use]
    pub fn one() -> Self {
        Rational::integer(1)
    }

    /// The numerator (after reduction; sign lives here).
    #[must_use]
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    #[must_use]
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Whether the value is an integer.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Whether the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Whether the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Lossy conversion for reporting.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_and_normalizes_sign() {
        let r = Rational::new(6, -4);
        assert_eq!(r.numerator(), -3);
        assert_eq!(r.denominator(), 2);
        assert_eq!(r, Rational::new(-3, 2));
        assert_eq!(Rational::new(0, -7), Rational::zero());
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Rational::new(1, 3) < Rational::new(34, 100));
        assert!(Rational::new(-1, 2) < Rational::zero());
        assert!(Rational::new(7, 7) == Rational::one());
        assert!(Rational::new(2, 1) > Rational::new(199, 100));
    }

    #[test]
    fn predicates() {
        assert!(Rational::new(4, 2).is_integer());
        assert!(!Rational::new(5, 2).is_integer());
        assert!(Rational::new(1, 9).is_positive());
        assert!(Rational::zero().is_zero());
        assert!((Rational::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-3, 9).to_string(), "-1/3");
    }
}
