//! The Gray et al. aggregate-function taxonomy in the window-set context
//! (Section III-A of the paper).

use crate::coverage::Semantics;
use crate::error::{Error, Result};
use std::fmt;

/// Classification of aggregate functions by how sub-aggregates compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateClass {
    /// `f(T) = g({f(T1), …, f(Tn)})` for a disjoint partition of `T`.
    Distributive,
    /// `f(T) = h({g(T1), …, g(Tn)})` with bounded-size sub-aggregates.
    Algebraic,
    /// Sub-aggregates require unbounded storage (e.g. MEDIAN).
    Holistic,
}

/// The aggregate functions supported by this reproduction.
///
/// MIN/MAX/SUM/COUNT are distributive; AVG is algebraic; MEDIAN is the
/// holistic representative used to exercise the paper's fallback path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Sum of values.
    Sum,
    /// Number of events.
    Count,
    /// Arithmetic mean (algebraic: carries sum and count).
    Avg,
    /// Median (holistic: no bounded sub-aggregate exists).
    Median,
}

impl AggregateFunction {
    /// All supported functions, for enumeration in tests and tools.
    pub const ALL: [AggregateFunction; 6] = [
        AggregateFunction::Min,
        AggregateFunction::Max,
        AggregateFunction::Sum,
        AggregateFunction::Count,
        AggregateFunction::Avg,
        AggregateFunction::Median,
    ];

    /// The taxonomy class of the function.
    #[must_use]
    pub fn class(&self) -> AggregateClass {
        match self {
            AggregateFunction::Min
            | AggregateFunction::Max
            | AggregateFunction::Sum
            | AggregateFunction::Count => AggregateClass::Distributive,
            AggregateFunction::Avg => AggregateClass::Algebraic,
            AggregateFunction::Median => AggregateClass::Holistic,
        }
    }

    /// Theorem 6: whether the function stays distributive when the
    /// sub-aggregated subsets overlap. Only such functions may use
    /// covered-by semantics.
    #[must_use]
    pub fn overlap_tolerant(&self) -> bool {
        matches!(self, AggregateFunction::Min | AggregateFunction::Max)
    }

    /// The default semantics the optimizer uses for this function
    /// (paper Section III, footnote 2). `None` for holistic functions,
    /// which fall back to the unshared plan.
    #[must_use]
    pub fn default_semantics(&self) -> Option<Semantics> {
        match self.class() {
            AggregateClass::Holistic => None,
            _ if self.overlap_tolerant() => Some(Semantics::CoveredBy),
            _ => Some(Semantics::PartitionedBy),
        }
    }

    /// Validates that `semantics` are sound for this function.
    pub fn check_semantics(&self, semantics: Semantics) -> Result<()> {
        if self.class() == AggregateClass::Holistic {
            return Err(Error::HolisticFunction {
                function: self.name(),
            });
        }
        if semantics == Semantics::CoveredBy && !self.overlap_tolerant() {
            return Err(Error::IncompatibleSemantics {
                function: self.name(),
                semantics: semantics.name(),
            });
        }
        Ok(())
    }

    /// SQL name of the function.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Median => "MEDIAN",
        }
    }

    /// Parses the SQL name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "MIN" => Some(AggregateFunction::Min),
            "MAX" => Some(AggregateFunction::Max),
            "SUM" => Some(AggregateFunction::Sum),
            "COUNT" => Some(AggregateFunction::Count),
            "AVG" => Some(AggregateFunction::Avg),
            "MEDIAN" => Some(AggregateFunction::Median),
            _ => None,
        }
    }
}

impl fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_gray_taxonomy() {
        assert_eq!(AggregateFunction::Min.class(), AggregateClass::Distributive);
        assert_eq!(
            AggregateFunction::Count.class(),
            AggregateClass::Distributive
        );
        assert_eq!(AggregateFunction::Avg.class(), AggregateClass::Algebraic);
        assert_eq!(AggregateFunction::Median.class(), AggregateClass::Holistic);
    }

    #[test]
    fn default_semantics_follow_footnote2() {
        assert_eq!(
            AggregateFunction::Min.default_semantics(),
            Some(Semantics::CoveredBy)
        );
        assert_eq!(
            AggregateFunction::Max.default_semantics(),
            Some(Semantics::CoveredBy)
        );
        assert_eq!(
            AggregateFunction::Sum.default_semantics(),
            Some(Semantics::PartitionedBy)
        );
        assert_eq!(
            AggregateFunction::Avg.default_semantics(),
            Some(Semantics::PartitionedBy)
        );
        assert_eq!(AggregateFunction::Median.default_semantics(), None);
    }

    #[test]
    fn covered_by_rejected_for_overlap_sensitive_functions() {
        assert!(AggregateFunction::Sum
            .check_semantics(Semantics::CoveredBy)
            .is_err());
        assert!(AggregateFunction::Sum
            .check_semantics(Semantics::PartitionedBy)
            .is_ok());
        assert!(AggregateFunction::Min
            .check_semantics(Semantics::CoveredBy)
            .is_ok());
        // MIN under partitioned-by is also sound (stricter relation).
        assert!(AggregateFunction::Min
            .check_semantics(Semantics::PartitionedBy)
            .is_ok());
        assert!(AggregateFunction::Median
            .check_semantics(Semantics::PartitionedBy)
            .is_err());
    }

    #[test]
    fn parse_round_trips() {
        for f in AggregateFunction::ALL {
            assert_eq!(AggregateFunction::parse(f.name()), Some(f));
            assert_eq!(AggregateFunction::parse(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(AggregateFunction::parse("PERCENTILE"), None);
    }
}
