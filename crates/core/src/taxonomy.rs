//! The Gray et al. aggregate-function taxonomy in the window-set context
//! (Section III-A of the paper).

use crate::coverage::Semantics;
use crate::error::{Error, Result};
use std::fmt;

/// Classification of aggregate functions by how sub-aggregates compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateClass {
    /// `f(T) = g({f(T1), …, f(Tn)})` for a disjoint partition of `T`.
    Distributive,
    /// `f(T) = h({g(T1), …, g(Tn)})` with bounded-size sub-aggregates.
    Algebraic,
    /// Sub-aggregates require unbounded storage (e.g. MEDIAN).
    Holistic,
}

/// The aggregate functions supported by this reproduction.
///
/// MIN/MAX/SUM/COUNT are distributive; AVG is algebraic; MEDIAN is the
/// holistic representative used to exercise the paper's fallback path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Sum of values.
    Sum,
    /// Number of events.
    Count,
    /// Arithmetic mean (algebraic: carries sum and count).
    Avg,
    /// Median (holistic: no bounded sub-aggregate exists).
    Median,
}

impl AggregateFunction {
    /// All supported functions, for enumeration in tests and tools.
    pub const ALL: [AggregateFunction; 6] = [
        AggregateFunction::Min,
        AggregateFunction::Max,
        AggregateFunction::Sum,
        AggregateFunction::Count,
        AggregateFunction::Avg,
        AggregateFunction::Median,
    ];

    /// The taxonomy class of the function.
    #[must_use]
    pub fn class(&self) -> AggregateClass {
        match self {
            AggregateFunction::Min
            | AggregateFunction::Max
            | AggregateFunction::Sum
            | AggregateFunction::Count => AggregateClass::Distributive,
            AggregateFunction::Avg => AggregateClass::Algebraic,
            AggregateFunction::Median => AggregateClass::Holistic,
        }
    }

    /// Theorem 6: whether the function stays distributive when the
    /// sub-aggregated subsets overlap. Only such functions may use
    /// covered-by semantics.
    #[must_use]
    pub fn overlap_tolerant(&self) -> bool {
        matches!(self, AggregateFunction::Min | AggregateFunction::Max)
    }

    /// The default semantics the optimizer uses for this function
    /// (paper Section III, footnote 2). `None` for holistic functions,
    /// which fall back to the unshared plan.
    #[must_use]
    pub fn default_semantics(&self) -> Option<Semantics> {
        match self.class() {
            AggregateClass::Holistic => None,
            _ if self.overlap_tolerant() => Some(Semantics::CoveredBy),
            _ => Some(Semantics::PartitionedBy),
        }
    }

    /// Validates that `semantics` are sound for this function.
    pub fn check_semantics(&self, semantics: Semantics) -> Result<()> {
        if self.class() == AggregateClass::Holistic {
            return Err(Error::HolisticFunction {
                function: self.name(),
            });
        }
        if semantics == Semantics::CoveredBy && !self.overlap_tolerant() {
            return Err(Error::IncompatibleSemantics {
                function: self.name(),
                semantics: semantics.name(),
            });
        }
        Ok(())
    }

    /// SQL name of the function.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Median => "MEDIAN",
        }
    }

    /// Parses the SQL name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "MIN" => Some(AggregateFunction::Min),
            "MAX" => Some(AggregateFunction::Max),
            "SUM" => Some(AggregateFunction::Sum),
            "COUNT" => Some(AggregateFunction::Count),
            "AVG" => Some(AggregateFunction::Avg),
            "MEDIAN" => Some(AggregateFunction::Median),
            _ => None,
        }
    }
}

impl fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One aggregate term of a query's SELECT list: the function, the column
/// it aggregates, and the display label results are tagged with.
///
/// A query carries a *list* of these over one shared window set
/// (`SELECT MIN(T), MAX(T), AVG(T) … GROUP BY …, Windows(…)`); the
/// optimizer plans pane maintenance once for the whole list and the engine
/// fans each sealed pane out to one accumulator slot per spec.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggregateSpec {
    function: AggregateFunction,
    column: String,
    label: String,
}

impl AggregateSpec {
    /// A spec over the default value column `V`, labeled by the function
    /// name (`MIN`, `SUM`, …) — what `WindowQuery::new` uses.
    #[must_use]
    pub fn new(function: AggregateFunction) -> Self {
        AggregateSpec {
            function,
            column: "V".to_string(),
            label: function.name().to_string(),
        }
    }

    /// A spec over an explicit column, labeled `FUNC(column)` (e.g.
    /// `MIN(T)`) unless overridden with [`Self::with_label`].
    #[must_use]
    pub fn over_column(function: AggregateFunction, column: &str) -> Self {
        AggregateSpec {
            function,
            column: column.to_string(),
            label: format!("{}({column})", function.name()),
        }
    }

    /// Overrides the display label (the SQL `AS` alias).
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// The aggregate function.
    #[must_use]
    pub fn function(&self) -> AggregateFunction {
        self.function
    }

    /// The aggregated column (`*` for `COUNT(*)`).
    #[must_use]
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The label results of this term are tagged with.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the function composes from bounded sub-aggregates (i.e. is
    /// not holistic) and may therefore ride the shared pane topology.
    #[must_use]
    pub fn combinable(&self) -> bool {
        self.function.class() != AggregateClass::Holistic
    }
}

impl fmt::Display for AggregateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}) AS '{}'",
            self.function.name(),
            self.column,
            self.label
        )
    }
}

/// Joint coverage semantics for a list of aggregate terms sharing one
/// plan: the *strictest* requirement among the combinable terms.
///
/// * all combinable terms overlap-tolerant (MIN/MAX) → covered-by;
/// * any overlap-sensitive combinable term (SUM/COUNT/AVG) → partitioned-by;
/// * no combinable term at all (all holistic) → `None`, the unshared
///   fallback. Holistic terms never constrain the choice — they ride raw
///   panes regardless of the sharing topology.
#[must_use]
pub fn joint_semantics(specs: &[AggregateSpec]) -> Option<Semantics> {
    let combinable: Vec<&AggregateSpec> = specs.iter().filter(|s| s.combinable()).collect();
    if combinable.is_empty() {
        return None;
    }
    if combinable.iter().all(|s| s.function().overlap_tolerant()) {
        Some(Semantics::CoveredBy)
    } else {
        Some(Semantics::PartitionedBy)
    }
}

/// Validates `semantics` against every combinable term of the list (an
/// all-holistic list has no shareable term and is rejected outright, the
/// multi-aggregate generalization of [`AggregateFunction::check_semantics`]).
pub fn check_joint_semantics(specs: &[AggregateSpec], semantics: Semantics) -> Result<()> {
    let mut combinable = specs.iter().filter(|s| s.combinable()).peekable();
    if combinable.peek().is_none() {
        return Err(Error::HolisticFunction {
            function: specs.first().map_or("?", |s| s.function().name()),
        });
    }
    for spec in combinable {
        spec.function().check_semantics(semantics)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_gray_taxonomy() {
        assert_eq!(AggregateFunction::Min.class(), AggregateClass::Distributive);
        assert_eq!(
            AggregateFunction::Count.class(),
            AggregateClass::Distributive
        );
        assert_eq!(AggregateFunction::Avg.class(), AggregateClass::Algebraic);
        assert_eq!(AggregateFunction::Median.class(), AggregateClass::Holistic);
    }

    #[test]
    fn default_semantics_follow_footnote2() {
        assert_eq!(
            AggregateFunction::Min.default_semantics(),
            Some(Semantics::CoveredBy)
        );
        assert_eq!(
            AggregateFunction::Max.default_semantics(),
            Some(Semantics::CoveredBy)
        );
        assert_eq!(
            AggregateFunction::Sum.default_semantics(),
            Some(Semantics::PartitionedBy)
        );
        assert_eq!(
            AggregateFunction::Avg.default_semantics(),
            Some(Semantics::PartitionedBy)
        );
        assert_eq!(AggregateFunction::Median.default_semantics(), None);
    }

    #[test]
    fn covered_by_rejected_for_overlap_sensitive_functions() {
        assert!(AggregateFunction::Sum
            .check_semantics(Semantics::CoveredBy)
            .is_err());
        assert!(AggregateFunction::Sum
            .check_semantics(Semantics::PartitionedBy)
            .is_ok());
        assert!(AggregateFunction::Min
            .check_semantics(Semantics::CoveredBy)
            .is_ok());
        // MIN under partitioned-by is also sound (stricter relation).
        assert!(AggregateFunction::Min
            .check_semantics(Semantics::PartitionedBy)
            .is_ok());
        assert!(AggregateFunction::Median
            .check_semantics(Semantics::PartitionedBy)
            .is_err());
    }

    #[test]
    fn spec_labels_and_columns() {
        let bare = AggregateSpec::new(AggregateFunction::Min);
        assert_eq!(bare.label(), "MIN");
        assert_eq!(bare.column(), "V");
        let t = AggregateSpec::over_column(AggregateFunction::Max, "T");
        assert_eq!(t.label(), "MAX(T)");
        let aliased = t.clone().with_label("HighTemp");
        assert_eq!(aliased.label(), "HighTemp");
        assert_eq!(aliased.column(), "T");
        assert!(aliased.combinable());
        assert!(!AggregateSpec::new(AggregateFunction::Median).combinable());
    }

    #[test]
    fn joint_semantics_is_the_strictest_combinable_requirement() {
        let spec = AggregateSpec::new;
        use AggregateFunction::{Avg, Max, Median, Min, Sum};
        // All overlap-tolerant → covered-by.
        assert_eq!(
            joint_semantics(&[spec(Min), spec(Max)]),
            Some(Semantics::CoveredBy)
        );
        // Any overlap-sensitive term forces partitioned-by.
        assert_eq!(
            joint_semantics(&[spec(Min), spec(Sum), spec(Avg)]),
            Some(Semantics::PartitionedBy)
        );
        // Holistic terms never constrain the choice...
        assert_eq!(
            joint_semantics(&[spec(Median), spec(Min)]),
            Some(Semantics::CoveredBy)
        );
        // ...but an all-holistic list has nothing to share.
        assert_eq!(joint_semantics(&[spec(Median)]), None);

        assert!(check_joint_semantics(&[spec(Min), spec(Max)], Semantics::CoveredBy).is_ok());
        assert!(matches!(
            check_joint_semantics(&[spec(Min), spec(Sum)], Semantics::CoveredBy),
            Err(Error::IncompatibleSemantics { .. })
        ));
        // Holistic riders do not make covered-by unsound for MIN/MAX.
        assert!(check_joint_semantics(&[spec(Median), spec(Min)], Semantics::CoveredBy).is_ok());
        assert!(matches!(
            check_joint_semantics(&[spec(Median)], Semantics::PartitionedBy),
            Err(Error::HolisticFunction { .. })
        ));
    }

    #[test]
    fn parse_round_trips() {
        for f in AggregateFunction::ALL {
            assert_eq!(AggregateFunction::parse(f.name()), Some(f));
            assert_eq!(AggregateFunction::parse(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(AggregateFunction::parse("PERCENTILE"), None);
    }
}
