//! Error types for the optimizer core.

use std::fmt;

/// Errors raised while constructing windows or running the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Error {
    /// A window violated `0 < slide <= range`.
    InvalidWindow {
        range: u64,
        slide: u64,
        reason: &'static str,
    },
    /// The window set is empty.
    EmptyWindowSet,
    /// The least common multiple of the window ranges overflowed 128 bits.
    PeriodOverflow,
    /// A cost computation overflowed 128 bits.
    CostOverflow,
    /// The requested semantics are unsound for the aggregate function
    /// (e.g. covered-by for SUM, whose sub-aggregates must not overlap).
    IncompatibleSemantics {
        function: &'static str,
        semantics: &'static str,
    },
    /// The aggregate function is holistic; sub-aggregate sharing is not
    /// applicable and the optimizer falls back to the original plan.
    HolisticFunction { function: &'static str },
    /// A query's aggregate list is empty.
    EmptyAggregateList,
    /// Two aggregate terms share a label; results are tagged by label, so
    /// labels must be unique within a query.
    DuplicateAggregateLabel { label: String },
    /// A query group has no registered queries (groups must keep at least
    /// one member).
    EmptyGroup,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidWindow {
                range,
                slide,
                reason,
            } => {
                write!(f, "invalid window W({range},{slide}): {reason}")
            }
            Error::EmptyWindowSet => write!(f, "window set is empty"),
            Error::PeriodOverflow => {
                write!(f, "lcm of window ranges overflowed 128-bit arithmetic")
            }
            Error::CostOverflow => write!(f, "cost computation overflowed 128-bit arithmetic"),
            Error::IncompatibleSemantics {
                function,
                semantics,
            } => {
                write!(f, "{semantics} semantics are unsound for {function}")
            }
            Error::HolisticFunction { function } => {
                write!(
                    f,
                    "{function} is holistic; shared sub-aggregation is not applicable"
                )
            }
            Error::EmptyAggregateList => write!(f, "aggregate list is empty"),
            Error::DuplicateAggregateLabel { label } => {
                write!(f, "duplicate aggregate label '{label}'")
            }
            Error::EmptyGroup => write!(f, "query group has no registered queries"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
