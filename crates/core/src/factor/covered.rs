//! Algorithm 2: finding the best factor window under covered-by semantics
//! (Section IV-B).

use crate::cost::{gcd_all, Cost, CostModel};
use crate::coverage::{covering_multiplier, is_strictly_covered_by};
use crate::error::{Error, Result};
use crate::window::Window;

/// Divisors of `n` in ascending order.
#[must_use]
pub fn divisors(n: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// The benefit `δ_f = c′ − c` of inserting `factor` between `target` and its
/// downstream windows (Equation 2, evaluated as the exact cost difference).
///
/// `target_is_virtual` selects the raw-stream instance cost `η·r` for edges
/// out of the virtual root (DESIGN.md §4.2); at η = 1 this equals
/// `M(·, S⟨1,1⟩)` and the two formulations coincide.
pub fn factor_benefit(
    model: &CostModel,
    period: Cost,
    target: &Window,
    target_is_virtual: bool,
    factor: &Window,
    downstream: &[Window],
) -> Result<i128> {
    let via_target = |w: &Window| -> Result<Cost> {
        if target_is_virtual {
            model.instance_cost(w, None)
        } else {
            model.instance_cost(w, Some(target))
        }
    };
    let mut delta: i128 = 0;
    for wj in downstream {
        let nj = wj.recurrence_count(period)?;
        let before = nj.checked_mul(via_target(wj)?).ok_or(Error::CostOverflow)?;
        let after = nj
            .checked_mul(u128::from(covering_multiplier(wj, factor)))
            .ok_or(Error::CostOverflow)?;
        delta += i128::try_from(before).map_err(|_| Error::CostOverflow)?;
        delta -= i128::try_from(after).map_err(|_| Error::CostOverflow)?;
    }
    let nf = factor.recurrence_count(period)?;
    let factor_cost = nf
        .checked_mul(via_target(factor)?)
        .ok_or(Error::CostOverflow)?;
    delta -= i128::try_from(factor_cost).map_err(|_| Error::CostOverflow)?;
    Ok(delta)
}

/// Algorithm 2: enumerates candidate factor windows for `target` and its
/// downstream set, returning the one with the maximum (strictly positive)
/// benefit, or `None`.
///
/// * Eligible slides: divisors of `gcd{s_1..s_K}` that are multiples of
///   `s_W`.
/// * Eligible ranges: multiples of the slide up to `min{r_1..r_K}`.
/// * A candidate must satisfy `W_f ≤ W` and `W_j ≤ W_f` for all `j`
///   (line 10), and must not duplicate an existing vertex (Definition 6).
pub fn find_best_factor_covered(
    model: &CostModel,
    period: Cost,
    target: &Window,
    target_is_virtual: bool,
    downstream: &[Window],
    exists: &dyn Fn(&Window) -> bool,
) -> Result<Option<Window>> {
    if downstream.is_empty() {
        return Ok(None);
    }
    let sd = gcd_all(downstream.iter().map(Window::slide));
    let rmin = downstream
        .iter()
        .map(Window::range)
        .min()
        .expect("non-empty downstream");
    let mut best: Option<(i128, Window)> = None;
    for sf in divisors(sd) {
        if sf % target.slide() != 0 {
            continue;
        }
        let mut rf = sf;
        while rf <= rmin {
            // `rf` is a multiple of `sf` by construction, so this cannot fail.
            let candidate = Window::new(rf, sf).expect("rf is a positive multiple of sf");
            rf += sf;
            if exists(&candidate)
                || !is_strictly_covered_by(&candidate, target)
                || !downstream
                    .iter()
                    .all(|wj| is_strictly_covered_by(wj, &candidate))
            {
                continue;
            }
            let delta = factor_benefit(
                model,
                period,
                target,
                target_is_virtual,
                &candidate,
                downstream,
            )?;
            // Line 16: keep only strictly positive improvements, first wins ties.
            if delta > 0 && best.as_ref().is_none_or(|(b, _)| delta > *b) {
                best = Some((delta, candidate));
            }
        }
    }
    Ok(best.map(|(_, w)| w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn never_exists(_: &Window) -> bool {
        false
    }

    #[test]
    fn divisor_enumeration() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(7), vec![1, 7]);
        assert!(divisors(0).is_empty());
        assert_eq!(divisors(36), vec![1, 2, 3, 4, 6, 9, 12, 18, 36]);
    }

    #[test]
    fn example7_benefit_of_w10() {
        // Inserting W(10,10) between S and {W2(20), W3(30)}:
        // before: c2 + c3 = 120 + 120 = 240; after: 12 + 12 + cost(Wf) 120
        // → δ = 240 - 24 - 120 = 96.
        let model = CostModel::default();
        let delta = factor_benefit(
            &model,
            120,
            &Window::unit(),
            true,
            &w(10, 10),
            &[w(20, 20), w(30, 30)],
        )
        .unwrap();
        assert_eq!(delta, 96);
    }

    #[test]
    fn finds_w10_for_example7_under_covered_by() {
        let model = CostModel::default();
        let best = find_best_factor_covered(
            &model,
            120,
            &Window::unit(),
            true,
            &[w(20, 20), w(30, 30)],
            &never_exists,
        )
        .unwrap();
        assert_eq!(best, Some(w(10, 10)));
    }

    #[test]
    fn rejects_candidates_that_duplicate_vertices() {
        let model = CostModel::default();
        let best = find_best_factor_covered(
            &model,
            120,
            &Window::unit(),
            true,
            &[w(20, 20), w(30, 30)],
            &|cand| *cand == w(10, 10),
        )
        .unwrap();
        // W(10,10) is taken; the next best divisor-aligned candidate wins.
        assert!(best.is_some());
        assert_ne!(best, Some(w(10, 10)));
    }

    #[test]
    fn no_factor_for_single_tumbling_downstream() {
        // One tumbling downstream window: any tumbling factor has zero or
        // negative benefit (Algorithm 4 intuition, case 2).
        let model = CostModel::default();
        let best = find_best_factor_covered(
            &model,
            40,
            &Window::unit(),
            true,
            &[w(40, 40)],
            &never_exists,
        )
        .unwrap();
        assert_eq!(best, None);
    }

    #[test]
    fn hopping_downstream_can_benefit_from_single_factor() {
        // W(40, 10) re-reads every event 4 times when fed raw; at period
        // 120 (m1 = 3) a tumbling factor W(10,10) pays for itself:
        // δ = 9·40 − 9·4 − 12·10 = 204.
        let model = CostModel::default();
        let best = find_best_factor_covered(
            &model,
            120,
            &Window::unit(),
            true,
            &[w(40, 10)],
            &never_exists,
        )
        .unwrap();
        assert_eq!(best, Some(w(10, 10)));
    }

    #[test]
    fn empty_downstream_returns_none() {
        let model = CostModel::default();
        assert_eq!(
            find_best_factor_covered(&model, 120, &Window::unit(), true, &[], &never_exists)
                .unwrap(),
            None
        );
    }

    #[test]
    fn benefit_can_be_negative() {
        // A factor window equal in range to the smallest downstream window
        // is invalid; a much smaller one with slide 1 may cost more than it
        // saves when the downstream windows are few and small.
        let model = CostModel::default();
        let delta =
            factor_benefit(&model, 20, &Window::unit(), true, &w(2, 1), &[w(20, 20)]).unwrap();
        assert!(delta < 0, "delta = {delta}");
    }
}
