//! Factor windows (Section IV): auxiliary windows inserted into the WCG to
//! reduce total cost, and Algorithm 3 tying candidate search (Algorithms
//! 2 and 5) to Algorithm 1.

pub mod covered;
pub mod partitioned;

use crate::cost::CostModel;
use crate::coverage::Semantics;
use crate::error::Result;
use crate::min_cost::{minimize, MinCostWcg};
use crate::wcg::Wcg;
use crate::window::{Window, WindowSet};

pub use covered::{factor_benefit, find_best_factor_covered};
pub use partitioned::{
    find_best_factor_partitioned, is_beneficial_partitioned, lambda, theorem9_prefers,
};

/// Algorithm 3: builds the augmented WCG, inserts the best factor window
/// for every vertex with downstream windows (using Algorithm 2 under
/// covered-by or Algorithm 5 under partitioned-by), then reruns Algorithm 1
/// on the expanded graph and prunes factor windows nothing reads from.
///
/// A vertex's "downstream windows" are its children in the *min-cost* WCG
/// — the windows that actually read from it — not all out-neighbors of the
/// coverage graph. This is the reading of the paper's Figure 9 under which
/// its no-regression claim (Section IV-C) actually holds: the benefit
/// `δ_f` compares "children read W" (true in the min-cost forest) against
/// "children read W_f", and every `W_j ≤ W_f ≤ W` satisfies
/// `M(W_j, W_f) ≤ M(W_j, W)`, so the rerun of Algorithm 1 realizes at
/// least `δ_f`. Computed against all coverage out-neighbors instead, the
/// "before" side can overstate a child's current cost (it may already have
/// a cheaper parent) and a locally-beneficial factor can regress the total
/// — our property tests caught exactly that on
/// `{W(7,7), W(8,8), W(24,12), W(72,24)}`.
pub fn minimize_with_factors(
    windows: &WindowSet,
    semantics: Semantics,
    model: &CostModel,
) -> Result<MinCostWcg> {
    let period = model.period(windows.iter())?;
    let mut wcg = Wcg::build_augmented(windows, semantics);
    let baseline = minimize(wcg.clone(), model, period)?;

    // The Figure-9 patterns: every vertex windows currently read from. The
    // virtual root's "children" are the raw-fed windows.
    let root = wcg.root().expect("augmented WCG has a root");
    let mut patterns: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut raw_fed: Vec<usize> = Vec::new();
    for i in 0..wcg.len() {
        if wcg.is_virtual(i) {
            continue;
        }
        match baseline.feed(i) {
            crate::min_cost::Feed::Raw => raw_fed.push(i),
            crate::min_cost::Feed::From(p) => {
                if wcg.is_virtual(p) {
                    raw_fed.push(i);
                } else if let Some(entry) = patterns.iter_mut().find(|(v, _)| *v == p) {
                    entry.1.push(i);
                } else {
                    patterns.push((p, vec![i]));
                }
            }
        }
    }
    if !raw_fed.is_empty() {
        patterns.insert(0, (root, raw_fed));
    }

    for (vertex, child_ids) in patterns {
        let target = wcg.node(vertex).window;
        let target_is_virtual = wcg.is_virtual(vertex);
        let downstream: Vec<Window> = child_ids.iter().map(|&c| wcg.node(c).window).collect();
        let exists = |w: &Window| wcg.find(w).is_some();
        let best = match semantics {
            Semantics::CoveredBy => find_best_factor_covered(
                model,
                period,
                &target,
                target_is_virtual,
                &downstream,
                &exists,
            )?,
            Semantics::PartitionedBy => find_best_factor_partitioned(
                model,
                period,
                &target,
                target_is_virtual,
                &downstream,
                &exists,
            )?,
        };
        if let Some(factor) = best {
            wcg.insert_factor(factor, vertex, &child_ids);
        }
    }

    let mut result = minimize(wcg, model, period)?;
    result.prune_dead_factors();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cost::Feed;
    use crate::wcg::NodeKind;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn set(ws: &[Window]) -> WindowSet {
        WindowSet::new(ws.to_vec()).unwrap()
    }

    #[test]
    fn example7_with_factor_windows() {
        // Figure 7(b): W(10,10) added back as a factor window; total cost
        // 150 (58.3% below baseline 360, 39% below 246 without factors).
        let model = CostModel::default();
        let mc = minimize_with_factors(
            &set(&[w(20, 20), w(30, 30), w(40, 40)]),
            Semantics::PartitionedBy,
            &model,
        )
        .unwrap();
        assert_eq!(mc.total_cost(), 150);
        let g = mc.wcg();
        let f = g.find(&w(10, 10)).expect("factor window inserted");
        assert_eq!(g.node(f).kind, NodeKind::Factor);
        assert!(mc.is_active(f));
        assert_eq!(mc.cost(f), 120);
        let id = |r| g.find(&w(r, r)).unwrap();
        assert_eq!(mc.cost(id(20)), 12);
        assert_eq!(mc.cost(id(30)), 12);
        assert_eq!(mc.cost(id(40)), 6);
        assert_eq!(mc.feed(id(20)), Feed::From(f));
        assert_eq!(mc.feed(id(30)), Feed::From(f));
        assert_eq!(mc.feed(id(40)), Feed::From(id(20)));
        assert!(mc.is_forest());
    }

    #[test]
    fn factors_never_increase_cost() {
        // Algorithm 3 only inserts beneficial factors, so its total is
        // never above Algorithm 1's (Section IV-C).
        let sets = vec![
            vec![w(20, 20), w(30, 30), w(40, 40)],
            vec![w(15, 15), w(17, 17), w(19, 19)],
            vec![w(10, 5), w(20, 5), w(40, 10)],
            vec![w(8, 2), w(12, 4), w(24, 8)],
            vec![w(100, 100), w(200, 200), w(300, 300), w(500, 500)],
        ];
        let model = CostModel::default();
        for windows in sets {
            let ws = set(&windows);
            for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
                let period = model.period(ws.iter()).unwrap();
                let plain = minimize(Wcg::build_augmented(&ws, semantics), &model, period).unwrap();
                let with = minimize_with_factors(&ws, semantics, &model).unwrap();
                assert!(
                    with.total_cost() <= plain.total_cost(),
                    "{windows:?} {semantics:?}: {} > {}",
                    with.total_cost(),
                    plain.total_cost()
                );
            }
        }
    }

    #[test]
    fn mutually_prime_sets_gain_nothing() {
        // Paper "Limitations": with mutually prime ranges there is no
        // coverage, and the Figure-9 pattern requires a factor to cover all
        // of the target's downstream windows (gcd = 1 ⇒ no candidate).
        let model = CostModel::default();
        let ws = set(&[w(15, 15), w(17, 17), w(19, 19)]);
        let mc = minimize_with_factors(&ws, Semantics::PartitionedBy, &model).unwrap();
        let baseline = model
            .baseline_cost(ws.iter(), model.period(ws.iter()).unwrap())
            .unwrap();
        assert_eq!(mc.total_cost(), baseline);
        assert!(mc
            .active_nodes()
            .all(|i| mc.wcg().node(i).kind != NodeKind::Factor));
    }

    #[test]
    fn dead_factors_are_pruned() {
        // Construct a case where a factor is inserted for one pattern but
        // Algorithm 1 routes every child through a cheaper user window;
        // at minimum, verify no active factor lacks consumers.
        let model = CostModel::default();
        let ws = set(&[w(10, 5), w(20, 10), w(40, 20), w(80, 40)]);
        let mc = minimize_with_factors(&ws, Semantics::CoveredBy, &model).unwrap();
        for i in mc.active_nodes() {
            if mc.wcg().node(i).kind == NodeKind::Factor {
                assert!(
                    mc.children(i).iter().any(|&c| mc.is_active(c)),
                    "active factor {} has no consumers",
                    mc.wcg().node(i).window
                );
            }
        }
        assert!(mc.is_forest());
    }

    #[test]
    fn example6_unchanged_by_factors() {
        // The four-window set of Example 6 already contains W(10,10); the
        // min-cost WCG is unchanged (cost 150) because no additional factor
        // window is beneficial.
        let model = CostModel::default();
        let mc = minimize_with_factors(
            &set(&[w(10, 10), w(20, 20), w(30, 30), w(40, 40)]),
            Semantics::PartitionedBy,
            &model,
        )
        .unwrap();
        assert_eq!(mc.total_cost(), 150);
    }

    #[test]
    fn covered_by_hopping_set_gets_factors() {
        // Hopping windows with a shared slide benefit from a tumbling
        // factor that absorbs the per-event re-reads.
        let model = CostModel::default();
        let ws = set(&[w(40, 20), w(60, 20), w(80, 20)]);
        let plain = minimize(
            Wcg::build_augmented(&ws, Semantics::CoveredBy),
            &model,
            model.period(ws.iter()).unwrap(),
        )
        .unwrap();
        let with = minimize_with_factors(&ws, Semantics::CoveredBy, &model).unwrap();
        assert!(with.total_cost() < plain.total_cost());
        let has_factor = with
            .active_nodes()
            .any(|i| with.wcg().node(i).kind == NodeKind::Factor);
        assert!(has_factor);
    }
}
