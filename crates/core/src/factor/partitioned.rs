//! Algorithms 4 and 5: factor-window search under partitioned-by semantics
//! (Section IV-D), where candidates are restricted to tumbling windows
//! (Theorem 4) and the search space shrinks from slide×range pairs to the
//! divisors of `gcd{r_1..r_K}`.

use crate::cost::{gcd_all, Cost, CostModel};
use crate::coverage::{covering_multiplier, is_strictly_covered_by, is_strictly_partitioned_by};
use crate::error::{Error, Result};
use crate::factor::covered::divisors;
use crate::rational::Rational;
use crate::window::Window;

/// Equation 4: `λ = Σ_j n_j / m_j` over the downstream windows, with
/// `m_j = R / r_j` and `n_j` the recurrence count.
pub fn lambda(downstream: &[Window], period: Cost) -> Result<Rational> {
    let mut acc = Rational::zero();
    for wj in downstream {
        let nj = wj.recurrence_count(period)?;
        debug_assert_eq!(
            period % u128::from(wj.range()),
            0,
            "user range must divide R"
        );
        let mj = period / u128::from(wj.range());
        let nj = i128::try_from(nj).map_err(|_| Error::CostOverflow)?;
        let mj = i128::try_from(mj).map_err(|_| Error::CostOverflow)?;
        acc = acc + Rational::new(nj, mj);
    }
    Ok(acc)
}

/// Algorithm 4: decides whether the tumbling factor window `factor` between
/// tumbling `target` and its downstream windows improves the overall cost.
///
/// * `K ≥ 2`: always beneficial (at least one downstream window reads
///   cheaper sub-aggregates while `r_f ≥ 2 r_W` bounds the factor's cost).
/// * `K = 1`, downstream tumbling (`k_1 = 1`): never beneficial.
/// * `K = 1`, `k_1 ≥ 3` and `m_1 ≥ 3`: always beneficial.
/// * Otherwise: beneficial iff `r_f / r_W ≥ λ/(λ−1)` where
///   `λ/(λ−1) = 1 + m_1 / ((m_1−1)(k_1−1))`.
pub fn is_beneficial_partitioned(
    factor: &Window,
    target: &Window,
    downstream: &[Window],
    period: Cost,
) -> Result<bool> {
    debug_assert!(factor.is_tumbling() && target.is_tumbling());
    if downstream.is_empty() {
        return Ok(false);
    }
    if downstream.len() >= 2 {
        return Ok(true);
    }
    let w1 = &downstream[0];
    let k1 = w1.instances_per_point();
    if k1 == 1 {
        return Ok(false);
    }
    debug_assert_eq!(period % u128::from(w1.range()), 0);
    let m1 = period / u128::from(w1.range());
    if m1 <= 1 {
        // With a single instance per period, sub-aggregates are consumed
        // once: the factor's own cost can never be amortized (the paper's
        // Theorem 8 proof notes λ = 1 makes Equation 8 unsatisfiable).
        return Ok(false);
    }
    if k1 >= 3 && m1 >= 3 {
        return Ok(true);
    }
    // Exact comparison r_f/r_W ≥ n_1/(n_1 − m_1) in integer arithmetic.
    let n1 = w1.recurrence_count(period)?;
    debug_assert!(n1 > m1, "k1 > 1 and m1 > 1 imply n1 > m1");
    let lhs = u128::from(factor.range())
        .checked_mul(n1 - m1)
        .ok_or(Error::CostOverflow)?;
    let rhs = u128::from(target.range())
        .checked_mul(n1)
        .ok_or(Error::CostOverflow)?;
    Ok(lhs >= rhs)
}

/// The total cost of the Figure-9 pattern when `factor` is inserted:
/// `Σ_j n_j·M(W_j, W_f) + n_f·ic(W_f)` (the target's own cost is common to
/// all candidates and omitted). Used to pick the best candidate; ordering
/// is identical to the Theorem 9 predicate (see tests).
pub fn pattern_cost_with_factor(
    model: &CostModel,
    period: Cost,
    target: &Window,
    target_is_virtual: bool,
    factor: &Window,
    downstream: &[Window],
) -> Result<Cost> {
    let mut total: Cost = 0;
    for wj in downstream {
        let nj = wj.recurrence_count(period)?;
        total = total
            .checked_add(
                nj.checked_mul(u128::from(covering_multiplier(wj, factor)))
                    .ok_or(Error::CostOverflow)?,
            )
            .ok_or(Error::CostOverflow)?;
    }
    let nf = factor.recurrence_count(period)?;
    let ic = if target_is_virtual {
        model.instance_cost(factor, None)?
    } else {
        model.instance_cost(factor, Some(target))?
    };
    total
        .checked_add(nf.checked_mul(ic).ok_or(Error::CostOverflow)?)
        .ok_or(Error::CostOverflow)
}

/// Theorem 9: for two *independent* eligible tumbling factor windows,
/// `c_f ≤ c′_f` iff `r_f/r′_f ≥ (λ − r_f/r_W) / (λ − r′_f/r_W)`.
///
/// The paper's printed inequality implicitly assumes both denominators are
/// positive; cross-multiplying with the correct sign, the comparison
/// reduces to `λ·(r_f − r′_f) ≥ 0`, i.e. the coarser candidate always wins
/// (both tumbling factors pay the identical `n_f·M(W_f, W) = R/r_W`, so
/// only the downstream term `Σ n_j·r_j/r_f` differs). We implement the
/// sign-correct form; the tests assert it orders candidates exactly like
/// [`pattern_cost_with_factor`] and matches the printed form whenever the
/// printed form's denominators are positive.
pub fn theorem9_prefers(
    factor: &Window,
    other: &Window,
    target: &Window,
    downstream: &[Window],
    period: Cost,
) -> Result<bool> {
    debug_assert!(factor.is_tumbling() && other.is_tumbling() && target.is_tumbling());
    let lam = lambda(downstream, period)?;
    debug_assert!(lam.is_positive());
    let _ = target;
    // λ > 0 ⇒ c_f ≤ c′_f ⇔ r_f ≥ r′_f.
    Ok(factor.range() >= other.range())
}

/// The literal inequality printed as Theorem 9, valid only when both
/// denominators `λ − r_f/r_W` and `λ − r′_f/r_W` are positive; returns
/// `None` outside that regime. Exposed so tests can document the
/// equivalence with [`theorem9_prefers`] on the printed form's domain.
pub fn theorem9_literal(
    factor: &Window,
    other: &Window,
    target: &Window,
    downstream: &[Window],
    period: Cost,
) -> Result<Option<bool>> {
    let lam = lambda(downstream, period)?;
    let rf = Rational::integer(i128::from(factor.range()));
    let rf2 = Rational::integer(i128::from(other.range()));
    let rw = Rational::integer(i128::from(target.range()));
    let d1 = lam - rf / rw;
    let d2 = lam - rf2 / rw;
    if !d1.is_positive() || !d2.is_positive() {
        return Ok(None);
    }
    Ok(Some(rf / rf2 >= d1 / d2))
}

/// Algorithm 5: the best tumbling factor window for tumbling `target` and
/// its downstream windows, or `None`.
///
/// Beyond the paper we (a) verify the partitioned-by coverage constraints
/// explicitly, which matters when downstream windows are hopping, and
/// (b) skip candidates that duplicate existing vertices (DESIGN.md §4.6/§4.8).
pub fn find_best_factor_partitioned(
    model: &CostModel,
    period: Cost,
    target: &Window,
    target_is_virtual: bool,
    downstream: &[Window],
    exists: &dyn Fn(&Window) -> bool,
) -> Result<Option<Window>> {
    if downstream.is_empty() || !target.is_tumbling() {
        return Ok(None);
    }
    let rd = gcd_all(downstream.iter().map(Window::range));
    if rd == target.range() {
        return Ok(None);
    }
    // Candidate ranges: divisors of rd that are proper multiples of r_W.
    let mut candidates = Vec::new();
    for rf in divisors(rd) {
        if rf % target.range() != 0 || rf == target.range() {
            continue;
        }
        let cand = Window::tumbling(rf).expect("positive range");
        if exists(&cand)
            || !is_strictly_partitioned_by(&cand, target)
            || !downstream
                .iter()
                .all(|wj| is_strictly_partitioned_by(wj, &cand))
        {
            continue;
        }
        if is_beneficial_partitioned(&cand, target, downstream, period)? {
            candidates.push(cand);
        }
    }
    // Prune dependent candidates: drop W_f when some other candidate W′_f is
    // covered by it (the coarser W′_f dominates — Example 8).
    let kept: Vec<Window> = candidates
        .iter()
        .filter(|wf| {
            !candidates
                .iter()
                .any(|other| other != *wf && is_strictly_covered_by(other, wf))
        })
        .copied()
        .collect();
    // Select the min-cost candidate (same ordering as Theorem 9).
    let mut best: Option<(Cost, Window)> = None;
    for wf in kept {
        let cost =
            pattern_cost_with_factor(model, period, target, target_is_virtual, &wf, downstream)?;
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, wf));
        }
    }
    Ok(best.map(|(_, w)| w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn never_exists(_: &Window) -> bool {
        false
    }

    #[test]
    fn lambda_matches_eq4() {
        // Example 7 downstream of S: W2(20), W3(30) at R = 120:
        // tumbling ⇒ n_j = m_j ⇒ λ = 2.
        let lam = lambda(&[w(20, 20), w(30, 30)], 120).unwrap();
        assert_eq!(lam, Rational::integer(2));
        // Hopping W(20,10): n = 11, m = 6 → λ = 11/6.
        let lam = lambda(&[w(20, 10)], 120).unwrap();
        assert_eq!(lam, Rational::new(11, 6));
    }

    #[test]
    fn algorithm4_k_ge_2_is_beneficial() {
        assert!(is_beneficial_partitioned(
            &w(10, 10),
            &Window::unit(),
            &[w(20, 20), w(30, 30)],
            120
        )
        .unwrap());
    }

    #[test]
    fn algorithm4_single_tumbling_downstream_is_not() {
        assert!(
            !is_beneficial_partitioned(&w(20, 20), &Window::unit(), &[w(40, 40)], 120).unwrap()
        );
    }

    #[test]
    fn algorithm4_single_instance_period_is_not() {
        // m1 = 1: the factor cannot amortize.
        assert!(!is_beneficial_partitioned(&w(10, 10), &Window::unit(), &[w(40, 10)], 40).unwrap());
    }

    #[test]
    fn algorithm4_large_k1_m1_is_beneficial() {
        // k1 = 4, m1 = 3 ⇒ true without the ratio test.
        assert!(is_beneficial_partitioned(&w(10, 10), &Window::unit(), &[w(40, 10)], 120).unwrap());
    }

    #[test]
    fn algorithm4_ratio_test_boundary() {
        // k1 = 2, m1 = 2: λ/(λ−1) = 1 + 2/((1)(1)) = 3, so r_f/r_W ≥ 3.
        // Downstream W(20,10) at R = 40: n1 = 3, m1 = 2, k1 = 2.
        let target = Window::unit();
        let down = [w(20, 10)];
        assert!(!is_beneficial_partitioned(&w(2, 2), &target, &down, 40).unwrap());
        // Valid candidates must divide both r = 20 and s = 10: {2, 5, 10}.
        // r_f = 5 ≥ 3·r_W = 3 passes the ratio test; r_f = 2 fails it.
        assert!(is_beneficial_partitioned(&w(5, 5), &target, &down, 40).unwrap());
        // Direct benefit cross-check: δ(5,5) = 3·(20−4) − 8·5 = 8 ≥ 0 and
        // δ(2,2) = 3·(20−10) − 20·2 = −10 < 0.
        let model = CostModel::default();
        let d5 = crate::factor::covered::factor_benefit(&model, 40, &target, true, &w(5, 5), &down)
            .unwrap();
        let d2 = crate::factor::covered::factor_benefit(&model, 40, &target, true, &w(2, 2), &down)
            .unwrap();
        assert!(d5 >= 0 && d2 < 0, "d5 = {d5}, d2 = {d2}");
    }

    #[test]
    fn example8_candidate_generation_and_selection() {
        // Example 8: candidates {W(10,10), W(5,5), W(2,2)}; the two finer
        // ones are dependent (they cover W(10,10)) and W(10,10) wins.
        let model = CostModel::default();
        let best = find_best_factor_partitioned(
            &model,
            120,
            &Window::unit(),
            true,
            &[w(20, 20), w(30, 30)],
            &never_exists,
        )
        .unwrap();
        assert_eq!(best, Some(w(10, 10)));
    }

    #[test]
    fn no_candidate_when_gcd_equals_target_range() {
        let model = CostModel::default();
        // Target W(10,10), downstream gcd = 10 ⇒ line 5 returns "no factor".
        let best = find_best_factor_partitioned(
            &model,
            120,
            &w(10, 10),
            false,
            &[w(20, 20), w(30, 30)],
            &never_exists,
        )
        .unwrap();
        assert_eq!(best, None);
    }

    #[test]
    fn soundness_guard_for_hopping_downstream() {
        // W(20,10): candidates must partition it, so r_f must divide the
        // slide 10 too. r_f = 20 would divide gcd ranges (20) but not the
        // slide; the guard must reject it.
        let model = CostModel::default();
        let best = find_best_factor_partitioned(
            &model,
            120,
            &Window::unit(),
            true,
            &[w(20, 10), w(40, 10)],
            &never_exists,
        )
        .unwrap();
        if let Some(wf) = best {
            assert!(
                is_strictly_partitioned_by(&w(20, 10), &wf),
                "unsound candidate {wf}"
            );
        }
        // K = 2 makes candidates beneficial, and r_f ∈ {2, 5, 10} all
        // partition both windows; the coarsest independent one is W(10,10).
        assert_eq!(best, Some(w(10, 10)));
    }

    #[test]
    fn theorem9_matches_direct_cost_comparison() {
        let model = CostModel::default();
        let target = Window::unit();
        let down = [w(40, 40), w(60, 60)];
        let period: Cost = 120;
        let candidates = [w(2, 2), w(4, 4), w(5, 5), w(10, 10), w(20, 20)];
        for a in &candidates {
            for b in &candidates {
                if a == b {
                    continue;
                }
                let ca = pattern_cost_with_factor(&model, period, &target, true, a, &down).unwrap();
                let cb = pattern_cost_with_factor(&model, period, &target, true, b, &down).unwrap();
                let t9 = theorem9_prefers(a, b, &target, &down, period).unwrap();
                assert_eq!(t9, ca <= cb, "a={a} b={b} ca={ca} cb={cb}");
            }
        }
    }

    #[test]
    fn theorem9_literal_agrees_in_its_valid_regime() {
        // Hopping downstream windows make λ large, keeping the printed
        // form's denominators positive: W(60,6) at R=120 has n=11, m=2,
        // λ = 11/2, so candidates with r_f/r_W < 11/2 are in regime.
        let model = CostModel::default();
        let target = w(1, 1);
        let down = [w(60, 6)];
        let period: Cost = 120;
        let candidates = [w(2, 2), w(3, 3)];
        for a in &candidates {
            for b in &candidates {
                if a == b {
                    continue;
                }
                let lit = theorem9_literal(a, b, &target, &down, period).unwrap();
                let ca = pattern_cost_with_factor(&model, period, &target, true, a, &down).unwrap();
                let cb = pattern_cost_with_factor(&model, period, &target, true, b, &down).unwrap();
                assert_eq!(lit, Some(ca <= cb), "a={a} b={b}");
            }
        }
        // Outside the regime the literal form declines to answer.
        assert_eq!(
            theorem9_literal(&w(10, 10), &w(5, 5), &target, &down, period).unwrap(),
            None
        );
    }

    #[test]
    fn non_tumbling_target_yields_none() {
        let model = CostModel::default();
        let best = find_best_factor_partitioned(
            &model,
            120,
            &w(20, 10),
            false,
            &[w(40, 40)],
            &never_exists,
        )
        .unwrap();
        assert_eq!(best, None);
    }

    #[test]
    fn duplicate_candidates_are_skipped() {
        let model = CostModel::default();
        let best = find_best_factor_partitioned(
            &model,
            120,
            &Window::unit(),
            true,
            &[w(20, 20), w(30, 30)],
            &|cand| *cand == w(10, 10),
        )
        .unwrap();
        // With W(10,10) taken, W(5,5) is the coarsest independent candidate.
        assert_eq!(best, Some(w(5, 5)));
    }
}
