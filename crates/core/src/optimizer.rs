//! The cost-based optimizer facade: from a multi-window aggregate query to
//! the original plan, the Algorithm-1 rewrite, and the Algorithm-3 rewrite
//! with factor windows.

use crate::cost::{Cost, CostModel};
use crate::coverage::Semantics;
use crate::error::{Error, Result};
use crate::factor::minimize_with_factors;
use crate::min_cost::minimize;
use crate::plan::QueryPlan;
use crate::rewrite::{original_plan, rewrite};
use crate::taxonomy::{check_joint_semantics, joint_semantics, AggregateFunction, AggregateSpec};
use crate::wcg::Wcg;
use crate::window::{Window, WindowSet};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A multi-window aggregate query: a list of aggregate terms evaluated
/// over one shared window set, optionally with display labels per window
/// (Figure 1(a)).
///
/// The common single-aggregate case is [`WindowQuery::new`]; a
/// multi-aggregate SELECT list (`MIN(T), MAX(T), AVG(T)`) is built with
/// [`WindowQuery::with_aggregates`] and shares pane maintenance across all
/// terms in one plan.
#[derive(Debug, Clone)]
pub struct WindowQuery {
    windows: WindowSet,
    aggregates: Vec<AggregateSpec>,
    labels: BTreeMap<Window, String>,
}

impl WindowQuery {
    /// Creates a single-aggregate query with default labels.
    #[must_use]
    pub fn new(windows: WindowSet, function: AggregateFunction) -> Self {
        WindowQuery {
            windows,
            aggregates: vec![AggregateSpec::new(function)],
            labels: BTreeMap::new(),
        }
    }

    /// Creates a query over a list of aggregate terms sharing the window
    /// set. Errors on an empty list or duplicate term labels (results are
    /// tagged by label, so labels must be unique).
    pub fn with_aggregates(windows: WindowSet, aggregates: Vec<AggregateSpec>) -> Result<Self> {
        if aggregates.is_empty() {
            return Err(Error::EmptyAggregateList);
        }
        for (i, spec) in aggregates.iter().enumerate() {
            if aggregates[..i].iter().any(|s| s.label() == spec.label()) {
                return Err(Error::DuplicateAggregateLabel {
                    label: spec.label().to_string(),
                });
            }
        }
        Ok(WindowQuery {
            windows,
            aggregates,
            labels: BTreeMap::new(),
        })
    }

    /// Attaches display labels (e.g. `'20 min'`) to windows.
    #[must_use]
    pub fn with_labels(mut self, labels: BTreeMap<Window, String>) -> Self {
        self.labels = labels;
        self
    }

    /// The window set.
    #[must_use]
    pub fn windows(&self) -> &WindowSet {
        &self.windows
    }

    /// The aggregate terms, in SELECT-list order. Never empty; a result's
    /// `agg` index points into this slice.
    #[must_use]
    pub fn aggregates(&self) -> &[AggregateSpec] {
        &self.aggregates
    }

    /// The first aggregate term's function — the whole query's function
    /// for the (common) single-aggregate case.
    #[must_use]
    pub fn function(&self) -> AggregateFunction {
        self.aggregates[0].function()
    }

    /// The default coverage semantics for the whole term list: the
    /// strictest requirement among the combinable terms, or `None` when
    /// every term is holistic (the unshared fallback). See
    /// [`joint_semantics`].
    #[must_use]
    pub fn default_semantics(&self) -> Option<Semantics> {
        joint_semantics(&self.aggregates)
    }

    /// Validates explicit semantics against every combinable term.
    pub fn check_semantics(&self, semantics: Semantics) -> Result<()> {
        check_joint_semantics(&self.aggregates, semantics)
    }

    /// Display label for a window: the user label, or `W(r,s)`.
    #[must_use]
    pub fn label_of(&self, w: &Window) -> String {
        self.labels.get(w).cloned().unwrap_or_else(|| w.to_string())
    }
}

/// A plan together with its modeled cost.
#[derive(Debug, Clone)]
pub struct PlanBundle {
    /// The logical plan.
    pub plan: QueryPlan,
    /// Modeled cost per period `R` (Section III-B).
    pub cost: Cost,
}

/// Which of the optimizer's plans a session should execute.
///
/// The policy every consumer (the `Session` façade, the harness, the
/// benches) threads through: `Auto` trusts the cost model; the concrete
/// choices pin a plan for A/B comparisons and regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlanChoice {
    /// The cheapest plan under the cost model (ties resolve to the
    /// structurally simplest plan: original, then rewritten, then factored).
    #[default]
    Auto,
    /// The unshared plan of Figure 2(a).
    Original,
    /// The Algorithm-1 rewrite (sharing among query windows only).
    Rewritten,
    /// The Algorithm-3 rewrite (factor windows allowed).
    Factored,
}

impl PlanChoice {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PlanChoice::Auto => "auto",
            PlanChoice::Original => "original",
            PlanChoice::Rewritten => "rewritten",
            PlanChoice::Factored => "factored",
        }
    }

    /// The three concrete (non-`Auto`) choices.
    pub const CONCRETE: [PlanChoice; 3] = [
        PlanChoice::Original,
        PlanChoice::Rewritten,
        PlanChoice::Factored,
    ];
}

impl std::fmt::Display for PlanChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The optimizer's output: the three plans the paper evaluates against
/// each other, plus optimization timings (Figure 12).
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// Semantics used to build the WCG; `None` when the function is
    /// holistic and the optimizer fell back to the original plan.
    pub semantics: Option<Semantics>,
    /// The unshared plan of Figure 2(a).
    pub original: PlanBundle,
    /// The Algorithm-1 rewrite (sharing among query windows only).
    pub rewritten: PlanBundle,
    /// The Algorithm-3 rewrite (factor windows allowed).
    pub factored: PlanBundle,
    /// Wall time of Algorithm 1 (WCG construction + minimization + rewrite).
    pub rewrite_time: Duration,
    /// Wall time of Algorithm 3 (candidate search + minimization + rewrite).
    pub factor_time: Duration,
}

impl OptimizationOutcome {
    /// Resolves `choice` to a concrete plan: `Auto` picks the cheapest
    /// plan, breaking ties toward the structurally simplest (original
    /// before rewritten before factored), so a no-win optimization runs
    /// the plan with the fewest operators.
    #[must_use]
    pub fn resolve(&self, choice: PlanChoice) -> PlanChoice {
        match choice {
            PlanChoice::Auto => {
                let min = self
                    .original
                    .cost
                    .min(self.rewritten.cost)
                    .min(self.factored.cost);
                if self.original.cost == min {
                    PlanChoice::Original
                } else if self.rewritten.cost == min {
                    PlanChoice::Rewritten
                } else {
                    PlanChoice::Factored
                }
            }
            concrete => concrete,
        }
    }

    /// The bundle `choice` designates (after [`Self::resolve`]).
    #[must_use]
    pub fn select(&self, choice: PlanChoice) -> &PlanBundle {
        match self.resolve(choice) {
            PlanChoice::Original => &self.original,
            PlanChoice::Rewritten => &self.rewritten,
            PlanChoice::Factored | PlanChoice::Auto => &self.factored,
        }
    }

    /// Predicted speedup of the rewritten plan over the original,
    /// `γ_C = C_orig / C_rewritten`.
    #[must_use]
    pub fn predicted_speedup_rewritten(&self) -> f64 {
        self.original.cost as f64 / self.rewritten.cost as f64
    }

    /// Predicted speedup of the factored plan over the original.
    #[must_use]
    pub fn predicted_speedup_factored(&self) -> f64 {
        self.original.cost as f64 / self.factored.cost as f64
    }

    /// Predicted speedup of factored over rewritten (`γ_C` of Figure 19).
    #[must_use]
    pub fn predicted_speedup_factored_over_rewritten(&self) -> f64 {
        self.rewritten.cost as f64 / self.factored.cost as f64
    }
}

/// The cost-based optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Optimizer {
    model: CostModel,
}

impl Optimizer {
    /// Creates an optimizer over the given cost model.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Optimizer { model }
    }

    /// The cost model in use.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Optimizes with the query's default semantics (the strictest
    /// requirement among its combinable terms: covered-by for MIN/MAX,
    /// partitioned-by once SUM/COUNT/AVG participate); queries whose terms
    /// are all holistic fall back to the original plan for all three
    /// bundles.
    pub fn optimize(&self, query: &WindowQuery) -> Result<OptimizationOutcome> {
        match query.default_semantics() {
            Some(semantics) => self.optimize_with(query, semantics),
            None => self.fallback(query),
        }
    }

    /// Optimizes under explicit semantics, validating soundness first
    /// (covered-by is rejected when any combinable term is
    /// overlap-sensitive).
    pub fn optimize_with(
        &self,
        query: &WindowQuery,
        semantics: Semantics,
    ) -> Result<OptimizationOutcome> {
        query.check_semantics(semantics)?;

        let original = original_plan(query);
        let original_cost = original.cost(&self.model)?;
        let period = self.model.period(query.windows().iter())?;

        let start = Instant::now();
        let wcg = Wcg::build_augmented(query.windows(), semantics);
        let mc = minimize(wcg, &self.model, period)?;
        let rewritten = rewrite(&mc, query);
        let rewrite_time = start.elapsed();
        // Price the *plan*, not the WCG: for a single aggregate the two
        // coincide (the rewrite preserves total cost); for a multi-term
        // list the plan additionally charges the per-function combine /
        // finalize work and the raw panes holistic terms ride.
        let rewritten_cost = rewritten.cost(&self.model)?;

        let start = Instant::now();
        let mc_f = minimize_with_factors(query.windows(), semantics, &self.model)?;
        let factored = rewrite(&mc_f, query);
        let factor_time = start.elapsed();
        let factored_cost = factored.cost(&self.model)?;

        Ok(OptimizationOutcome {
            semantics: Some(semantics),
            original: PlanBundle {
                plan: original,
                cost: original_cost,
            },
            rewritten: PlanBundle {
                plan: rewritten,
                cost: rewritten_cost,
            },
            factored: PlanBundle {
                plan: factored,
                cost: factored_cost,
            },
            rewrite_time,
            factor_time,
        })
    }

    /// Optimizes and selects a single plan per the [`PlanChoice`] policy.
    /// `semantics: None` uses the function's default semantics (with the
    /// holistic fallback); the returned bundle is the resolved plan.
    pub fn optimize_choice(
        &self,
        query: &WindowQuery,
        semantics: Option<Semantics>,
        choice: PlanChoice,
    ) -> Result<PlanBundle> {
        let outcome = match semantics {
            Some(semantics) => self.optimize_with(query, semantics)?,
            None => self.optimize(query)?,
        };
        Ok(outcome.select(choice).clone())
    }

    fn fallback(&self, query: &WindowQuery) -> Result<OptimizationOutcome> {
        let original = original_plan(query);
        let cost = original.cost(&self.model)?;
        let bundle = PlanBundle {
            plan: original,
            cost,
        };
        Ok(OptimizationOutcome {
            semantics: None,
            original: bundle.clone(),
            rewritten: bundle.clone(),
            factored: bundle,
            rewrite_time: Duration::ZERO,
            factor_time: Duration::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn query(ws: &[Window], f: AggregateFunction) -> WindowQuery {
        WindowQuery::new(WindowSet::new(ws.to_vec()).unwrap(), f)
    }

    #[test]
    fn example7_end_to_end() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Sum);
        let out = Optimizer::default().optimize(&q).unwrap();
        assert_eq!(out.semantics, Some(Semantics::PartitionedBy));
        assert_eq!(out.original.cost, 360);
        assert_eq!(out.rewritten.cost, 246);
        assert_eq!(out.factored.cost, 150);
        assert!(out.original.plan.validate().is_ok());
        assert!(out.rewritten.plan.validate().is_ok());
        assert!(out.factored.plan.validate().is_ok());
        assert!((out.predicted_speedup_factored() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn min_defaults_to_covered_by() {
        let q = query(&[w(20, 20), w(40, 20)], AggregateFunction::Min);
        let out = Optimizer::default().optimize(&q).unwrap();
        assert_eq!(out.semantics, Some(Semantics::CoveredBy));
        assert!(out.rewritten.cost <= out.original.cost);
        assert!(out.factored.cost <= out.rewritten.cost);
    }

    #[test]
    fn sum_rejects_covered_by() {
        let q = query(&[w(20, 20), w(40, 40)], AggregateFunction::Sum);
        let err = Optimizer::default()
            .optimize_with(&q, Semantics::CoveredBy)
            .unwrap_err();
        assert!(matches!(err, Error::IncompatibleSemantics { .. }));
    }

    #[test]
    fn median_falls_back_to_original() {
        let q = query(&[w(20, 20), w(40, 40)], AggregateFunction::Median);
        let out = Optimizer::default().optimize(&q).unwrap();
        assert_eq!(out.semantics, None);
        assert_eq!(out.original.cost, out.rewritten.cost);
        assert_eq!(out.original.plan, out.factored.plan);
        let err = Optimizer::default()
            .optimize_with(&q, Semantics::PartitionedBy)
            .unwrap_err();
        assert!(matches!(err, Error::HolisticFunction { .. }));
    }

    #[test]
    fn labels_flow_into_plans() {
        let labels = BTreeMap::from([
            (w(20, 20), "20 min".to_string()),
            (w(40, 40), "40 min".to_string()),
        ]);
        let q = query(&[w(20, 20), w(40, 40)], AggregateFunction::Min).with_labels(labels);
        let out = Optimizer::default().optimize(&q).unwrap();
        let s = out.factored.plan.to_trill_string();
        assert!(s.contains("'20 min'"), "{s}");
        assert!(s.contains("'40 min'"), "{s}");
    }

    #[test]
    fn with_aggregates_validates_the_list() {
        use crate::taxonomy::AggregateSpec;
        let ws = WindowSet::new(vec![w(20, 20)]).unwrap();
        assert!(matches!(
            WindowQuery::with_aggregates(ws.clone(), vec![]),
            Err(Error::EmptyAggregateList)
        ));
        let dup = vec![
            AggregateSpec::new(AggregateFunction::Min),
            AggregateSpec::new(AggregateFunction::Min),
        ];
        assert!(matches!(
            WindowQuery::with_aggregates(ws.clone(), dup),
            Err(Error::DuplicateAggregateLabel { .. })
        ));
        let ok = vec![
            AggregateSpec::new(AggregateFunction::Min),
            AggregateSpec::new(AggregateFunction::Max),
        ];
        let q = WindowQuery::with_aggregates(ws, ok).unwrap();
        assert_eq!(q.aggregates().len(), 2);
        assert_eq!(q.function(), AggregateFunction::Min);
    }

    #[test]
    fn multi_aggregate_shares_pane_maintenance_in_the_cost_model() {
        use crate::taxonomy::AggregateSpec;
        let windows = || WindowSet::new(vec![w(20, 20), w(30, 30), w(40, 40)]).unwrap();
        let specs: Vec<AggregateSpec> = [
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
            AggregateFunction::Count,
        ]
        .into_iter()
        .map(AggregateSpec::new)
        .collect();
        let multi = WindowQuery::with_aggregates(windows(), specs.clone()).unwrap();
        // MIN/MAX alone would allow covered-by; AVG/COUNT force the joint
        // default down to partitioned-by.
        assert_eq!(multi.default_semantics(), Some(Semantics::PartitionedBy));
        let out = Optimizer::default().optimize(&multi).unwrap();
        assert!(out.factored.cost <= out.rewritten.cost);
        assert!(out.rewritten.cost <= out.original.cost);

        // The shared 4-term plan must be far cheaper than 4 independent
        // single-term plans (pane maintenance once, not 4×), yet at least
        // as expensive as a single-term plan (extra slots are not free).
        let single_cost = |f: AggregateFunction| {
            let q = WindowQuery::new(windows(), f);
            Optimizer::default()
                .optimize_with(&q, Semantics::PartitionedBy)
                .unwrap()
                .factored
                .cost
        };
        let independent: Cost = specs.iter().map(|s| single_cost(s.function())).sum();
        let single = single_cost(AggregateFunction::Min);
        assert!(multi.aggregates().len() > 1);
        assert!(out.factored.cost < independent, "{}", out.factored.cost);
        assert!(out.factored.cost >= single);
    }

    #[test]
    fn holistic_rider_optimizes_with_combinable_terms() {
        use crate::taxonomy::AggregateSpec;
        let ws = WindowSet::new(vec![w(20, 20), w(30, 30), w(40, 40)]).unwrap();
        let q = WindowQuery::with_aggregates(
            ws,
            vec![
                AggregateSpec::new(AggregateFunction::Median),
                AggregateSpec::new(AggregateFunction::Min),
            ],
        )
        .unwrap();
        // MEDIAN rides raw panes; MIN still drives a covered-by rewrite.
        assert_eq!(q.default_semantics(), Some(Semantics::CoveredBy));
        let out = Optimizer::default().optimize(&q).unwrap();
        assert_eq!(out.semantics, Some(Semantics::CoveredBy));
        assert!(out.factored.plan.factor_window_count() > 0);
        // Every exposed window pays the holistic raw feed regardless of
        // topology, so sharing can stop paying off — the honest pricing
        // lets `Auto` notice. Here the extra factor window is pure
        // overhead and the rewritten plan (W40 fed from exposed W20) wins.
        assert!(out.rewritten.cost < out.original.cost);
        assert!(out.factored.cost > out.rewritten.cost);
        let resolved = out.resolve(PlanChoice::Auto);
        assert_eq!(resolved, PlanChoice::Rewritten);
    }

    #[test]
    fn costs_are_monotone_across_plans() {
        let sets = [
            vec![w(10, 10), w(20, 20), w(30, 30), w(40, 40)],
            vec![w(15, 15), w(17, 17), w(19, 19)],
            vec![w(40, 20), w(60, 20), w(80, 20), w(120, 40)],
        ];
        for windows in &sets {
            let q = query(windows, AggregateFunction::Min);
            let out = Optimizer::default().optimize(&q).unwrap();
            assert!(out.rewritten.cost <= out.original.cost);
            assert!(out.factored.cost <= out.rewritten.cost);
        }
    }
}
