//! Logical query plans over the operator algebra of Figure 2:
//! `Source`, `Multicast`, `WindowAgg`, and `Union`.
//!
//! Plans are DAGs stored as nodes with explicit input lists. The engine
//! crate compiles them to physical operators; this module also renders
//! them as Trill-style and Flink-DataStream-style expressions, the two
//! targets the paper demonstrates.

use crate::cost::{Cost, CostModel};
use crate::error::{Error, Result};
use crate::taxonomy::{AggregateFunction, AggregateSpec};
use crate::window::Window;

/// Index of a node within a [`QueryPlan`].
pub type NodeId = usize;

/// A plan operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// The input event stream.
    Source,
    /// Replicates its input to several consumers.
    Multicast,
    /// Windowed, keyed aggregation. `exposed` windows contribute results to
    /// the final union; factor windows do not (Definition 6).
    WindowAgg {
        /// The window to aggregate over.
        window: Window,
        /// Display label (e.g. `'20 min'` from the query text).
        label: String,
        /// Whether results are part of the query output.
        exposed: bool,
    },
    /// Merges all exposed window outputs into the result stream.
    Union,
}

/// A node in the plan DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// The operator at this node.
    pub op: PlanOp,
    /// Producer nodes this node consumes.
    pub inputs: Vec<NodeId>,
}

/// Predicted pane flow for one window node over a single period
/// `R = lcm(exposed ranges)` — the per-node decomposition of
/// [`QueryPlan::cost`], used by EXPLAIN to join predictions against
/// observed counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFlow {
    /// Id of the window node within the plan.
    pub node: NodeId,
    /// The node's window.
    pub window: Window,
    /// Display label from the query text.
    pub label: String,
    /// Whether the node contributes rows to the query output.
    pub exposed: bool,
    /// The window node feeding this one sub-aggregates, if any; `None`
    /// means the node ingests the raw stream.
    pub fed_by: Option<NodeId>,
    /// Predicted pane-update elements per period when raw-fed
    /// (`n·η·r`, Section III-B); zero for purely sub-aggregate-fed
    /// nodes with no holistic riders.
    pub updates: Cost,
    /// Predicted pane-combine elements per period when fed from another
    /// window (`n·M`); zero for raw-fed nodes.
    pub combines: Cost,
    /// The node's share of the plan cost, including the per-function
    /// fan-out surcharge. Summing this over all nodes reproduces
    /// [`QueryPlan::cost`] exactly.
    pub cost: Cost,
}

impl NodeFlow {
    /// Total predicted pane elements per period (updates + combines),
    /// before the fan-out surcharge.
    #[must_use]
    pub fn elements(&self) -> Cost {
        self.updates.saturating_add(self.combines)
    }
}

/// A logical plan for a multi-window aggregate query.
///
/// The plan's window/multicast/union topology describes *pane flow* and is
/// shared by every aggregate term; `aggregates` lists the terms each
/// sealed pane fans out to (one accumulator slot per term in the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    aggregates: Vec<AggregateSpec>,
    nodes: Vec<PlanNode>,
    source: NodeId,
    union: NodeId,
}

/// Incremental builder used by the rewriting module.
#[derive(Debug)]
pub struct PlanBuilder {
    aggregates: Vec<AggregateSpec>,
    nodes: Vec<PlanNode>,
    source: NodeId,
}

impl PlanBuilder {
    /// Starts a single-aggregate plan containing only the source.
    #[must_use]
    pub fn new(function: AggregateFunction) -> Self {
        PlanBuilder::with_aggregates(vec![AggregateSpec::new(function)])
    }

    /// Starts a plan over a list of aggregate terms (must be non-empty).
    #[must_use]
    pub fn with_aggregates(aggregates: Vec<AggregateSpec>) -> Self {
        assert!(!aggregates.is_empty(), "plans need at least one aggregate");
        let nodes = vec![PlanNode {
            op: PlanOp::Source,
            inputs: Vec::new(),
        }];
        PlanBuilder {
            aggregates,
            nodes,
            source: 0,
        }
    }

    /// The source node id.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Adds a multicast consuming `input`.
    pub fn multicast(&mut self, input: NodeId) -> NodeId {
        self.push(PlanNode {
            op: PlanOp::Multicast,
            inputs: vec![input],
        })
    }

    /// Adds a window aggregate consuming `input`.
    pub fn window_agg(
        &mut self,
        input: NodeId,
        window: Window,
        label: String,
        exposed: bool,
    ) -> NodeId {
        self.push(PlanNode {
            op: PlanOp::WindowAgg {
                window,
                label,
                exposed,
            },
            inputs: vec![input],
        })
    }

    /// Finishes the plan with a union over `inputs`.
    #[must_use]
    pub fn finish(mut self, union_inputs: Vec<NodeId>) -> QueryPlan {
        let union = self.push(PlanNode {
            op: PlanOp::Union,
            inputs: union_inputs,
        });
        QueryPlan {
            aggregates: self.aggregates,
            nodes: self.nodes,
            source: self.source,
            union,
        }
    }

    fn push(&mut self, node: PlanNode) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        id
    }
}

impl QueryPlan {
    /// Reassembles a plan from its raw parts (the inverse of the accessor
    /// set, used by [`crate::json`] deserialization). The reassembled plan
    /// is structurally validated.
    pub fn from_parts(
        aggregates: Vec<AggregateSpec>,
        nodes: Vec<PlanNode>,
        source: NodeId,
        union: NodeId,
    ) -> std::result::Result<Self, String> {
        if aggregates.is_empty() {
            return Err("plan has no aggregate terms".to_string());
        }
        if source >= nodes.len() || union >= nodes.len() {
            return Err("source/union id out of bounds".to_string());
        }
        for node in &nodes {
            if node.inputs.iter().any(|&i| i >= nodes.len()) {
                return Err("node input out of bounds".to_string());
            }
        }
        let plan = QueryPlan {
            aggregates,
            nodes,
            source,
            union,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// The aggregate terms the plan fans each sealed pane out to, in
    /// SELECT-list order. Never empty.
    #[must_use]
    pub fn aggregates(&self) -> &[AggregateSpec] {
        &self.aggregates
    }

    /// The first aggregate term's function — the whole plan's function for
    /// the (common) single-aggregate case.
    #[must_use]
    pub fn function(&self) -> AggregateFunction {
        self.aggregates[0].function()
    }

    /// All nodes, indexable by [`NodeId`].
    #[must_use]
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The source node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The union node.
    #[must_use]
    pub fn union(&self) -> NodeId {
        self.union
    }

    /// Ids of all window-aggregate nodes, in creation order.
    pub fn window_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, PlanOp::WindowAgg { .. }))
            .map(|(i, _)| i)
    }

    /// The window at `id`, if it is a window-aggregate node.
    #[must_use]
    pub fn window_at(&self, id: NodeId) -> Option<&Window> {
        match &self.nodes[id].op {
            PlanOp::WindowAgg { window, .. } => Some(window),
            _ => None,
        }
    }

    /// Whether the window node at `id` is exposed.
    #[must_use]
    pub fn is_exposed(&self, id: NodeId) -> bool {
        matches!(self.nodes[id].op, PlanOp::WindowAgg { exposed: true, .. })
    }

    /// The producing window node feeding window node `id`, traced through
    /// multicasts; `None` means the node reads the raw stream.
    #[must_use]
    pub fn feeding_window(&self, id: NodeId) -> Option<NodeId> {
        let mut cur = self.nodes[id].inputs[0];
        loop {
            match &self.nodes[cur].op {
                PlanOp::Source => return None,
                PlanOp::WindowAgg { .. } => return Some(cur),
                PlanOp::Multicast | PlanOp::Union => {
                    cur = self.nodes[cur].inputs[0];
                }
            }
        }
    }

    /// Window nodes that consume `id`'s output (directly or via multicast).
    #[must_use]
    pub fn consuming_windows(&self, id: NodeId) -> Vec<NodeId> {
        self.window_nodes()
            .filter(|&w| self.feeding_window(w) == Some(id))
            .collect()
    }

    /// Exposed windows, i.e. the user's query windows.
    #[must_use]
    pub fn exposed_windows(&self) -> Vec<Window> {
        self.window_nodes()
            .filter(|&i| self.is_exposed(i))
            .filter_map(|i| self.window_at(i).copied())
            .collect()
    }

    /// Number of factor (hidden) window nodes.
    #[must_use]
    pub fn factor_window_count(&self) -> usize {
        self.window_nodes().filter(|&i| !self.is_exposed(i)).count()
    }

    /// The modeled cost of the plan (Section III-B, extended to aggregate
    /// lists): the period is the lcm of the *exposed* window ranges; each
    /// window node's pane flow costs `n·η·r` when raw-fed and `n·M` when
    /// fed from another window — charged **once** regardless of how many
    /// aggregate terms share the panes — plus a per-function surcharge
    /// ([`CostModel::fan_out_cost`]) for each additional accumulator slot.
    ///
    /// Holistic terms cannot ride sub-aggregates, so on sub-aggregate-fed
    /// *exposed* nodes they are priced as a separate raw pane feed (the
    /// engine delivers them raw events there); on raw-fed nodes they share
    /// the node's pane ingestion. Factor (hidden) nodes carry combinable
    /// slots only.
    pub fn cost(&self, model: &CostModel) -> Result<Cost> {
        let exposed = self.exposed_windows();
        if exposed.is_empty() {
            return Err(Error::EmptyWindowSet);
        }
        let period = model.period(exposed.iter())?;
        let combinable = self.aggregates.iter().filter(|s| s.combinable()).count();
        let holistic = self.aggregates.len() - combinable;
        let mut total: Cost = 0;
        for id in self.window_nodes() {
            let w = self.window_at(id).expect("window node");
            let is_exposed = self.is_exposed(id);
            let holistic_here = if is_exposed { holistic } else { 0 };
            let c = match self.feeding_window(id) {
                None => {
                    // Raw-fed: every slot at this node shares one pane feed.
                    let slots = (combinable + holistic_here).max(1);
                    model.fan_out_cost(model.raw_cost(w, period)?, slots)?
                }
                Some(p) => {
                    let parent = self.window_at(p).expect("window node");
                    let shared = model
                        .fan_out_cost(model.shared_cost(w, parent, period)?, combinable.max(1))?;
                    let raw_riders = if holistic_here > 0 {
                        model.fan_out_cost(model.raw_cost(w, period)?, holistic_here)?
                    } else {
                        0
                    };
                    shared.checked_add(raw_riders).ok_or(Error::CostOverflow)?
                }
            };
            total = total.checked_add(c).ok_or(Error::CostOverflow)?;
        }
        Ok(total)
    }

    /// Per-node decomposition of [`QueryPlan::cost`]: for every window
    /// node, the predicted raw-update elements (`n·η·r`), combine
    /// elements (`n·M`), and fan-out-surcharged cost share over one
    /// period `R = lcm(exposed ranges)`. The `cost` fields sum to
    /// exactly [`QueryPlan::cost`] (same arithmetic, same overflow
    /// behavior); nodes appear in [`QueryPlan::window_nodes`] order.
    ///
    /// Holistic terms on sub-aggregate-fed exposed nodes are priced as a
    /// raw rider feed, so such nodes report both `updates` (the rider
    /// feed) and `combines` (the shared sub-aggregate feed).
    pub fn node_flows(&self, model: &CostModel) -> Result<Vec<NodeFlow>> {
        let exposed = self.exposed_windows();
        if exposed.is_empty() {
            return Err(Error::EmptyWindowSet);
        }
        let period = model.period(exposed.iter())?;
        let combinable = self.aggregates.iter().filter(|s| s.combinable()).count();
        let holistic = self.aggregates.len() - combinable;
        let mut flows = Vec::new();
        for id in self.window_nodes() {
            let w = self.window_at(id).expect("window node");
            let is_exposed = self.is_exposed(id);
            let label = match &self.nodes[id].op {
                PlanOp::WindowAgg { label, .. } => label.clone(),
                _ => unreachable!("window node"),
            };
            let holistic_here = if is_exposed { holistic } else { 0 };
            let fed_by = self.feeding_window(id);
            let (updates, combines, cost) = match fed_by {
                None => {
                    let raw = model.raw_cost(w, period)?;
                    let slots = (combinable + holistic_here).max(1);
                    (raw, 0, model.fan_out_cost(raw, slots)?)
                }
                Some(p) => {
                    let parent = self.window_at(p).expect("window node");
                    let shared = model.shared_cost(w, parent, period)?;
                    let shared_cost = model.fan_out_cost(shared, combinable.max(1))?;
                    let (riders, rider_cost) = if holistic_here > 0 {
                        let raw = model.raw_cost(w, period)?;
                        (raw, model.fan_out_cost(raw, holistic_here)?)
                    } else {
                        (0, 0)
                    };
                    let cost = shared_cost
                        .checked_add(rider_cost)
                        .ok_or(Error::CostOverflow)?;
                    (riders, shared, cost)
                }
            };
            flows.push(NodeFlow {
                node: id,
                window: *w,
                label,
                exposed: is_exposed,
                fed_by,
                updates,
                combines,
                cost,
            });
        }
        Ok(flows)
    }

    /// Structural validation: shapes the engine relies on. Returns a
    /// human-readable description of the first violation.
    pub fn validate(&self) -> std::result::Result<(), String> {
        let mut source_count = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            match &n.op {
                PlanOp::Source => {
                    source_count += 1;
                    if !n.inputs.is_empty() {
                        return Err(format!("source {i} has inputs"));
                    }
                }
                PlanOp::Multicast => {
                    if n.inputs.len() != 1 {
                        return Err(format!("multicast {i} must have exactly one input"));
                    }
                }
                PlanOp::WindowAgg { .. } => {
                    if n.inputs.len() != 1 {
                        return Err(format!("window agg {i} must have exactly one input"));
                    }
                }
                PlanOp::Union => {
                    if i != self.union {
                        return Err(format!("unexpected extra union at {i}"));
                    }
                }
            }
            for &input in &n.inputs {
                if input >= i {
                    return Err(format!("node {i} reads from non-earlier node {input}"));
                }
            }
        }
        if source_count != 1 {
            return Err(format!("expected one source, found {source_count}"));
        }
        // Union must collect exactly the exposed windows' outputs.
        let mut union_feeds: Vec<NodeId> = self.nodes[self.union]
            .inputs
            .iter()
            .map(|&i| self.resolve_window(i))
            .collect::<std::result::Result<_, String>>()?;
        union_feeds.sort_unstable();
        let mut exposed: Vec<NodeId> = self
            .window_nodes()
            .filter(|&i| self.is_exposed(i))
            .collect();
        exposed.sort_unstable();
        if union_feeds != exposed {
            return Err("union inputs do not match exposed windows".to_string());
        }
        // Every hidden window must have at least one consumer.
        for id in self.window_nodes() {
            if !self.is_exposed(id) && self.consuming_windows(id).is_empty() {
                return Err(format!("factor window node {id} has no consumers"));
            }
        }
        Ok(())
    }

    fn resolve_window(&self, mut id: NodeId) -> std::result::Result<NodeId, String> {
        loop {
            match &self.nodes[id].op {
                PlanOp::WindowAgg { .. } => return Ok(id),
                PlanOp::Multicast => id = self.nodes[id].inputs[0],
                other => return Err(format!("union input resolves to {other:?}")),
            }
        }
    }

    fn window_expr(w: &Window) -> String {
        if w.is_tumbling() {
            format!("Tumbling({})", w.range())
        } else {
            format!("Hopping({}, {})", w.range(), w.slide())
        }
    }

    fn agg_body(function: AggregateFunction, column: &str) -> String {
        match function {
            AggregateFunction::Min => format!("w.Min(e => e.{column})"),
            AggregateFunction::Max => format!("w.Max(e => e.{column})"),
            AggregateFunction::Sum => format!("w.Sum(e => e.{column})"),
            AggregateFunction::Count => "w.Count()".to_string(),
            AggregateFunction::Avg => format!("w.Average(e => e.{column})"),
            AggregateFunction::Median => format!("w.Median(e => e.{column})"),
        }
    }

    /// A label as a valid anonymous-type field name: `COUNT(*)` →
    /// `COUNT_star`, other non-identifier characters collapse to `_`.
    fn field_name(label: &str) -> String {
        let mut out: String = label
            .replace("(*)", "_star")
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        while out.ends_with('_') {
            out.pop();
        }
        if out.is_empty() {
            out.push_str("agg");
        }
        out
    }

    fn agg_expr(&self) -> String {
        match self.aggregates.as_slice() {
            [single] => format!(
                "w => {}",
                Self::agg_body(single.function(), single.column())
            ),
            many => {
                let fields = many
                    .iter()
                    .map(|s| {
                        format!(
                            "{} = {}",
                            Self::field_name(s.label()),
                            Self::agg_body(s.function(), s.column())
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("w => new {{ {fields} }}")
            }
        }
    }

    /// Function names of all aggregate terms, comma-joined (`MIN,MAX`).
    fn function_names(&self) -> String {
        self.aggregates
            .iter()
            .map(|s| s.function().name())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Renders the plan as a Trill-style expression (Figure 2).
    #[must_use]
    pub fn to_trill_string(&self) -> String {
        let roots: Vec<NodeId> = self
            .window_nodes()
            .filter(|&i| self.feeding_window(i).is_none())
            .collect();
        match roots.as_slice() {
            [single] => format!("Input.{}", self.render_trill(*single, 1)),
            many => {
                let body = many
                    .iter()
                    .enumerate()
                    .map(|(i, &root)| {
                        let expr = format!("s0.{}", self.render_trill(root, 1));
                        if i == 0 {
                            expr
                        } else {
                            format!(".Union({expr})")
                        }
                    })
                    .collect::<String>();
                format!("Input.Multicast(s0 => {body})")
            }
        }
    }

    fn render_trill(&self, id: NodeId, depth: usize) -> String {
        let (window, label, exposed) = match &self.nodes[id].op {
            PlanOp::WindowAgg {
                window,
                label,
                exposed,
            } => (window, label, *exposed),
            _ => unreachable!("render_trill on non-window node"),
        };
        let mut expr = format!(
            "{}.GroupAggregate('{}', {})",
            Self::window_expr(window),
            label,
            self.agg_expr()
        );
        let children = self.consuming_windows(id);
        if children.is_empty() {
            return expr;
        }
        let var = format!("s{depth}");
        let mut body = String::new();
        if exposed {
            // The window's own results flow on, with children unioned in.
            body.push_str(&var);
            for c in &children {
                body.push_str(&format!(
                    ".Union({var}.{})",
                    self.render_trill(*c, depth + 1)
                ));
            }
        } else {
            for (i, c) in children.iter().enumerate() {
                let child = format!("{var}.{}", self.render_trill(*c, depth + 1));
                if i == 0 {
                    body.push_str(&child);
                } else {
                    body.push_str(&format!(".Union({child})"));
                }
            }
        }
        expr.push_str(&format!(".Multicast({var} => {body})"));
        expr
    }

    /// Renders the plan as Flink DataStream-style pseudo-code (Section V-F).
    #[must_use]
    pub fn to_flink_string(&self) -> String {
        let mut out = String::from("DataStream<Event> input = env.addSource(source);\n");
        let mut names: Vec<Option<String>> = vec![None; self.nodes.len()];
        for id in self.window_nodes() {
            let (window, exposed) = match &self.nodes[id].op {
                PlanOp::WindowAgg {
                    window, exposed, ..
                } => (window, *exposed),
                _ => unreachable!(),
            };
            let name = format!("w{}_{}", window.range(), window.slide());
            let feed = match self.feeding_window(id) {
                None => "input".to_string(),
                Some(p) => names[p].clone().expect("plans are topologically ordered"),
            };
            let assigner = if window.is_tumbling() {
                format!(
                    "TumblingEventTimeWindows.of(Time.seconds({}))",
                    window.range()
                )
            } else {
                format!(
                    "SlidingEventTimeWindows.of(Time.seconds({}), Time.seconds({}))",
                    window.range(),
                    window.slide()
                )
            };
            let agg = if self.feeding_window(id).is_none() {
                format!("new {}Aggregate()", self.function_names().to_lowercase())
            } else {
                format!("new {}Combine()", self.function_names().to_lowercase())
            };
            let vis = if exposed {
                ""
            } else {
                " // factor window (not exposed)"
            };
            out.push_str(&format!(
                "DataStream<Agg> {name} = {feed}.keyBy(e -> e.key).window({assigner}).aggregate({agg});{vis}\n"
            ));
            names[id] = Some(name);
        }
        let exposed: Vec<String> = self
            .window_nodes()
            .filter(|&i| self.is_exposed(i))
            .map(|i| names[i].clone().expect("named above"))
            .collect();
        match exposed.as_slice() {
            [] => {}
            [first] => {
                out.push_str(&format!("DataStream<Agg> result = {first};\n"));
            }
            [first, rest @ ..] => {
                out.push_str(&format!(
                    "DataStream<Agg> result = {first}.union({});\n",
                    rest.join(", ")
                ));
            }
        }
        out
    }

    /// Renders the plan DAG in Graphviz dot format.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph plan {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let (shape, label) = match &n.op {
                PlanOp::Source => ("cds", "Input".to_string()),
                PlanOp::Multicast => ("point", String::new()),
                PlanOp::WindowAgg {
                    window, exposed, ..
                } => (
                    if *exposed { "box" } else { "box, style=dashed" },
                    format!("{} {}", self.function_names(), window),
                ),
                PlanOp::Union => ("invtriangle", "Union".to_string()),
            };
            out.push_str(&format!("  n{i} [shape={shape}, label=\"{label}\"];\n"));
            for &input in &n.inputs {
                out.push_str(&format!("  n{input} -> n{i};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn chain_plan() -> QueryPlan {
        // Source → W20 → {Union, W40 → Union}; W30 from source too.
        let mut b = PlanBuilder::new(AggregateFunction::Min);
        let src = b.source();
        let m0 = b.multicast(src);
        let w20 = b.window_agg(m0, w(20, 20), "20".to_string(), true);
        let m1 = b.multicast(w20);
        let w40 = b.window_agg(m1, w(40, 40), "40".to_string(), true);
        let w30 = b.window_agg(m0, w(30, 30), "30".to_string(), true);
        b.finish(vec![m1, w40, w30])
    }

    #[test]
    fn feeding_and_consuming() {
        let p = chain_plan();
        let ids: Vec<NodeId> = p.window_nodes().collect();
        let (w20, w40, w30) = (ids[0], ids[1], ids[2]);
        assert_eq!(p.feeding_window(w20), None);
        assert_eq!(p.feeding_window(w30), None);
        assert_eq!(p.feeding_window(w40), Some(w20));
        assert_eq!(p.consuming_windows(w20), vec![w40]);
        assert!(p.consuming_windows(w40).is_empty());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn plan_cost_matches_model() {
        // W20 raw: n=6 · 20 = 120; W40 via W20: 3·2 = 6; W30 raw: 4·30=120.
        let p = chain_plan();
        assert_eq!(p.cost(&CostModel::default()).unwrap(), 246);
    }

    #[test]
    fn node_flows_decompose_cost_exactly() {
        let p = chain_plan();
        let model = CostModel::default();
        let flows = p.node_flows(&model).unwrap();
        let ids: Vec<NodeId> = p.window_nodes().collect();
        assert_eq!(
            flows.iter().map(|f| f.node).collect::<Vec<_>>(),
            ids,
            "flows follow window_nodes order"
        );
        let total: Cost = flows.iter().map(|f| f.cost).sum();
        assert_eq!(total, p.cost(&model).unwrap());
        // W20 raw-fed: 6 panes · 20 elements; W40 fed by W20: 3 panes · 2
        // sub-aggregates; W30 raw-fed: 4 panes · 30 elements.
        assert_eq!((flows[0].updates, flows[0].combines), (120, 0));
        assert_eq!((flows[1].updates, flows[1].combines), (0, 6));
        assert_eq!(flows[1].fed_by, Some(ids[0]));
        assert_eq!((flows[2].updates, flows[2].combines), (120, 0));
        assert_eq!(flows[2].elements(), 120);
    }

    #[test]
    fn trill_rendering_shapes() {
        let p = chain_plan();
        let s = p.to_trill_string();
        assert!(s.starts_with("Input.Multicast(s0 => "), "{s}");
        assert!(s.contains("Tumbling(20).GroupAggregate('20'"), "{s}");
        assert!(
            s.contains(".Multicast(s1 => s1.Union(s1.Tumbling(40)"),
            "{s}"
        );
        assert!(s.contains(".Union(s0.Tumbling(30)"), "{s}");
    }

    #[test]
    fn flink_rendering_mentions_all_windows() {
        let p = chain_plan();
        let s = p.to_flink_string();
        assert!(s.contains("w20_20 = input.keyBy"), "{s}");
        assert!(s.contains("w40_40 = w20_20.keyBy"), "{s}");
        assert!(s.contains("result = w20_20.union(w40_40, w30_30)"), "{s}");
    }

    #[test]
    fn validate_rejects_unconsumed_factor() {
        let mut b = PlanBuilder::new(AggregateFunction::Min);
        let src = b.source();
        let f = b.window_agg(src, w(10, 10), "f".to_string(), false);
        let _ = f;
        let w20 = b.window_agg(src, w(20, 20), "20".to_string(), true);
        let p = b.finish(vec![w20]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn multi_aggregate_rendering_uses_columns_and_sanitized_labels() {
        use crate::taxonomy::AggregateSpec;
        let mut b = PlanBuilder::with_aggregates(vec![
            AggregateSpec::over_column(AggregateFunction::Min, "T").with_label("Low"),
            AggregateSpec::over_column(AggregateFunction::Count, "*"),
        ]);
        let src = b.source();
        let w20 = b.window_agg(src, w(20, 20), "20".to_string(), true);
        let p = b.finish(vec![w20]);
        let s = p.to_trill_string();
        assert!(s.contains("Low = w.Min(e => e.T)"), "{s}");
        assert!(s.contains("COUNT_star = w.Count()"), "{s}");
        // Single-term plans keep the plain lambda, over the term's column.
        let mut b = PlanBuilder::with_aggregates(vec![AggregateSpec::over_column(
            AggregateFunction::Max,
            "T",
        )]);
        let src = b.source();
        let w20 = b.window_agg(src, w(20, 20), "20".to_string(), true);
        let p = b.finish(vec![w20]);
        assert!(
            p.to_trill_string().contains("w => w.Max(e => e.T)"),
            "{}",
            p.to_trill_string()
        );
        let dot = p.to_dot();
        assert!(dot.contains("MAX W(20,20)"), "{dot}");
    }

    #[test]
    fn dot_rendering_is_well_formed() {
        let p = chain_plan();
        let dot = p.to_dot();
        assert!(dot.starts_with("digraph plan {"));
        assert!(dot.contains("MIN W(40,40)"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
