//! Dependency-free JSON encoding/decoding for optimizer artifacts.
//!
//! Deployments persist optimizer decisions — e.g. ship a rewritten
//! [`QueryPlan`] to a fleet of stream processors — so windows, window
//! sets, and whole plans round-trip through a small, self-contained JSON
//! codec. The encoding mirrors what a derive-based serializer would
//! produce: structs as objects, unit enum variants as strings, and data
//! variants as single-key objects.

use crate::plan::{NodeId, PlanNode, PlanOp, QueryPlan};
use crate::taxonomy::{AggregateFunction, AggregateSpec};
use crate::window::{Window, WindowSet};
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Numbers; all artifact fields are integers, kept exact in `i128`.
    Number(i128),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn expect_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            JsonValue::Number(n) => u64::try_from(*n).map_err(|_| JsonError::shape(what, "a u64")),
            _ => Err(JsonError::shape(what, "a number")),
        }
    }

    fn expect_bool(&self, what: &str) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(JsonError::shape(what, "a bool")),
        }
    }

    fn expect_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err(JsonError::shape(what, "a string")),
        }
    }

    fn expect_array(&self, what: &str) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err(JsonError::shape(what, "an array")),
        }
    }

    fn field<'a>(&'a self, key: &str) -> Result<&'a JsonValue, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            message: format!("missing field `{key}`"),
        })
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => write!(f, "{n}"),
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(fields) => {
                write!(f, "{{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A JSON decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn shape(what: &str, expected: &str) -> Self {
        JsonError {
            message: format!("{what}: expected {expected}"),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError {
            message: format!("trailing input at byte {}", p.pos),
        });
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| JsonError {
            message: "unexpected end of input".to_string(),
        })
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError {
                message: format!("expected `{}` at byte {}", b as char, self.pos),
            })
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(JsonError {
                message: format!("unexpected byte `{}` at {}", other as char, self.pos),
            }),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError {
                message: format!("expected `{text}` at byte {}", self.pos),
            })
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i128>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError {
                message: format!("invalid number `{text}`"),
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(JsonError {
                    message: "unterminated string".to_string(),
                });
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(JsonError {
                            message: "dangling escape".to_string(),
                        });
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex_escape()?;
                            // UTF-16 surrogate pair: standard encoders
                            // (ensure_ascii-style) emit non-BMP characters
                            // as \uD800-\uDBFF followed by \uDC00-\uDFFF.
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(JsonError {
                                        message: "lone high surrogate".to_string(),
                                    });
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(JsonError {
                                        message: format!("invalid low surrogate {low:#06x}"),
                                    });
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(char::from_u32(code).ok_or_else(|| JsonError {
                                message: format!("invalid code point {code}"),
                            })?);
                        }
                        other => {
                            return Err(JsonError {
                                message: format!("unknown escape `\\{}`", other as char),
                            })
                        }
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through.
                _ => {
                    let start = self.pos - 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                        |_| JsonError {
                            message: "invalid utf-8 in string".to_string(),
                        },
                    )?);
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (cursor past the `\u`).
    fn hex_escape(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| JsonError {
                message: "truncated \\u escape".to_string(),
            })?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
            message: format!("invalid \\u escape `{hex}`"),
        })?;
        self.pos += 4;
        Ok(code)
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => {
                    return Err(JsonError {
                        message: format!("expected `,` or `}}`, found `{}`", other as char),
                    })
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(JsonError {
                        message: format!("expected `,` or `]`, found `{}`", other as char),
                    })
                }
            }
        }
    }
}

/// Types encodable as JSON.
pub trait ToJson {
    /// The JSON value representation.
    fn to_json_value(&self) -> JsonValue;

    /// The compact JSON text representation.
    fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

/// Types decodable from JSON.
pub trait FromJson: Sized {
    /// Decodes from a parsed JSON value.
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError>;

    /// Decodes from JSON text.
    fn from_json(text: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&parse(text)?)
    }
}

impl ToJson for Window {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "range".to_string(),
                JsonValue::Number(i128::from(self.range())),
            ),
            (
                "slide".to_string(),
                JsonValue::Number(i128::from(self.slide())),
            ),
        ])
    }
}

impl FromJson for Window {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let range = value.field("range")?.expect_u64("range")?;
        let slide = value.field("slide")?.expect_u64("slide")?;
        Window::new(range, slide).map_err(|e| JsonError {
            message: e.to_string(),
        })
    }
}

impl ToJson for WindowSet {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![(
            "windows".to_string(),
            JsonValue::Array(self.iter().map(ToJson::to_json_value).collect()),
        )])
    }
}

impl FromJson for WindowSet {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let windows = value
            .field("windows")?
            .expect_array("windows")?
            .iter()
            .map(Window::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        WindowSet::new(windows).map_err(|e| JsonError {
            message: e.to_string(),
        })
    }
}

impl ToJson for AggregateFunction {
    fn to_json_value(&self) -> JsonValue {
        let tag = match self {
            AggregateFunction::Min => "Min",
            AggregateFunction::Max => "Max",
            AggregateFunction::Sum => "Sum",
            AggregateFunction::Count => "Count",
            AggregateFunction::Avg => "Avg",
            AggregateFunction::Median => "Median",
        };
        JsonValue::String(tag.to_string())
    }
}

impl FromJson for AggregateFunction {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let tag = value.expect_str("aggregate function")?;
        AggregateFunction::parse(tag).ok_or_else(|| JsonError {
            message: format!("unknown aggregate `{tag}`"),
        })
    }
}

impl ToJson for AggregateSpec {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("function".to_string(), self.function().to_json_value()),
            (
                "column".to_string(),
                JsonValue::String(self.column().to_string()),
            ),
            (
                "label".to_string(),
                JsonValue::String(self.label().to_string()),
            ),
        ])
    }
}

impl FromJson for AggregateSpec {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let function = AggregateFunction::from_json_value(value.field("function")?)?;
        let column = value.field("column")?.expect_str("column")?;
        let label = value.field("label")?.expect_str("label")?;
        Ok(AggregateSpec::over_column(function, column).with_label(label))
    }
}

impl ToJson for PlanOp {
    fn to_json_value(&self) -> JsonValue {
        match self {
            PlanOp::Source => JsonValue::String("Source".to_string()),
            PlanOp::Multicast => JsonValue::String("Multicast".to_string()),
            PlanOp::Union => JsonValue::String("Union".to_string()),
            PlanOp::WindowAgg {
                window,
                label,
                exposed,
            } => JsonValue::Object(vec![(
                "WindowAgg".to_string(),
                JsonValue::Object(vec![
                    ("window".to_string(), window.to_json_value()),
                    ("label".to_string(), JsonValue::String(label.clone())),
                    ("exposed".to_string(), JsonValue::Bool(*exposed)),
                ]),
            )]),
        }
    }
}

impl FromJson for PlanOp {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        match value {
            JsonValue::String(tag) => match tag.as_str() {
                "Source" => Ok(PlanOp::Source),
                "Multicast" => Ok(PlanOp::Multicast),
                "Union" => Ok(PlanOp::Union),
                other => Err(JsonError {
                    message: format!("unknown plan op `{other}`"),
                }),
            },
            JsonValue::Object(_) => {
                let body = value.field("WindowAgg")?;
                Ok(PlanOp::WindowAgg {
                    window: Window::from_json_value(body.field("window")?)?,
                    label: body.field("label")?.expect_str("label")?.to_string(),
                    exposed: body.field("exposed")?.expect_bool("exposed")?,
                })
            }
            _ => Err(JsonError::shape("plan op", "a string or object")),
        }
    }
}

impl ToJson for PlanNode {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("op".to_string(), self.op.to_json_value()),
            (
                "inputs".to_string(),
                JsonValue::Array(
                    self.inputs
                        .iter()
                        .map(|&i| JsonValue::Number(i as i128))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for PlanNode {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let op = PlanOp::from_json_value(value.field("op")?)?;
        let inputs = value
            .field("inputs")?
            .expect_array("inputs")?
            .iter()
            .map(|v| v.expect_u64("input id").map(|n| n as NodeId))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PlanNode { op, inputs })
    }
}

impl ToJson for QueryPlan {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            // `function` is kept for forward/backward readability of the
            // documents; `aggregates` is authoritative on decode.
            ("function".to_string(), self.function().to_json_value()),
            (
                "aggregates".to_string(),
                JsonValue::Array(
                    self.aggregates()
                        .iter()
                        .map(ToJson::to_json_value)
                        .collect(),
                ),
            ),
            (
                "nodes".to_string(),
                JsonValue::Array(self.nodes().iter().map(ToJson::to_json_value).collect()),
            ),
            (
                "source".to_string(),
                JsonValue::Number(self.source() as i128),
            ),
            ("union".to_string(), JsonValue::Number(self.union() as i128)),
        ])
    }
}

impl FromJson for QueryPlan {
    fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        // Documents written before multi-aggregate support carry only a
        // `function` tag; treat that as a single-term list.
        let aggregates = match value.get("aggregates") {
            Some(list) => list
                .expect_array("aggregates")?
                .iter()
                .map(AggregateSpec::from_json_value)
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![AggregateSpec::new(AggregateFunction::from_json_value(
                value.field("function")?,
            )?)],
        };
        let nodes = value
            .field("nodes")?
            .expect_array("nodes")?
            .iter()
            .map(PlanNode::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let source = value.field("source")?.expect_u64("source")? as NodeId;
        let union = value.field("union")?.expect_u64("union")? as NodeId;
        QueryPlan::from_parts(aggregates, nodes, source, union)
            .map_err(|message| JsonError { message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-12",
            "\"hi\\n\\\"there\\\"\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a":[1,2,{"b":true}],"c":"x y"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", ""] {
            assert!(parse(text).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn unicode_strings_survive() {
        let v = JsonValue::String("γ_C ≥ 1 — ok".to_string());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(
            parse("\"\\u0041\\u03b3\"").unwrap(),
            JsonValue::String("Aγ".to_string())
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        // ensure_ascii-style encoders emit non-BMP chars as UTF-16 pairs.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\ud83dx\"").is_err(), "high surrogate + junk");
        assert!(
            parse("\"\\ud83d\\u0041\"").is_err(),
            "invalid low surrogate"
        );
        assert!(parse("\"\\udc00\"").is_err(), "lone low surrogate");
    }
}
