//! The window model: ranges, slides, and the interval representation.
//!
//! A window `W⟨r,s⟩` fires every `s` time units and aggregates the last `r`
//! time units (Section II-A of the paper). Its *interval representation* is
//! the sequence of half-open intervals `[m·s, m·s + r)` for `m ≥ 0`.

use crate::error::{Error, Result};
use std::fmt;

/// A half-open time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive start of the interval.
    pub start: u64,
    /// Exclusive end of the interval.
    pub end: u64,
}

impl Interval {
    /// Creates `[start, end)`. Panics if `end <= start` (programmer error).
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end > start, "interval must be non-empty: [{start}, {end})");
        Interval { start, end }
    }

    /// Length of the interval.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Always false; intervals are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `t` falls inside `[start, end)`.
    #[must_use]
    pub fn contains(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether `other` is fully contained in `self`.
    #[must_use]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two intervals share at least one time point.
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A window `W⟨r,s⟩` with range `r` and slide `s`.
///
/// Invariants enforced at construction (paper Section II-A and III-B1):
/// `0 < s ≤ r` and `s | r` (the latter makes every recurrence count an
/// integer, an assumption the paper states explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Window {
    range: u64,
    slide: u64,
}

impl Window {
    /// Creates a window with the given range and slide.
    pub fn new(range: u64, slide: u64) -> Result<Self> {
        if slide == 0 {
            return Err(Error::InvalidWindow {
                range,
                slide,
                reason: "slide must be positive",
            });
        }
        if slide > range {
            return Err(Error::InvalidWindow {
                range,
                slide,
                reason: "slide must not exceed range",
            });
        }
        if !range.is_multiple_of(slide) {
            return Err(Error::InvalidWindow {
                range,
                slide,
                reason: "range must be a multiple of slide",
            });
        }
        Ok(Window { range, slide })
    }

    /// Creates a tumbling window (`s = r`).
    pub fn tumbling(range: u64) -> Result<Self> {
        Window::new(range, range)
    }

    /// Creates a hopping window; errors unless `s < r`.
    pub fn hopping(range: u64, slide: u64) -> Result<Self> {
        if slide >= range {
            return Err(Error::InvalidWindow {
                range,
                slide,
                reason: "hopping window requires slide < range",
            });
        }
        Window::new(range, slide)
    }

    /// The virtual root window `S⟨1,1⟩` used to augment the WCG.
    #[must_use]
    pub fn unit() -> Self {
        Window { range: 1, slide: 1 }
    }

    /// The window's range `r` (duration).
    #[must_use]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The window's slide `s` (gap between consecutive firings).
    #[must_use]
    pub fn slide(&self) -> u64 {
        self.slide
    }

    /// Whether `s = r`.
    #[must_use]
    pub fn is_tumbling(&self) -> bool {
        self.slide == self.range
    }

    /// Whether `s < r`.
    #[must_use]
    pub fn is_hopping(&self) -> bool {
        self.slide < self.range
    }

    /// `k = r/s`, the number of instances any time point belongs to
    /// (once the stream has warmed past the first `r` units).
    #[must_use]
    pub fn instances_per_point(&self) -> u64 {
        self.range / self.slide
    }

    /// The `m`-th interval `[m·s, m·s + r)` of the interval representation.
    #[must_use]
    pub fn interval(&self, m: u64) -> Interval {
        Interval::new(m * self.slide, m * self.slide + self.range)
    }

    /// Indices `m` of all intervals containing time `t`:
    /// `m·s ≤ t < m·s + r`, i.e. `m ∈ [⌈(t−r+1)/s⌉, ⌊t/s⌋]` clipped at 0.
    /// Returned as an inclusive index range.
    #[must_use]
    pub fn instances_containing(&self, t: u64) -> std::ops::RangeInclusive<u64> {
        let hi = t / self.slide;
        let lo = if t + 1 > self.range {
            (t + 1 - self.range).div_ceil(self.slide)
        } else {
            0
        };
        lo..=hi
    }

    /// Indices `m` of all intervals of `self` that fully contain `[u, v)`:
    /// `m·s ≤ u` and `v ≤ m·s + r`. Empty range when `v − u > r`.
    #[must_use]
    pub fn instances_containing_interval(&self, iv: &Interval) -> std::ops::RangeInclusive<u64> {
        if iv.len() > self.range {
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0; // canonical empty inclusive range
        }
        let hi = iv.start / self.slide;
        let lo = if iv.end > self.range {
            (iv.end - self.range).div_ceil(self.slide)
        } else {
            0
        };
        lo..=hi
    }

    /// Indices `m` of all intervals of `self` fully contained in `[u, v)`:
    /// `u ≤ m·s` and `m·s + r ≤ v`. Empty when the interval is too short.
    #[must_use]
    pub fn instances_within_interval(&self, iv: &Interval) -> std::ops::RangeInclusive<u64> {
        if iv.len() < self.range {
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        let lo = iv.start.div_ceil(self.slide);
        let hi = (iv.end - self.range) / self.slide;
        if lo > hi {
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        lo..=hi
    }

    /// Recurrence count within a period `R` (Equation 1):
    /// `n = 1 + (R − r)/s`, the number of instances whose lifetime falls in
    /// a period of length `R`. Requires `r ≤ R` and `s | (R − r)`.
    pub fn recurrence_count(&self, period: u128) -> Result<u128> {
        let r = u128::from(self.range);
        let s = u128::from(self.slide);
        if period < r {
            return Err(Error::CostOverflow);
        }
        debug_assert_eq!(
            (period - r) % s,
            0,
            "recurrence count is fractional for W({},{}) at R={period}",
            self.range,
            self.slide
        );
        Ok(1 + (period - r) / s)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W({},{})", self.range, self.slide)
    }
}

/// A duplicate-free, deterministically ordered set of windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSet {
    windows: Vec<Window>,
}

impl WindowSet {
    /// Builds a window set; duplicates are removed, order is normalized
    /// (ascending by `(range, slide)`). Errors on an empty input.
    pub fn new(mut windows: Vec<Window>) -> Result<Self> {
        windows.sort_unstable();
        windows.dedup();
        if windows.is_empty() {
            return Err(Error::EmptyWindowSet);
        }
        Ok(WindowSet { windows })
    }

    /// The windows in normalized order.
    #[must_use]
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Number of windows in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the set is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Whether the set contains `w`.
    #[must_use]
    pub fn contains(&self, w: &Window) -> bool {
        self.windows.binary_search(w).is_ok()
    }

    /// Iterates over the windows.
    pub fn iter(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }
}

impl fmt::Display for WindowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_slide() {
        assert!(matches!(
            Window::new(10, 0),
            Err(Error::InvalidWindow { .. })
        ));
    }

    #[test]
    fn rejects_slide_larger_than_range() {
        assert!(matches!(
            Window::new(10, 20),
            Err(Error::InvalidWindow { .. })
        ));
    }

    #[test]
    fn rejects_fractional_recurrence() {
        // r must be a multiple of s (paper Section III-B1).
        assert!(matches!(
            Window::new(10, 4),
            Err(Error::InvalidWindow { .. })
        ));
    }

    #[test]
    fn tumbling_and_hopping_classification() {
        let t = Window::tumbling(10).unwrap();
        assert!(t.is_tumbling());
        assert!(!t.is_hopping());
        let h = Window::hopping(10, 2).unwrap();
        assert!(h.is_hopping());
        assert!(!h.is_tumbling());
        assert!(Window::hopping(10, 10).is_err());
    }

    #[test]
    fn interval_representation_matches_paper_example() {
        // W(10, 2) has intervals {[0,10), [2,12), ...} (Section II-A1).
        let w = Window::hopping(10, 2).unwrap();
        assert_eq!(w.interval(0), Interval::new(0, 10));
        assert_eq!(w.interval(1), Interval::new(2, 12));
        assert_eq!(w.interval(5), Interval::new(10, 20));
    }

    #[test]
    fn instances_containing_point() {
        let w = Window::hopping(10, 2).unwrap();
        // t = 0 only belongs to [0, 10).
        assert_eq!(w.instances_containing(0), 0..=0);
        // t = 11 belongs to [2,12), [4,14), [6,16), [8,18), [10,20).
        assert_eq!(w.instances_containing(11), 1..=5);
        let t = Window::tumbling(20).unwrap();
        assert_eq!(t.instances_containing(19), 0..=0);
        assert_eq!(t.instances_containing(20), 1..=1);
    }

    #[test]
    fn instances_containing_interval() {
        let w = Window::tumbling(40).unwrap();
        // [20, 40) fits only inside [0, 40).
        assert_eq!(
            w.instances_containing_interval(&Interval::new(20, 40)),
            0..=0
        );
        // [40, 60) fits only inside [40, 80).
        assert_eq!(
            w.instances_containing_interval(&Interval::new(40, 60)),
            1..=1
        );
        // An interval longer than the range fits nowhere.
        let r = w.instances_containing_interval(&Interval::new(0, 80));
        assert!(r.is_empty());
        // A hopping parent: [4, 8) inside W(8, 2) instances starting at 0, 2, 4.
        let h = Window::hopping(8, 2).unwrap();
        assert_eq!(h.instances_containing_interval(&Interval::new(4, 8)), 0..=2);
    }

    #[test]
    fn recurrence_count_formula() {
        // Example 6: R = 120; tumbling windows have n = R / r.
        for (r, n) in [(10u64, 12u128), (20, 6), (30, 4), (40, 3)] {
            let w = Window::tumbling(r).unwrap();
            assert_eq!(w.recurrence_count(120).unwrap(), n);
        }
        // Hopping: W(10, 2) in R = 20: n = 1 + (20-10)/2 = 6.
        let w = Window::hopping(10, 2).unwrap();
        assert_eq!(w.recurrence_count(20).unwrap(), 6);
    }

    #[test]
    fn window_set_normalizes() {
        let a = Window::tumbling(20).unwrap();
        let b = Window::tumbling(10).unwrap();
        let ws = WindowSet::new(vec![a, b, a]).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.windows()[0], b);
        assert!(ws.contains(&a));
        assert!(WindowSet::new(vec![]).is_err());
    }

    #[test]
    fn interval_predicates() {
        let i = Interval::new(2, 10);
        assert!(i.contains(2));
        assert!(!i.contains(10));
        assert_eq!(i.len(), 8);
        assert!(i.contains_interval(&Interval::new(2, 10)));
        assert!(i.contains_interval(&Interval::new(4, 6)));
        assert!(!i.contains_interval(&Interval::new(0, 6)));
        assert!(i.overlaps(&Interval::new(9, 12)));
        assert!(!i.overlaps(&Interval::new(10, 12)));
    }
}
