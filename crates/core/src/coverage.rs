//! Window coverage and partitioning (Section II of the paper).
//!
//! `W1 ≤ W2` (read: *W1 is covered by W2*) means every interval of `W1` can
//! be assembled from intervals of `W2`, so an aggregate over `W1` can be
//! computed from `W2`'s sub-aggregates. *Partitioning* is the special case
//! where the covering intervals are disjoint, which is what non
//! overlap-tolerant functions (SUM, COUNT, AVG) require.

use crate::window::{Interval, Window};

/// Which coverage relation the optimizer may exploit for a given aggregate
/// function (Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// General coverage (Definition 1); sound only for functions that stay
    /// distributive under overlapping partitions (MIN, MAX — Theorem 6).
    CoveredBy,
    /// Partitioning (Definition 5); sound for all distributive and
    /// algebraic functions (SUM, COUNT, AVG, MIN, MAX).
    PartitionedBy,
}

impl Semantics {
    /// Human-readable name as used in the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Semantics::CoveredBy => "covered-by",
            Semantics::PartitionedBy => "partitioned-by",
        }
    }

    /// Whether `w1 ≤ w2` under these semantics (strict form: `w1 ≠ w2`).
    #[must_use]
    pub fn relates(&self, w1: &Window, w2: &Window) -> bool {
        match self {
            Semantics::CoveredBy => is_strictly_covered_by(w1, w2),
            Semantics::PartitionedBy => is_strictly_partitioned_by(w1, w2),
        }
    }
}

/// Theorem 1: `W1` is covered by `W2` iff `s2 | s1` and `s2 | (r1 − r2)`,
/// with `r1 > r2` (Definition 1); coverage is also reflexive.
#[must_use]
pub fn is_covered_by(w1: &Window, w2: &Window) -> bool {
    w1 == w2 || is_strictly_covered_by(w1, w2)
}

/// Theorem 1 restricted to distinct windows (`r1 > r2`).
#[must_use]
pub fn is_strictly_covered_by(w1: &Window, w2: &Window) -> bool {
    w1.range() > w2.range()
        && w1.slide().is_multiple_of(w2.slide())
        && (w1.range() - w2.range()).is_multiple_of(w2.slide())
}

/// Theorem 4: `W1` is partitioned by `W2` iff `s2 | s1`, `s2 | r1`, and
/// `W2` is tumbling; reflexive like coverage.
#[must_use]
pub fn is_partitioned_by(w1: &Window, w2: &Window) -> bool {
    w1 == w2 || is_strictly_partitioned_by(w1, w2)
}

/// Theorem 4 restricted to distinct windows.
#[must_use]
pub fn is_strictly_partitioned_by(w1: &Window, w2: &Window) -> bool {
    w2.is_tumbling()
        && w1.range() > w2.range()
        && w1.slide().is_multiple_of(w2.slide())
        && w1.range().is_multiple_of(w2.slide())
}

/// Theorem 3: the covering multiplier `M(W1, W2) = 1 + (r1 − r2)/s2`, the
/// number of `W2` sub-aggregates each `W1` instance consumes.
///
/// Requires `is_covered_by(w1, w2)`; `M(W, W) = 1`.
#[must_use]
pub fn covering_multiplier(w1: &Window, w2: &Window) -> u64 {
    debug_assert!(is_covered_by(w1, w2), "M({w1}, {w2}) requires {w1} ≤ {w2}");
    1 + (w1.range() - w2.range()) / w2.slide()
}

/// Definition 2: the covering set of interval `iv` (an instance of the
/// covered window) within `parent`: all parent intervals `[u, v)` with
/// `iv.start ≤ u` and `v ≤ iv.end`. Returned in increasing order.
#[must_use]
pub fn covering_set(parent: &Window, iv: &Interval) -> Vec<Interval> {
    parent
        .instances_within_interval(iv)
        .map(|m| parent.interval(m))
        .collect()
}

/// Interval-level check of Definition 1 over the first `count` intervals of
/// `w1`. This is the *specification* the divisibility test of Theorem 1 is
/// proved equivalent to; it exists for property tests and debugging.
#[must_use]
pub fn definition1_covered(w1: &Window, w2: &Window, count: u64) -> bool {
    if w1 == w2 {
        return true;
    }
    if w1.range() <= w2.range() {
        return false;
    }
    (0..count).all(|m| {
        let iv = w1.interval(m);
        // I_a = [a, x) must start exactly at a with x < b.
        let has_ia = iv.start.is_multiple_of(w2.slide()) && iv.start + w2.range() < iv.end;
        // I_b = [y, b) must end exactly at b with y > a.
        let has_ib = iv.end >= w2.range()
            && (iv.end - w2.range()).is_multiple_of(w2.slide())
            && iv.end - w2.range() > iv.start;
        has_ia && has_ib
    })
}

/// Interval-level check of Definition 5 over the first `count` intervals:
/// covered, and every covering set tiles the interval disjointly.
#[must_use]
pub fn definition5_partitioned(w1: &Window, w2: &Window, count: u64) -> bool {
    if w1 == w2 {
        return true;
    }
    if !definition1_covered(w1, w2, count) {
        return false;
    }
    (0..count).all(|m| {
        let iv = w1.interval(m);
        let cover = covering_set(w2, &iv);
        if cover.is_empty() {
            return false;
        }
        // Disjoint and contiguous from iv.start to iv.end.
        let mut cursor = iv.start;
        for j in &cover {
            if j.start != cursor {
                return false;
            }
            cursor = j.end;
        }
        cursor == iv.end
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    #[test]
    fn example2_coverage() {
        // Example 2/3: W1(10, 2) is covered by W2(8, 2).
        assert!(is_strictly_covered_by(&w(10, 2), &w(8, 2)));
        assert!(definition1_covered(&w(10, 2), &w(8, 2), 16));
    }

    #[test]
    fn example5_not_partitioned() {
        // W1(10,2) is covered but not partitioned by W2(8,2): W2 not tumbling.
        assert!(!is_strictly_partitioned_by(&w(10, 2), &w(8, 2)));
        assert!(!definition5_partitioned(&w(10, 2), &w(8, 2), 16));
    }

    #[test]
    fn tumbling_partitioning() {
        // W(40,40) is partitioned by W(20,20); covering multiplier 2.
        assert!(is_strictly_partitioned_by(&w(40, 40), &w(20, 20)));
        assert!(definition5_partitioned(&w(40, 40), &w(20, 20), 16));
        assert_eq!(covering_multiplier(&w(40, 40), &w(20, 20)), 2);
    }

    #[test]
    fn coverage_requires_divisibility() {
        // W(30,30) is not covered by W(20,20): (30-20) % 20 != 0.
        assert!(!is_strictly_covered_by(&w(30, 30), &w(20, 20)));
        assert!(!definition1_covered(&w(30, 30), &w(20, 20), 16));
        // W(30,30) not covered by W(4,2) either: (30-4) % 2 == 0 and 30 % 2
        // == 0, so it IS covered.
        assert!(is_strictly_covered_by(&w(30, 30), &w(4, 2)));
    }

    #[test]
    fn coverage_is_reflexive_not_symmetric() {
        let a = w(20, 20);
        let b = w(40, 40);
        assert!(is_covered_by(&a, &a));
        assert!(is_covered_by(&b, &a));
        assert!(!is_covered_by(&a, &b));
    }

    #[test]
    fn equal_range_different_slide_is_not_coverage() {
        // Definition 1 requires r1 > r2.
        assert!(!is_strictly_covered_by(&w(10, 10), &w(10, 5)));
        assert!(!definition1_covered(&w(10, 10), &w(10, 5), 16));
    }

    #[test]
    fn multiplier_matches_paper_examples() {
        // Example 6 / Figure 6(b).
        assert_eq!(covering_multiplier(&w(20, 20), &w(10, 10)), 2);
        assert_eq!(covering_multiplier(&w(30, 30), &w(10, 10)), 3);
        assert_eq!(covering_multiplier(&w(40, 40), &w(20, 20)), 2);
        // Figure 4: each interval of W1 covered by two intervals of W2.
        assert_eq!(covering_multiplier(&w(10, 2), &w(8, 2)), 2);
        // Against the virtual root S(1,1): M = r.
        assert_eq!(covering_multiplier(&w(20, 20), &Window::unit()), 20);
    }

    #[test]
    fn covering_set_matches_example4() {
        // Figure 3: first interval [0,10) of W1(10,2) is covered by
        // [0,8) and [2,10) of W2(8,2).
        let cover = covering_set(&w(8, 2), &Interval::new(0, 10));
        assert_eq!(cover, vec![Interval::new(0, 8), Interval::new(2, 10)]);
        // Second interval [2,12): covered by 2nd and 3rd intervals.
        let cover = covering_set(&w(8, 2), &Interval::new(2, 12));
        assert_eq!(cover, vec![Interval::new(2, 10), Interval::new(4, 12)]);
    }

    #[test]
    fn covering_set_cardinality_is_multiplier() {
        let w1 = w(30, 6);
        let w2 = w(12, 3);
        assert!(is_strictly_covered_by(&w1, &w2));
        let m = covering_multiplier(&w1, &w2);
        for i in 0..8 {
            let iv = w1.interval(i);
            assert_eq!(covering_set(&w2, &iv).len() as u64, m);
        }
    }

    #[test]
    fn covering_set_unions_to_interval() {
        let w1 = w(30, 6);
        let w2 = w(12, 3);
        for i in 0..8 {
            let iv = w1.interval(i);
            let cover = covering_set(&w2, &iv);
            assert_eq!(cover.first().unwrap().start, iv.start);
            assert_eq!(cover.last().unwrap().end, iv.end);
            // Consecutive intervals overlap or touch, so the union is [a, b).
            for pair in cover.windows(2) {
                assert!(pair[1].start <= pair[0].end);
            }
        }
    }

    #[test]
    fn semantics_relate() {
        assert!(Semantics::CoveredBy.relates(&w(10, 2), &w(8, 2)));
        assert!(!Semantics::PartitionedBy.relates(&w(10, 2), &w(8, 2)));
        assert!(Semantics::PartitionedBy.relates(&w(40, 40), &w(20, 20)));
        assert_eq!(Semantics::CoveredBy.name(), "covered-by");
        assert_eq!(Semantics::PartitionedBy.name(), "partitioned-by");
    }
}
