//! The cost model of Section III-B.
//!
//! For a window set `{W1..Wn}` with ranges `r_i`, the model considers a
//! period `R = lcm(r_1, …, r_n)` and charges each window
//! `c_i = n_i · µ_i`, where `n_i = 1 + (R − r_i)/s_i` is the recurrence
//! count (Equation 1) and the instance cost `µ_i` is either `η·r_i`
//! (computed from raw events at ingestion rate η) or the covering
//! multiplier `M(W_i, W′)` when fed from another window's sub-aggregates
//! (Observation 1).

use crate::coverage::covering_multiplier;
use crate::error::{Error, Result};
use crate::window::Window;

/// Costs and periods are 128-bit: `R` is an lcm of up to dozens of ranges
/// and can exceed `u64` for the paper's RandomGen parameters.
pub type Cost = u128;

/// Greatest common divisor of two `u64`s.
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// GCD over an iterator; 0 for an empty input.
pub fn gcd_all<I: IntoIterator<Item = u64>>(values: I) -> u64 {
    values.into_iter().fold(0, gcd)
}

/// Checked least common multiple in 128 bits.
pub fn lcm(a: u128, b: u128) -> Result<u128> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let mut x = a;
    let mut y = b;
    while y != 0 {
        let t = x % y;
        x = y;
        y = t;
    }
    (a / x).checked_mul(b).ok_or(Error::PeriodOverflow)
}

/// Default relative weight (percent of a full pane element) of one
/// *additional* per-function accumulator operation in a multi-aggregate
/// plan. See [`CostModel::extra_agg_percent`].
pub const DEFAULT_EXTRA_AGG_PERCENT: u64 = 25;

/// The cost model, parameterized by the steady ingestion rate `η ≥ 1` and
/// the relative weight of extra per-function accumulator work in
/// multi-aggregate plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    rate: u64,
    extra_agg_percent: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rate: 1,
            extra_agg_percent: DEFAULT_EXTRA_AGG_PERCENT,
        }
    }
}

impl CostModel {
    /// Creates a model with ingestion rate `η` (clamped to at least 1).
    #[must_use]
    pub fn new(rate: u64) -> Self {
        CostModel {
            rate: rate.max(1),
            extra_agg_percent: DEFAULT_EXTRA_AGG_PERCENT,
        }
    }

    /// Overrides the multi-aggregate surcharge weight: each accumulator
    /// slot beyond the first at a plan node is priced at `percent`% of a
    /// full pane element. `0` models free extra slots; `100` models fully
    /// unshared per-function work.
    #[must_use]
    pub fn with_extra_agg_percent(mut self, percent: u64) -> Self {
        self.extra_agg_percent = percent.min(100);
        self
    }

    /// The same model at a different ingestion rate (clamped to at
    /// least 1) — how adaptive re-planning tracks observed rate drift
    /// without discarding the configured surcharge weight.
    #[must_use]
    pub fn with_rate(mut self, rate: u64) -> Self {
        self.rate = rate.max(1);
        self
    }

    /// The ingestion rate `η`.
    #[must_use]
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// The multi-aggregate surcharge weight in percent (see
    /// [`Self::with_extra_agg_percent`]).
    #[must_use]
    pub fn extra_agg_percent(&self) -> u64 {
        self.extra_agg_percent
    }

    /// Prices `base` pane elements fanned out to `slots` accumulator
    /// slots: pane maintenance is charged once (the full `base`), and each
    /// slot beyond the first adds `extra_agg_percent`% of it. With one
    /// slot this is exactly `base`, so single-aggregate plans price
    /// identically to the paper's model.
    pub fn fan_out_cost(&self, base: Cost, slots: usize) -> Result<Cost> {
        let extra_slots = slots.saturating_sub(1) as u128;
        let extra = base
            .checked_mul(extra_slots)
            .and_then(|c| c.checked_mul(u128::from(self.extra_agg_percent)))
            .ok_or(Error::CostOverflow)?
            / 100;
        base.checked_add(extra).ok_or(Error::CostOverflow)
    }

    /// `R = lcm` of the ranges of the given (user) windows.
    pub fn period<'a, I: IntoIterator<Item = &'a Window>>(&self, windows: I) -> Result<Cost> {
        let mut acc: u128 = 1;
        for w in windows {
            acc = lcm(acc, u128::from(w.range()))?;
        }
        Ok(acc)
    }

    /// The unshared cost of `w` over one period: `n · η · r`.
    pub fn raw_cost(&self, w: &Window, period: Cost) -> Result<Cost> {
        let n = w.recurrence_count(period)?;
        n.checked_mul(u128::from(self.rate))
            .and_then(|c| c.checked_mul(u128::from(w.range())))
            .ok_or(Error::CostOverflow)
    }

    /// The cost of `w` when fed from `parent`'s sub-aggregates:
    /// `n · M(w, parent)` (Observation 1). Requires `w ≤ parent`.
    pub fn shared_cost(&self, w: &Window, parent: &Window, period: Cost) -> Result<Cost> {
        let n = w.recurrence_count(period)?;
        n.checked_mul(u128::from(covering_multiplier(w, parent)))
            .ok_or(Error::CostOverflow)
    }

    /// Instance cost of feeding `w` from `parent`; `None` parent means the
    /// raw stream (the virtual root `S`), costing `η·r` per instance.
    ///
    /// At η = 1 the raw path coincides with `M(w, S⟨1,1⟩) = r`, which is
    /// why the paper can treat `S` as an ordinary vertex (see DESIGN.md §4.2).
    pub fn instance_cost(&self, w: &Window, parent: Option<&Window>) -> Result<Cost> {
        match parent {
            None => u128::from(self.rate)
                .checked_mul(u128::from(w.range()))
                .ok_or(Error::CostOverflow),
            Some(p) => Ok(u128::from(covering_multiplier(w, p))),
        }
    }

    /// Total unshared cost of a window set (the original plan's cost):
    /// `Σ n_i · η · r_i`.
    pub fn baseline_cost<'a, I>(&self, windows: I, period: Cost) -> Result<Cost>
    where
        I: IntoIterator<Item = &'a Window>,
    {
        let mut total: Cost = 0;
        for w in windows {
            total = total
                .checked_add(self.raw_cost(w, period)?)
                .ok_or(Error::CostOverflow)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(20, 30), 10);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd_all([20, 30, 40]), 10);
        assert_eq!(gcd_all(std::iter::empty()), 0);
        assert_eq!(lcm(4, 6).unwrap(), 12);
        assert_eq!(lcm(0, 6).unwrap(), 0);
        assert!(lcm(u128::MAX, u128::MAX - 1).is_err());
    }

    #[test]
    fn period_matches_example6() {
        let model = CostModel::default();
        let ws = [w(10, 10), w(20, 20), w(30, 30), w(40, 40)];
        assert_eq!(model.period(ws.iter()).unwrap(), 120);
    }

    #[test]
    fn baseline_cost_example6() {
        // Example 6: C = 4ηR = 480 at η = 1.
        let model = CostModel::default();
        let ws = [w(10, 10), w(20, 20), w(30, 30), w(40, 40)];
        let period = model.period(ws.iter()).unwrap();
        assert_eq!(model.baseline_cost(ws.iter(), period).unwrap(), 480);
    }

    #[test]
    fn baseline_cost_example7() {
        // Example 7: without W(10,10), C = 3R = 360.
        let model = CostModel::default();
        let ws = [w(20, 20), w(30, 30), w(40, 40)];
        let period = model.period(ws.iter()).unwrap();
        assert_eq!(period, 120);
        assert_eq!(model.baseline_cost(ws.iter(), period).unwrap(), 360);
    }

    #[test]
    fn shared_cost_matches_figure6() {
        let model = CostModel::default();
        let period = 120;
        assert_eq!(
            model.shared_cost(&w(20, 20), &w(10, 10), period).unwrap(),
            12
        );
        assert_eq!(
            model.shared_cost(&w(30, 30), &w(10, 10), period).unwrap(),
            12
        );
        assert_eq!(
            model.shared_cost(&w(40, 40), &w(20, 20), period).unwrap(),
            6
        );
    }

    #[test]
    fn instance_cost_raw_vs_root() {
        let model = CostModel::new(1);
        // η = 1: raw instance cost equals M(w, S).
        assert_eq!(model.instance_cost(&w(20, 20), None).unwrap(), 20);
        assert_eq!(
            model
                .instance_cost(&w(20, 20), Some(&Window::unit()))
                .unwrap(),
            20
        );
        // η = 3: raw path is 3x, the S path stays at M.
        let model3 = CostModel::new(3);
        assert_eq!(model3.instance_cost(&w(20, 20), None).unwrap(), 60);
        assert_eq!(
            model3
                .instance_cost(&w(20, 20), Some(&Window::unit()))
                .unwrap(),
            20
        );
    }

    #[test]
    fn rate_clamped_to_one() {
        assert_eq!(CostModel::new(0).rate(), 1);
        assert_eq!(CostModel::default().rate(), 1);
    }
}
