//! The Window Coverage Graph (Section II-C) and its augmented form
//! (Section IV-A).
//!
//! Vertices are windows; an edge `(W2, W1)` exists when `W1 ≤ W2` under the
//! chosen semantics, i.e. sub-aggregates can flow from `W2` to `W1`. The
//! augmented WCG adds a virtual root `S⟨1,1⟩` (the raw stream) with edges
//! to every window that has no other in-edge.

use crate::coverage::Semantics;
use crate::window::{Window, WindowSet};
use std::collections::HashMap;

/// How a vertex entered the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The virtual root `S⟨1,1⟩` representing the raw stream.
    VirtualRoot,
    /// A window from the user's query; its results are exposed.
    User,
    /// A factor window inserted by the optimizer; results are hidden.
    Factor,
}

/// A vertex of the WCG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcgNode {
    /// The window at this vertex.
    pub window: Window,
    /// Provenance of the vertex.
    pub kind: NodeKind,
}

/// The window coverage graph.
#[derive(Debug, Clone)]
pub struct Wcg {
    semantics: Semantics,
    nodes: Vec<WcgNode>,
    out_edges: Vec<Vec<usize>>,
    in_edges: Vec<Vec<usize>>,
    /// Index of the root vertex once augmented (virtual, or a user `W(1,1)`).
    root: Option<usize>,
    /// Window → vertex index (windows are unique across the graph).
    index: HashMap<Window, usize>,
}

impl Wcg {
    /// Builds the WCG of a window set under the given semantics
    /// (Section II-C; O(|W|²) coverage checks).
    #[must_use]
    pub fn build(windows: &WindowSet, semantics: Semantics) -> Self {
        let mut wcg = Wcg {
            semantics,
            nodes: Vec::with_capacity(windows.len()),
            out_edges: Vec::with_capacity(windows.len()),
            in_edges: Vec::with_capacity(windows.len()),
            root: None,
            index: HashMap::with_capacity(windows.len()),
        };
        for w in windows.iter() {
            wcg.push_node(*w, NodeKind::User);
        }
        for i in 0..wcg.nodes.len() {
            for j in 0..wcg.nodes.len() {
                if i == j {
                    continue;
                }
                // Edge (W_j → W_i) when W_i ≤ W_j: data flows coverer → covered.
                let wi = wcg.nodes[i].window;
                let wj = wcg.nodes[j].window;
                if semantics.relates(&wi, &wj) {
                    wcg.add_edge(j, i);
                }
            }
        }
        wcg
    }

    /// Builds the *augmented* WCG: adds the virtual root `S⟨1,1⟩` with
    /// edges to all vertices lacking an in-edge, unless a user window
    /// `W(1,1)` already plays that role (Section IV-A).
    #[must_use]
    pub fn build_augmented(windows: &WindowSet, semantics: Semantics) -> Self {
        let mut wcg = Wcg::build(windows, semantics);
        wcg.augment();
        wcg
    }

    fn augment(&mut self) {
        let unit = Window::unit();
        if let Some(&existing) = self.index.get(&unit) {
            // A user W(1,1) covers every other window, so it already has an
            // edge to each of them; just mark it as the root.
            self.root = Some(existing);
            return;
        }
        let orphan: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.in_edges[i].is_empty())
            .collect();
        let root = self.push_node(unit, NodeKind::VirtualRoot);
        for target in orphan {
            self.add_edge(root, target);
        }
        self.root = Some(root);
    }

    fn push_node(&mut self, window: Window, kind: NodeKind) -> usize {
        debug_assert!(
            !self.index.contains_key(&window),
            "duplicate vertex {window}"
        );
        let id = self.nodes.len();
        self.nodes.push(WcgNode { window, kind });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        self.index.insert(window, id);
        id
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        self.out_edges[from].push(to);
        self.in_edges[to].push(from);
    }

    /// Inserts a factor window with the Figure-9 edge pattern: an edge from
    /// `parent` to the factor and edges from the factor to each of
    /// `children`. Returns `None` (and changes nothing) if the window
    /// already exists as a vertex (Definition 6 forbids duplicates).
    pub fn insert_factor(
        &mut self,
        window: Window,
        parent: usize,
        children: &[usize],
    ) -> Option<usize> {
        if self.index.contains_key(&window) {
            return None;
        }
        let id = self.push_node(window, NodeKind::Factor);
        self.add_edge(parent, id);
        for &c in children {
            self.add_edge(id, c);
        }
        Some(id)
    }

    /// The semantics the edges encode.
    #[must_use]
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Number of vertices (including the root once augmented).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The vertex at `id`.
    #[must_use]
    pub fn node(&self, id: usize) -> &WcgNode {
        &self.nodes[id]
    }

    /// All vertices.
    #[must_use]
    pub fn nodes(&self) -> &[WcgNode] {
        &self.nodes
    }

    /// Vertex index of `window`, if present.
    #[must_use]
    pub fn find(&self, window: &Window) -> Option<usize> {
        self.index.get(window).copied()
    }

    /// Out-neighbors of `id` (windows computable from `id`'s sub-aggregates).
    #[must_use]
    pub fn downstream(&self, id: usize) -> &[usize] {
        &self.out_edges[id]
    }

    /// In-neighbors of `id` (windows that can feed `id`).
    #[must_use]
    pub fn upstream(&self, id: usize) -> &[usize] {
        &self.in_edges[id]
    }

    /// The root vertex, if the graph has been augmented.
    #[must_use]
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// Whether `id` is the (virtual or user) root vertex.
    #[must_use]
    pub fn is_root(&self, id: usize) -> bool {
        self.root == Some(id)
    }

    /// Whether `id` is the *virtual* root (excluded from plan costs).
    #[must_use]
    pub fn is_virtual(&self, id: usize) -> bool {
        self.nodes[id].kind == NodeKind::VirtualRoot
    }

    /// Total number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Iterates over `(from, to)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.out_edges
            .iter()
            .enumerate()
            .flat_map(|(f, ts)| ts.iter().map(move |&t| (f, t)))
    }

    /// Renders the graph in Graphviz dot format (virtual root as a point,
    /// factor windows dashed), matching the paper's Figure 6/7 drawings.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph wcg {\n  rankdir=TB;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let attrs = match node.kind {
                NodeKind::VirtualRoot => "shape=point, label=\"\"".to_string(),
                NodeKind::User => format!("shape=ellipse, label=\"{}\"", node.window),
                NodeKind::Factor => {
                    format!("shape=ellipse, style=dashed, label=\"{}\"", node.window)
                }
            };
            out.push_str(&format!("  n{i} [{attrs}];\n"));
        }
        for (from, to) in self.edges() {
            out.push_str(&format!("  n{from} -> n{to};\n"));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowSet;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn set(ws: &[Window]) -> WindowSet {
        WindowSet::new(ws.to_vec()).unwrap()
    }

    #[test]
    fn figure6_initial_wcg() {
        // Example 6 / Figure 6(a): W1(10) covers W2(20), W3(30), W4(40);
        // W2(20) covers W4(40); no other edges.
        let ws = set(&[w(10, 10), w(20, 20), w(30, 30), w(40, 40)]);
        let g = Wcg::build(&ws, Semantics::PartitionedBy);
        let id = |r| g.find(&w(r, r)).unwrap();
        assert_eq!(g.edge_count(), 4);
        let mut d10: Vec<_> = g.downstream(id(10)).to_vec();
        d10.sort_unstable();
        assert_eq!(d10, vec![id(20), id(30), id(40)]);
        assert_eq!(g.downstream(id(20)), &[id(40)]);
        assert!(g.downstream(id(30)).is_empty());
        assert!(g.downstream(id(40)).is_empty());
    }

    #[test]
    fn covered_and_partitioned_coincide_for_tumbling_sets() {
        let ws = set(&[w(10, 10), w(20, 20), w(30, 30), w(40, 40)]);
        let a = Wcg::build(&ws, Semantics::PartitionedBy);
        let b = Wcg::build(&ws, Semantics::CoveredBy);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn hopping_edges_differ_between_semantics() {
        // W(10,2) ≤ W(8,2) under covered-by but not partitioned-by.
        let ws = set(&[w(8, 2), w(10, 2)]);
        let covered = Wcg::build(&ws, Semantics::CoveredBy);
        let part = Wcg::build(&ws, Semantics::PartitionedBy);
        assert_eq!(covered.edge_count(), 1);
        assert_eq!(part.edge_count(), 0);
    }

    #[test]
    fn augmentation_adds_virtual_root() {
        // Example 7 / Figure 7(a): S → W2, S → W3; W4 is fed by W2.
        let ws = set(&[w(20, 20), w(30, 30), w(40, 40)]);
        let g = Wcg::build_augmented(&ws, Semantics::PartitionedBy);
        let root = g.root().unwrap();
        assert!(g.is_virtual(root));
        assert_eq!(g.node(root).window, Window::unit());
        let mut roots: Vec<_> = g
            .downstream(root)
            .iter()
            .map(|&i| g.node(i).window.range())
            .collect();
        roots.sort_unstable();
        assert_eq!(roots, vec![20, 30]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn augmentation_reuses_user_unit_window() {
        let ws = set(&[w(1, 1), w(20, 20)]);
        let g = Wcg::build_augmented(&ws, Semantics::PartitionedBy);
        let root = g.root().unwrap();
        assert_eq!(g.node(root).kind, NodeKind::User);
        assert_eq!(g.len(), 2);
        assert_eq!(g.downstream(root), &[g.find(&w(20, 20)).unwrap()]);
    }

    #[test]
    fn insert_factor_rejects_duplicates() {
        let ws = set(&[w(20, 20), w(40, 40)]);
        let mut g = Wcg::build_augmented(&ws, Semantics::PartitionedBy);
        let root = g.root().unwrap();
        let target = g.find(&w(40, 40)).unwrap();
        assert!(g.insert_factor(w(20, 20), root, &[target]).is_none());
        let id = g.insert_factor(w(10, 10), root, &[target]).unwrap();
        assert_eq!(g.node(id).kind, NodeKind::Factor);
        assert_eq!(g.upstream(id), &[root]);
        assert_eq!(g.downstream(id), &[target]);
    }

    #[test]
    fn dot_rendering_is_well_formed() {
        let ws = set(&[w(20, 20), w(40, 40)]);
        let g = Wcg::build_augmented(&ws, Semantics::PartitionedBy);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph wcg {"));
        assert!(dot.contains("shape=point"), "{dot}");
        assert!(dot.contains("W(20,20)"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn mutually_prime_ranges_have_no_edges() {
        // Paper "Limitations": W(15,15), W(17,17), W(19,19).
        let ws = set(&[w(15, 15), w(17, 17), w(19, 19)]);
        let g = Wcg::build(&ws, Semantics::CoveredBy);
        assert_eq!(g.edge_count(), 0);
    }
}
