//! Algorithm 1: computing the min-cost WCG (Section III-B2).
//!
//! Every window is initialized with its unshared cost `n·η·r` and then
//! revised over its in-edges to `n·M(W, W′)` (Observation 1); only the
//! in-edge achieving the final cost is kept, so the result is a forest
//! (Theorem 7).

use crate::cost::{Cost, CostModel};
use crate::error::Result;
use crate::wcg::Wcg;

/// Where a window reads its input from in the min-cost plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feed {
    /// Directly from the raw event stream.
    Raw,
    /// From the sub-aggregates of another vertex (by WCG index).
    From(usize),
}

/// The output of Algorithm 1: per-window feeds and costs over a WCG.
#[derive(Debug, Clone)]
pub struct MinCostWcg {
    wcg: Wcg,
    period: Cost,
    feeds: Vec<Feed>,
    costs: Vec<Cost>,
    children: Vec<Vec<usize>>,
    active: Vec<bool>,
    total: Cost,
}

/// Runs Algorithm 1 over `wcg`.
///
/// `period` must be the lcm of the *user* window ranges (factor windows do
/// not extend the period — DESIGN.md §4.3). Virtual-root in-edges model the
/// raw stream and cost `n·η·r`, which is also every window's initial cost,
/// so they never win a revision.
pub fn minimize(wcg: Wcg, model: &CostModel, period: Cost) -> Result<MinCostWcg> {
    let n = wcg.len();
    let mut feeds = vec![Feed::Raw; n];
    let mut costs = vec![0 as Cost; n];
    for i in 0..n {
        if wcg.is_virtual(i) {
            continue;
        }
        let w = wcg.node(i).window;
        let mut best = model.raw_cost(&w, period)?;
        let mut feed = Feed::Raw;
        let count = w.recurrence_count(period)?;
        for &j in wcg.upstream(i) {
            if wcg.is_virtual(j) {
                continue;
            }
            let parent = wcg.node(j).window;
            let candidate = count
                .checked_mul(u128::from(crate::coverage::covering_multiplier(
                    &w, &parent,
                )))
                .ok_or(crate::error::Error::CostOverflow)?;
            if candidate < best {
                best = candidate;
                feed = Feed::From(j);
            }
        }
        costs[i] = best;
        feeds[i] = feed;
    }

    let mut children = vec![Vec::new(); n];
    for (i, feed) in feeds.iter().enumerate() {
        if let Feed::From(p) = feed {
            children[*p].push(i);
        }
    }
    let active = vec![true; n];
    let mut result = MinCostWcg {
        wcg,
        period,
        feeds,
        costs,
        children,
        active,
        total: 0,
    };
    result.recompute_total();
    Ok(result)
}

impl MinCostWcg {
    /// The underlying (possibly factor-expanded) WCG.
    #[must_use]
    pub fn wcg(&self) -> &Wcg {
        &self.wcg
    }

    /// The period `R` the costs were computed over.
    #[must_use]
    pub fn period(&self) -> Cost {
        self.period
    }

    /// Feed of vertex `i` in the min-cost forest.
    #[must_use]
    pub fn feed(&self, i: usize) -> Feed {
        self.feeds[i]
    }

    /// Cost of vertex `i` (0 for the virtual root).
    #[must_use]
    pub fn cost(&self, i: usize) -> Cost {
        self.costs[i]
    }

    /// Children of vertex `i` in the min-cost forest.
    #[must_use]
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Whether vertex `i` survived dead-factor pruning.
    #[must_use]
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Total plan cost: active, non-virtual vertices only.
    #[must_use]
    pub fn total_cost(&self) -> Cost {
        self.total
    }

    /// Indices of active, non-virtual vertices.
    pub fn active_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.wcg.len()).filter(|&i| self.active[i] && !self.wcg.is_virtual(i))
    }

    fn recompute_total(&mut self) {
        self.total = self
            .active_nodes()
            .map(|i| self.costs[i])
            .fold(0 as Cost, |acc, c| acc.saturating_add(c));
    }

    /// Removes factor windows no surviving vertex reads from. Such vertices
    /// would compute sub-aggregates nobody consumes; the paper's rewriting
    /// implicitly assumes they do not exist (DESIGN.md §4.5). Iterates to a
    /// fixpoint because factor windows can feed other factor windows.
    pub fn prune_dead_factors(&mut self) {
        loop {
            let mut changed = false;
            for i in 0..self.wcg.len() {
                if !self.active[i] || self.wcg.node(i).kind != crate::wcg::NodeKind::Factor {
                    continue;
                }
                let has_consumer = self.children[i].iter().any(|&c| self.active[c]);
                if !has_consumer {
                    self.active[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Pruned factors were fed by someone; detach them so children lists
        // reflect the surviving forest.
        for list in &mut self.children {
            let active = &self.active;
            list.retain(|&c| active[c]);
        }
        self.recompute_total();
    }

    /// Validates Theorem 7: the active subgraph is a forest (every vertex
    /// has at most one parent, no cycles). Used by tests and debug builds.
    #[must_use]
    pub fn is_forest(&self) -> bool {
        // Parents are unique by construction; check acyclicity by walking up.
        for start in self.active_nodes() {
            let mut hops = 0;
            let mut cur = start;
            while let Feed::From(p) = self.feeds[cur] {
                cur = p;
                hops += 1;
                if hops > self.wcg.len() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::Semantics;
    use crate::window::{Window, WindowSet};

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn run(windows: &[Window], semantics: Semantics) -> MinCostWcg {
        let ws = WindowSet::new(windows.to_vec()).unwrap();
        let model = CostModel::default();
        let period = model.period(ws.iter()).unwrap();
        let wcg = Wcg::build_augmented(&ws, semantics);
        minimize(wcg, &model, period).unwrap()
    }

    #[test]
    fn example6_min_cost() {
        // Figure 6(b): c1 = 120, c2 = 12, c3 = 12, c4 = 6; total 150.
        let mc = run(
            &[w(10, 10), w(20, 20), w(30, 30), w(40, 40)],
            Semantics::PartitionedBy,
        );
        let g = mc.wcg();
        let id = |r| g.find(&w(r, r)).unwrap();
        assert_eq!(mc.cost(id(10)), 120);
        assert_eq!(mc.cost(id(20)), 12);
        assert_eq!(mc.cost(id(30)), 12);
        assert_eq!(mc.cost(id(40)), 6);
        assert_eq!(mc.total_cost(), 150);
        assert_eq!(mc.feed(id(10)), Feed::Raw);
        assert_eq!(mc.feed(id(20)), Feed::From(id(10)));
        assert_eq!(mc.feed(id(30)), Feed::From(id(10)));
        assert_eq!(mc.feed(id(40)), Feed::From(id(20)));
        assert!(mc.is_forest());
    }

    #[test]
    fn example7_min_cost_without_factors() {
        // Figure 7(a): c2 = 120, c3 = 120, c4 = 6; total 246.
        let mc = run(&[w(20, 20), w(30, 30), w(40, 40)], Semantics::PartitionedBy);
        let g = mc.wcg();
        let id = |r| g.find(&w(r, r)).unwrap();
        assert_eq!(mc.cost(id(20)), 120);
        assert_eq!(mc.cost(id(30)), 120);
        assert_eq!(mc.cost(id(40)), 6);
        assert_eq!(mc.total_cost(), 246);
        assert_eq!(mc.feed(id(20)), Feed::Raw);
        assert_eq!(mc.feed(id(40)), Feed::From(id(20)));
    }

    #[test]
    fn disjoint_windows_all_raw() {
        let mc = run(&[w(15, 15), w(17, 17), w(19, 19)], Semantics::CoveredBy);
        let baseline = 3 * 15 * 17 * 19; // 3ηR
        assert_eq!(mc.total_cost(), baseline as u128);
        for i in mc.active_nodes() {
            assert_eq!(mc.feed(i), Feed::Raw);
        }
    }

    #[test]
    fn hopping_covered_by_sharing() {
        // W(20,10) can be fed from W(10,10): M = 1 + (20-10)/10 = 2.
        let mc = run(&[w(10, 10), w(20, 10)], Semantics::CoveredBy);
        let g = mc.wcg();
        let hop = g.find(&w(20, 10)).unwrap();
        let tum = g.find(&w(10, 10)).unwrap();
        assert_eq!(mc.feed(hop), Feed::From(tum));
        // R = 20, n_hop = 1 + (20-20)/10 = 1, cost = 1*2 = 2.
        assert_eq!(mc.cost(hop), 2);
    }

    #[test]
    fn children_mirror_feeds() {
        let mc = run(
            &[w(10, 10), w(20, 20), w(30, 30), w(40, 40)],
            Semantics::PartitionedBy,
        );
        let g = mc.wcg();
        let id = |r| g.find(&w(r, r)).unwrap();
        let mut c10 = mc.children(id(10)).to_vec();
        c10.sort_unstable();
        assert_eq!(c10, vec![id(20), id(30)]);
        assert_eq!(mc.children(id(20)), &[id(40)]);
    }

    #[test]
    fn brute_force_optimality_small_sets() {
        // Algorithm 1 is exact per-window (each window independently picks
        // its cheapest feed), so the total must equal the brute-force
        // minimum over all valid parent assignments.
        let sets: Vec<Vec<Window>> = vec![
            vec![w(10, 10), w(20, 20), w(30, 30), w(40, 40)],
            vec![w(4, 2), w(8, 2), w(16, 4)],
            vec![w(6, 3), w(12, 3), w(24, 12), w(30, 3)],
        ];
        for windows in sets {
            for semantics in [Semantics::CoveredBy, Semantics::PartitionedBy] {
                let ws = WindowSet::new(windows.clone()).unwrap();
                let model = CostModel::default();
                let period = model.period(ws.iter()).unwrap();
                let mc = minimize(Wcg::build_augmented(&ws, semantics), &model, period).unwrap();

                // Brute force: each window picks raw or any strict coverer.
                let mut best_total: Cost = 0;
                for wi in ws.iter() {
                    let mut best = model.raw_cost(wi, period).unwrap();
                    for wj in ws.iter() {
                        if wi != wj && semantics.relates(wi, wj) {
                            let c = model.shared_cost(wi, wj, period).unwrap();
                            best = best.min(c);
                        }
                    }
                    best_total += best;
                }
                assert_eq!(mc.total_cost(), best_total, "set {windows:?} {semantics:?}");
            }
        }
    }
}
