//! Adaptive re-optimization from observed ingestion rates.
//!
//! The paper's cost model assumes a *static* steady rate η and names
//! dynamic adjustment as future work (Section VI: "investigate how to
//! dynamically adjust cost estimates at runtime by keeping track of the
//! input event rates"). This module implements that extension: an EWMA
//! rate estimator plus a planner that re-runs the cost-based optimizer
//! when the observed rate drifts past a hysteresis threshold.
//!
//! Rate genuinely matters: raw instance costs scale with η (`n·η·r`) while
//! sub-aggregate costs do not (`n·M`), so a higher rate can justify
//! *finer* factor windows. For example, for the tumbling set
//! `{W(10), W(20), W(94), W(100), W(300)}` the best plan at η = 1 differs
//! from the best plan at η = 2 (see tests).

use crate::cost::CostModel;
use crate::coverage::Semantics;
use crate::error::Result;
use crate::optimizer::{OptimizationOutcome, Optimizer, WindowQuery};

/// Exponentially weighted moving average of the ingestion rate, fed with
/// raw event timestamps. Counts events per time unit and folds each
/// completed unit into the estimate.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    alpha: f64,
    current_unit: Option<u64>,
    unit_count: u64,
    estimate: Option<f64>,
}

impl RateEstimator {
    /// Creates an estimator; `alpha ∈ (0, 1]` is the EWMA weight of the
    /// newest observation (clamped into range).
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        RateEstimator {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            current_unit: None,
            unit_count: 0,
            estimate: None,
        }
    }

    /// Observes one event at `time` (non-decreasing).
    pub fn observe(&mut self, time: u64) {
        match self.current_unit {
            Some(unit) if unit == time => self.unit_count += 1,
            Some(unit) => {
                debug_assert!(time > unit, "timestamps must be non-decreasing");
                self.fold(self.unit_count as f64);
                // Empty units between events count as zero-rate samples.
                for _ in unit + 1..time.min(unit + 64) {
                    self.fold(0.0);
                }
                self.current_unit = Some(time);
                self.unit_count = 1;
            }
            None => {
                self.current_unit = Some(time);
                self.unit_count = 1;
            }
        }
    }

    fn fold(&mut self, sample: f64) {
        self.estimate = Some(match self.estimate {
            None => sample,
            Some(prev) => self.alpha * sample + (1.0 - self.alpha) * prev,
        });
    }

    /// Current events-per-time-unit estimate (η), if any full unit has
    /// been observed yet.
    #[must_use]
    pub fn rate(&self) -> Option<f64> {
        self.estimate
    }
}

/// One re-optimization decision, kept so replans are auditable after the
/// fact: what rate was observed, what the outgoing plan was priced for,
/// and the drift ratio that tripped the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanRecord {
    /// The observed (EWMA) rate that triggered the replan.
    pub observed: f64,
    /// The rate the *outgoing* plan had been optimized for.
    pub planned: f64,
    /// Drift ratio `max(observed/planned, planned/observed)` (≥ 1).
    pub ratio: f64,
    /// Whether the re-optimization produced a different plan topology.
    pub plan_changed: bool,
}

/// Number of [`ReplanRecord`]s the planner retains (oldest dropped).
pub const REPLAN_LOG_CAP: usize = 32;

/// A planner that keeps the optimizer's output aligned with the observed
/// ingestion rate.
#[derive(Debug, Clone)]
pub struct AdaptivePlanner {
    query: WindowQuery,
    semantics: Semantics,
    /// The full cost model in force (rate swapped on re-plans; other
    /// knobs, e.g. the multi-aggregate surcharge, are preserved).
    model: CostModel,
    threshold: f64,
    outcome: OptimizationOutcome,
    replans: u64,
    replan_log: Vec<ReplanRecord>,
}

impl AdaptivePlanner {
    /// Optimizes `query` for `initial_rate` and re-plans whenever the
    /// observed rate differs from the planned rate by at least
    /// `threshold` (a ratio > 1; e.g. 1.5 means ±50% drift).
    pub fn new(
        query: WindowQuery,
        semantics: Semantics,
        initial_rate: u64,
        threshold: f64,
    ) -> Result<Self> {
        Self::from_model(query, semantics, CostModel::new(initial_rate), threshold)
    }

    /// Like [`Self::new`], but starts from a fully configured
    /// [`CostModel`]: re-plans swap only the rate and keep every other
    /// knob (e.g. [`CostModel::extra_agg_percent`]), so the planner's
    /// decisions match what a non-adaptive optimization under the same
    /// model would choose.
    pub fn from_model(
        query: WindowQuery,
        semantics: Semantics,
        model: CostModel,
        threshold: f64,
    ) -> Result<Self> {
        let outcome = Optimizer::new(model).optimize_with(&query, semantics)?;
        Ok(AdaptivePlanner {
            query,
            semantics,
            model,
            threshold: threshold.max(1.0),
            outcome,
            replans: 0,
            replan_log: Vec::new(),
        })
    }

    /// The plan bundle currently in force.
    #[must_use]
    pub fn current(&self) -> &OptimizationOutcome {
        &self.outcome
    }

    /// The rate the current plan was optimized for.
    #[must_use]
    pub fn planned_rate(&self) -> u64 {
        self.model.rate()
    }

    /// Number of re-optimizations performed so far.
    #[must_use]
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// The most recent replan decision, if any replan has happened.
    #[must_use]
    pub fn last_replan(&self) -> Option<&ReplanRecord> {
        self.replan_log.last()
    }

    /// Audit log of the most recent replans (up to [`REPLAN_LOG_CAP`]
    /// entries, oldest first).
    #[must_use]
    pub fn replan_log(&self) -> &[ReplanRecord] {
        &self.replan_log
    }

    /// Feeds an observed rate; re-optimizes when it drifts past the
    /// threshold. Returns the new outcome when the *plan* actually
    /// changed (rate drifts that re-derive the same plan return `None`).
    pub fn observe_rate(&mut self, observed: f64) -> Result<Option<&OptimizationOutcome>> {
        if !observed.is_finite() || observed <= 0.0 {
            return Ok(None);
        }
        let planned = self.planned_rate() as f64;
        let drift = if observed > planned {
            observed / planned
        } else {
            planned / observed
        };
        if drift < self.threshold {
            return Ok(None);
        }
        let new_rate = observed.round().max(1.0) as u64;
        self.model = self.model.with_rate(new_rate);
        let outcome = Optimizer::new(self.model).optimize_with(&self.query, self.semantics)?;
        self.replans += 1;
        // "Changed" compares plan *topologies*; costs always change with
        // the rate, so callers selecting by cost (PlanChoice::Auto)
        // should compare their selected plan against [`Self::current`]
        // after every observation rather than rely on this signal alone.
        let changed = outcome.factored.plan != self.outcome.factored.plan
            || outcome.rewritten.plan != self.outcome.rewritten.plan;
        self.outcome = outcome;
        if self.replan_log.len() == REPLAN_LOG_CAP {
            self.replan_log.remove(0);
        }
        self.replan_log.push(ReplanRecord {
            observed,
            planned,
            ratio: drift,
            plan_changed: changed,
        });
        Ok(changed.then_some(&self.outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::AggregateFunction;
    use crate::window::{Window, WindowSet};

    fn rate_sensitive_query() -> WindowQuery {
        // Found by search: the best factor structure at η = 1 differs from
        // the one at η = 2 (raw costs double, combine costs do not).
        let windows = WindowSet::new(
            [10u64, 20, 94, 100, 300]
                .map(|r| Window::tumbling(r).unwrap())
                .to_vec(),
        )
        .unwrap();
        WindowQuery::new(windows, AggregateFunction::Min)
    }

    #[test]
    fn estimator_converges_to_constant_rate() {
        let mut est = RateEstimator::new(0.2);
        // 3 events per unit for 100 units.
        for t in 0..100u64 {
            for _ in 0..3 {
                est.observe(t);
            }
        }
        let rate = est.rate().unwrap();
        assert!((rate - 3.0).abs() < 0.2, "estimate {rate}");
    }

    #[test]
    fn estimator_tracks_rate_changes() {
        let mut est = RateEstimator::new(0.3);
        for t in 0..50u64 {
            est.observe(t);
        }
        let low = est.rate().unwrap();
        for t in 50..120u64 {
            for _ in 0..8 {
                est.observe(t);
            }
        }
        let high = est.rate().unwrap();
        assert!(low < 1.5, "{low}");
        assert!(high > 6.0, "{high}");
    }

    #[test]
    fn estimator_decays_over_empty_units() {
        let mut est = RateEstimator::new(0.5);
        for _ in 0..10 {
            est.observe(0);
        }
        est.observe(40); // long silence
        assert!(est.rate().unwrap() < 1.0);
    }

    #[test]
    fn factor_choice_depends_on_rate() {
        let query = rate_sensitive_query();
        let at = |rate: u64| {
            Optimizer::new(CostModel::new(rate))
                .optimize_with(&query, Semantics::CoveredBy)
                .unwrap()
                .factored
                .plan
        };
        assert_ne!(at(1), at(2), "expected a rate-sensitive plan choice");
    }

    #[test]
    fn planner_replans_past_threshold_only() {
        let mut planner =
            AdaptivePlanner::new(rate_sensitive_query(), Semantics::CoveredBy, 1, 1.5).unwrap();
        // Small drift: no replan.
        assert!(planner.observe_rate(1.2).unwrap().is_none());
        assert_eq!(planner.replans(), 0);
        // Doubling the rate crosses the threshold and changes the plan.
        let before = planner.current().factored.plan.clone();
        let changed = planner.observe_rate(2.0).unwrap();
        assert!(changed.is_some());
        assert_eq!(planner.replans(), 1);
        assert_ne!(before, planner.current().factored.plan);
        assert_eq!(planner.planned_rate(), 2);
        // Returning to the same rate is a replan but may restore the plan.
        let restored = planner.observe_rate(1.0).unwrap();
        assert!(restored.is_some());
        assert_eq!(planner.current().factored.plan, before);
    }

    #[test]
    fn current_outcome_reprices_even_without_topology_change() {
        // {20,30,40} MIN has rate-stable plan topologies, so observe_rate
        // reports "no change" — but `current()` must still carry the
        // repriced costs: cost-based selection (PlanChoice::Auto) reads
        // costs, not shapes, and must re-select against the new rate.
        let windows = WindowSet::new(
            [20u64, 30, 40]
                .map(|r| Window::tumbling(r).unwrap())
                .to_vec(),
        )
        .unwrap();
        let query = WindowQuery::new(windows, AggregateFunction::Min);
        let mut planner = AdaptivePlanner::new(query, Semantics::CoveredBy, 1, 1.5).unwrap();
        let before = planner.current().factored.cost;
        let changed = planner.observe_rate(4.0).unwrap();
        assert!(changed.is_none(), "topologies are rate-stable here");
        assert_eq!(planner.replans(), 1);
        assert_eq!(planner.planned_rate(), 4);
        assert!(
            planner.current().factored.cost > before,
            "current() must reflect the rate-4 pricing"
        );
    }

    #[test]
    fn from_model_preserves_non_rate_knobs() {
        use crate::taxonomy::AggregateSpec;
        let windows = WindowSet::new(
            [20u64, 30, 40]
                .map(|r| Window::tumbling(r).unwrap())
                .to_vec(),
        )
        .unwrap();
        let query = WindowQuery::with_aggregates(
            windows,
            vec![
                AggregateSpec::new(AggregateFunction::Min),
                AggregateSpec::new(AggregateFunction::Max),
            ],
        )
        .unwrap();
        let model = CostModel::new(1).with_extra_agg_percent(100);
        let mut planner =
            AdaptivePlanner::from_model(query.clone(), Semantics::CoveredBy, model, 1.5).unwrap();
        let expect = |rate: u64| {
            Optimizer::new(model.with_rate(rate))
                .optimize_with(&query, Semantics::CoveredBy)
                .unwrap()
                .factored
                .cost
        };
        // The surcharge survives both the initial plan and re-plans.
        assert_eq!(planner.current().factored.cost, expect(1));
        let _ = planner.observe_rate(4.0).unwrap();
        assert_eq!(planner.planned_rate(), 4);
        assert_eq!(planner.current().factored.cost, expect(4));
    }

    #[test]
    fn replan_log_records_ratio_and_outcome() {
        let mut planner =
            AdaptivePlanner::new(rate_sensitive_query(), Semantics::CoveredBy, 1, 1.5).unwrap();
        assert!(planner.last_replan().is_none());
        // Below threshold: nothing recorded.
        let _ = planner.observe_rate(1.2).unwrap();
        assert!(planner.replan_log().is_empty());
        let _ = planner.observe_rate(2.0).unwrap();
        let rec = planner.last_replan().expect("replan recorded");
        assert_eq!(rec.planned, 1.0);
        assert_eq!(rec.observed, 2.0);
        assert!((rec.ratio - 2.0).abs() < 1e-12);
        assert!(rec.plan_changed);
        // A replan that restores the original topology is still logged.
        let _ = planner.observe_rate(1.0).unwrap();
        assert_eq!(planner.replan_log().len(), 2);
        assert_eq!(planner.replan_log()[1].planned, 2.0);
    }

    #[test]
    fn planner_ignores_degenerate_rates() {
        let mut planner =
            AdaptivePlanner::new(rate_sensitive_query(), Semantics::CoveredBy, 1, 1.5).unwrap();
        assert!(planner.observe_rate(f64::NAN).unwrap().is_none());
        assert!(planner.observe_rate(0.0).unwrap().is_none());
        assert!(planner.observe_rate(-3.0).unwrap().is_none());
        assert_eq!(planner.replans(), 0);
    }
}
