//! A small, dependency-free deterministic PRNG for workload generation.
//!
//! The generators only need reproducible uniform draws, not cryptographic
//! quality, so a SplitMix64 core (Steele et al., "Fast Splittable
//! Pseudorandom Number Generators") is plenty: full 64-bit period, passes
//! BigCrush, and two lines of state transition. Seeding is by a single
//! `u64`, mirroring the `seed_from_u64` convention the experiment code
//! relies on for reproducibility.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[range.start, range.end)`.
    ///
    /// Plain modulo reduction of a 64-bit draw; the resulting bias is
    /// below 2⁻⁵⁰ for every span the workloads use.
    pub fn gen_range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + (self.next_u64() % span)
    }

    /// A uniform draw from the inclusive `[start, end]`.
    pub fn gen_range_inclusive_u64(&mut self, range: RangeInclusive<u64>) -> u64 {
        let (start, end) = (*range.start(), *range.end());
        assert!(start <= end, "empty range");
        let span = (end - start).wrapping_add(1);
        if span == 0 {
            // Full u64 range.
            return self.next_u64();
        }
        start + (self.next_u64() % span)
    }

    /// A uniform draw from `[0, bound)` as `usize` (for indexing).
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform draw from `[range.start, range.end)` over `f64`.
    pub fn gen_range_f64(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range_u64(5..10);
            assert!((5..10).contains(&x));
            let y = rng.gen_range_inclusive_u64(2..=50);
            assert!((2..=50).contains(&y));
            let z = rng.gen_range_f64(0.0..100.0);
            assert!((0.0..100.0).contains(&z));
            let i = rng.gen_index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn draws_cover_the_range() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range_f64(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
