//! Window-set generators from Section V-A3: RandomGen (Algorithm 6) and
//! SequentialGen.
//!
//! Paper parameters: "seed" slides `S = {5, 10, 20}` (hopping), "seed"
//! ranges `R = {2, 5, 10}` (tumbling), multipliers `k_s = k_r = 50`, and
//! window-set sizes `N ∈ {5, 10, 15, 20}`. Ten sets are generated per
//! configuration; we derive per-set RNG seeds deterministically so every
//! experiment is reproducible.

use crate::rng::SplitMix64;
use fw_core::{Window, WindowSet};

/// Whether a generated set contains tumbling or hopping windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowShape {
    /// `s = r`; evaluated under partitioned-by semantics in the paper.
    Tumbling,
    /// `r = 2s`; evaluated under covered-by semantics in the paper.
    Hopping,
}

impl WindowShape {
    /// Short name used in experiment labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WindowShape::Tumbling => "tumbling",
            WindowShape::Hopping => "hopping",
        }
    }
}

/// Which generator produced a set ("R" and "S" in Tables I–IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Generator {
    /// Algorithm 6: fully random ranges/slides.
    RandomGen,
    /// Sequential multiples of one seed: the correlated pattern common in
    /// production dashboards (Figure 1).
    SequentialGen,
}

impl Generator {
    /// Short name used in experiment labels ("R" / "S").
    #[must_use]
    pub fn short(&self) -> &'static str {
        match self {
            Generator::RandomGen => "R",
            Generator::SequentialGen => "S",
        }
    }
}

/// Generator configuration (paper defaults via [`Default`]).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Seed slides for hopping windows (paper: {5, 10, 20}).
    pub seed_slides: Vec<u64>,
    /// Seed ranges for tumbling windows (paper: {2, 5, 10}).
    pub seed_ranges: Vec<u64>,
    /// Multiplier bound `k_s = k_r` (paper: 50).
    pub multiplier: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed_slides: vec![5, 10, 20],
            seed_ranges: vec![2, 5, 10],
            multiplier: 50,
        }
    }
}

/// Generates one window set.
///
/// RandomGen follows Algorithm 6: tumbling windows pick a seed range `r0`
/// and then `r` uniformly from `{2·r0, …, k_r·r0}`; hopping windows pick a
/// seed slide `s0`, `s` uniformly from `{2·s0, …, k_s·s0}`, and `r = 2s`.
/// SequentialGen instead walks the multiples `2·x0, 3·x0, …` in order.
/// Duplicates are regenerated (window sets are duplicate-free).
#[must_use]
pub fn generate_window_set(
    generator: Generator,
    shape: WindowShape,
    size: usize,
    config: &GenConfig,
    seed: u64,
) -> WindowSet {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut windows: Vec<Window> = Vec::with_capacity(size);
    match generator {
        Generator::RandomGen => {
            while windows.len() < size {
                let w = match shape {
                    WindowShape::Tumbling => {
                        let r0 = config.seed_ranges[rng.gen_index(config.seed_ranges.len())];
                        let k = rng.gen_range_inclusive_u64(2..=config.multiplier);
                        Window::tumbling(k * r0).expect("positive range")
                    }
                    WindowShape::Hopping => {
                        let s0 = config.seed_slides[rng.gen_index(config.seed_slides.len())];
                        let k = rng.gen_range_inclusive_u64(2..=config.multiplier);
                        let s = k * s0;
                        Window::hopping(2 * s, s).expect("r = 2s > s")
                    }
                };
                if !windows.contains(&w) {
                    windows.push(w);
                }
            }
        }
        Generator::SequentialGen => {
            let x0 = match shape {
                WindowShape::Tumbling => {
                    config.seed_ranges[rng.gen_index(config.seed_ranges.len())]
                }
                WindowShape::Hopping => config.seed_slides[rng.gen_index(config.seed_slides.len())],
            };
            for i in 0..size as u64 {
                let x = (i + 2) * x0; // 2·x0, 3·x0, ...
                let w = match shape {
                    WindowShape::Tumbling => Window::tumbling(x).expect("positive range"),
                    WindowShape::Hopping => Window::hopping(2 * x, x).expect("r = 2s > s"),
                };
                windows.push(w);
            }
        }
    }
    WindowSet::new(windows).expect("non-empty, deduplicated set")
}

/// The four (generator, shape) panels every throughput figure of the
/// paper's evaluation uses, in the paper's order.
#[must_use]
pub fn evaluation_panels() -> [(Generator, WindowShape); 4] {
    [
        (Generator::RandomGen, WindowShape::Tumbling),
        (Generator::RandomGen, WindowShape::Hopping),
        (Generator::SequentialGen, WindowShape::Tumbling),
        (Generator::SequentialGen, WindowShape::Hopping),
    ]
}

/// Configuration label in the paper's notation, e.g. "R-5-tumbling".
#[must_use]
pub fn setup_label(generator: Generator, shape: WindowShape, size: usize) -> String {
    format!("{}-{}-{}", generator.short(), size, shape.name())
}

/// The ten window sets of one experimental configuration, with seeds
/// derived from the configuration so runs are reproducible.
#[must_use]
pub fn generate_runs(
    generator: Generator,
    shape: WindowShape,
    size: usize,
    config: &GenConfig,
    runs: usize,
) -> Vec<WindowSet> {
    (0..runs as u64)
        .map(|run| {
            // Stable per-configuration seed: mix the label parameters.
            let seed = (0x5DEECE66D ^ ((size as u64) << 32))
                | ((run + 1) * 0x9E3779B9)
                | match (generator, shape) {
                    (Generator::RandomGen, WindowShape::Tumbling) => 0x1000_0000,
                    (Generator::RandomGen, WindowShape::Hopping) => 0x2000_0000,
                    (Generator::SequentialGen, WindowShape::Tumbling) => 0x3000_0000,
                    (Generator::SequentialGen, WindowShape::Hopping) => 0x4000_0000,
                };
            generate_window_set(generator, shape, size, config, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tumbling_sets_respect_algorithm6() {
        let config = GenConfig::default();
        for seed in 0..20 {
            let ws = generate_window_set(
                Generator::RandomGen,
                WindowShape::Tumbling,
                5,
                &config,
                seed,
            );
            assert_eq!(ws.len(), 5);
            for w in ws.iter() {
                assert!(w.is_tumbling());
                // r = k·r0 with r0 ∈ {2,5,10}, k ∈ [2,50] ⇒ 4 ≤ r ≤ 500 and
                // r is a multiple of some seed with multiplier ≥ 2.
                assert!(w.range() >= 4 && w.range() <= 500, "{w}");
                assert!(
                    [2u64, 5, 10]
                        .iter()
                        .any(|r0| w.range() % r0 == 0 && w.range() / r0 >= 2),
                    "{w}"
                );
            }
        }
    }

    #[test]
    fn random_hopping_sets_have_r_equal_2s() {
        let config = GenConfig::default();
        for seed in 0..20 {
            let ws =
                generate_window_set(Generator::RandomGen, WindowShape::Hopping, 5, &config, seed);
            for w in ws.iter() {
                assert_eq!(w.range(), 2 * w.slide(), "{w}");
                assert!(w.slide() >= 10 && w.slide() <= 1000, "{w}");
            }
        }
    }

    #[test]
    fn sequential_tumbling_walks_multiples() {
        let config = GenConfig::default();
        let ws = generate_window_set(
            Generator::SequentialGen,
            WindowShape::Tumbling,
            5,
            &config,
            7,
        );
        let ranges: Vec<u64> = ws.iter().map(Window::range).collect();
        let r0 = ranges[0] / 2;
        assert!([2u64, 5, 10].contains(&r0), "seed {r0}");
        let expect: Vec<u64> = (2..7).map(|k| k * r0).collect();
        assert_eq!(ranges, expect);
    }

    #[test]
    fn sequential_sets_chain_under_coverage() {
        // 2r0 covers 4r0 and 6r0, etc: the sequential pattern is exactly
        // what factor windows exploit (Figure 1's motivation).
        let config = GenConfig::default();
        let ws = generate_window_set(
            Generator::SequentialGen,
            WindowShape::Tumbling,
            10,
            &config,
            3,
        );
        // Multiples 2r0..11r0: divisible pairs (4,2),(6,2),(8,2),(10,2),
        // (6,3),(9,3),(8,4),(10,5) — exactly 8.
        let covered_pairs = ws
            .iter()
            .flat_map(|a| ws.iter().map(move |b| (a, b)))
            .filter(|(a, b)| fw_core::coverage::is_strictly_covered_by(a, b))
            .count();
        assert_eq!(covered_pairs, 8);
    }

    #[test]
    fn runs_are_deterministic_and_distinct() {
        let config = GenConfig::default();
        let a = generate_runs(Generator::RandomGen, WindowShape::Tumbling, 5, &config, 10);
        let b = generate_runs(Generator::RandomGen, WindowShape::Tumbling, 5, &config, 10);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        // At least some of the ten sets differ from each other.
        let distinct: std::collections::HashSet<String> =
            a.iter().map(|ws| ws.to_string()).collect();
        assert!(distinct.len() >= 8, "{distinct:?}");
    }

    #[test]
    fn large_sets_generate_without_duplicates() {
        let config = GenConfig::default();
        for shape in [WindowShape::Tumbling, WindowShape::Hopping] {
            let ws = generate_window_set(Generator::RandomGen, shape, 20, &config, 42);
            assert_eq!(ws.len(), 20);
        }
    }
}
