//! Synthetic datasets (Section V-A2): constant-pace streams matching the
//! cost model's steady ingestion-rate assumption (η = 1 event per time
//! unit), keyed by a small device-id space.

use crate::rng::SplitMix64;
use fw_engine::{Event, EventBatch};

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of events (paper: 1M for Synthetic-1M, 10M for Synthetic-10M).
    pub events: usize,
    /// Number of distinct grouping keys (device ids).
    pub keys: u32,
    /// RNG seed for the value stream.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Synthetic-1M at a given scale divisor.
    #[must_use]
    pub fn synthetic_1m(scale: usize) -> Self {
        SyntheticConfig {
            events: 1_000_000 / scale.max(1),
            keys: 1,
            seed: 0xA11CE,
        }
    }

    /// Synthetic-10M at a given scale divisor.
    #[must_use]
    pub fn synthetic_10m(scale: usize) -> Self {
        SyntheticConfig {
            events: 10_000_000 / scale.max(1),
            keys: 1,
            seed: 0xB0B,
        }
    }
}

/// Generates a constant-pace stream as columns: event `i` arrives at time
/// `i` with a uniformly random sensor reading and a round-robin key. One
/// event per time unit is exactly the cost model's η = 1. This is the
/// generator's native output — the columns feed
/// `Pipeline::push_columns` directly, with no row-oriented intermediate;
/// [`synthetic_stream`] transposes it for row-oriented consumers.
#[must_use]
pub fn synthetic_columns(config: &SyntheticConfig) -> EventBatch {
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let keys = config.keys.max(1);
    let mut batch = EventBatch::with_capacity(config.events);
    for t in 0..config.events as u64 {
        batch.push_parts(
            t,
            (t % u64::from(keys)) as u32,
            rng.gen_range_f64(0.0..100.0),
        );
    }
    batch
}

/// Row-oriented view of [`synthetic_columns`] (same seed ⇒ the exact same
/// events).
#[must_use]
pub fn synthetic_stream(config: &SyntheticConfig) -> Vec<Event> {
    synthetic_columns(config).iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_pace_and_round_robin_keys() {
        let config = SyntheticConfig {
            events: 1000,
            keys: 4,
            seed: 1,
        };
        let events = synthetic_stream(&config);
        assert_eq!(events.len(), 1000);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.time, i as u64);
            assert_eq!(e.key, (i % 4) as u32);
            assert!((0.0..100.0).contains(&e.value));
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let config = SyntheticConfig {
            events: 100,
            keys: 2,
            seed: 7,
        };
        assert_eq!(synthetic_stream(&config), synthetic_stream(&config));
        let other = SyntheticConfig { seed: 8, ..config };
        assert_ne!(synthetic_stream(&config), synthetic_stream(&other));
    }

    #[test]
    fn columns_and_stream_agree() {
        let config = SyntheticConfig {
            events: 500,
            keys: 3,
            seed: 42,
        };
        let columns = synthetic_columns(&config);
        let stream = synthetic_stream(&config);
        assert_eq!(columns.len(), stream.len());
        let transposed: Vec<Event> = columns.iter().collect();
        assert_eq!(transposed, stream);
    }

    #[test]
    fn paper_presets_scale() {
        assert_eq!(SyntheticConfig::synthetic_1m(1).events, 1_000_000);
        assert_eq!(SyntheticConfig::synthetic_10m(20).events, 500_000);
        assert_eq!(SyntheticConfig::synthetic_10m(0).events, 10_000_000);
    }
}
