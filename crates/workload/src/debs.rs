//! A DEBS-2012-Grand-Challenge-like dataset standing in for Real-32M.
//!
//! The paper pairs the original trace's timestamps with the `mf01`
//! ("electrical power main-phase 1") sensor column of manufacturing
//! equipment. That trace is not redistributable, so we synthesize a signal
//! with the same structural features: a base load, slow daily drift,
//! machine duty cycles (square wave), Gaussian noise, and occasional power
//! spikes — at the same constant arrival pace the throughput experiments
//! rely on. See DESIGN.md §5 for the substitution rationale: the engine's
//! per-event work is value-independent, so throughput depends only on
//! arrival pace and key cardinality, both of which are preserved.

use crate::rng::SplitMix64;
use fw_engine::{Event, EventBatch};

/// Configuration for the DEBS-like generator.
#[derive(Debug, Clone, Copy)]
pub struct DebsConfig {
    /// Number of events (paper: ~32M).
    pub events: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DebsConfig {
    /// Real-32M at a given scale divisor.
    #[must_use]
    pub fn real_32m(scale: usize) -> Self {
        DebsConfig {
            events: 32_000_000 / scale.max(1),
            seed: 0xDEB5,
        }
    }
}

/// Generates the mf01-like signal as columns. Single machine (one key),
/// constant pace, values in watts around a 1.2 kW base load. This is the
/// generator's native output (feed it via `Pipeline::push_columns`);
/// [`debs_stream`] transposes it for row-oriented consumers.
#[must_use]
pub fn debs_columns(config: &DebsConfig) -> EventBatch {
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let mut events = EventBatch::with_capacity(config.events);
    let mut spike_remaining = 0u32;
    for t in 0..config.events as u64 {
        let tf = t as f64;
        let base = 1200.0;
        // Slow drift over ~86_400 ticks (a "day" at 1 Hz).
        let drift = 80.0 * (tf * std::f64::consts::TAU / 86_400.0).sin();
        // Machine duty cycle: ~300 ticks on, ~300 ticks off.
        let duty = if (t / 300) % 2 == 0 { 450.0 } else { 0.0 };
        let noise: f64 = rng.gen_range_f64(-1.0..1.0) + rng.gen_range_f64(-1.0..1.0); // ~triangular
        let noise = noise * 15.0;
        if spike_remaining == 0 && rng.gen_range_u64(0..100_000) == 0 {
            spike_remaining = rng.gen_range_u64(5..40) as u32;
        }
        let spike = if spike_remaining > 0 {
            spike_remaining -= 1;
            900.0
        } else {
            0.0
        };
        events.push_parts(t, 0, base + drift + duty + noise + spike);
    }
    events
}

/// Row-oriented view of [`debs_columns`] (same seed ⇒ the exact same
/// events).
#[must_use]
pub fn debs_stream(config: &DebsConfig) -> Vec<Event> {
    debs_columns(config).iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_pace_single_key() {
        let events = debs_stream(&DebsConfig {
            events: 5000,
            seed: 1,
        });
        assert_eq!(events.len(), 5000);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.time, i as u64);
            assert_eq!(e.key, 0);
        }
    }

    #[test]
    fn signal_has_duty_cycle_structure() {
        let events = debs_stream(&DebsConfig {
            events: 1200,
            seed: 2,
        });
        // First "on" phase (ticks 0..300) should sit well above the first
        // "off" phase (ticks 300..600).
        let on: f64 = events[..300].iter().map(|e| e.value).sum::<f64>() / 300.0;
        let off: f64 = events[300..600].iter().map(|e| e.value).sum::<f64>() / 300.0;
        assert!(on - off > 300.0, "on={on} off={off}");
    }

    #[test]
    fn values_stay_physical() {
        let events = debs_stream(&DebsConfig {
            events: 100_000,
            seed: 3,
        });
        for e in &events {
            assert!(e.value > 800.0 && e.value < 3200.0, "value {}", e.value);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = debs_stream(&DebsConfig {
            events: 1000,
            seed: 9,
        });
        let b = debs_stream(&DebsConfig {
            events: 1000,
            seed: 9,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn preset_scaling() {
        assert_eq!(DebsConfig::real_32m(64).events, 500_000);
    }

    #[test]
    fn columns_and_stream_agree() {
        let config = DebsConfig {
            events: 2000,
            seed: 5,
        };
        let columns = debs_columns(&config);
        let stream = debs_stream(&config);
        assert_eq!(columns.iter().collect::<Vec<Event>>(), stream);
    }
}
