//! # fw-workload — datasets and window-set generators for the evaluation
//!
//! Implements Section V-A of the paper: the RandomGen (Algorithm 6) and
//! SequentialGen window-set generators, constant-pace synthetic streams
//! (Synthetic-1M / Synthetic-10M), and a DEBS-2012-like manufacturing
//! sensor stream substituting for Real-32M (see DESIGN.md §5).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod debs;
pub mod rng;
pub mod synthetic;
pub mod window_sets;

pub use debs::{debs_columns, debs_stream, DebsConfig};
pub use rng::SplitMix64;
pub use synthetic::{synthetic_columns, synthetic_stream, SyntheticConfig};
pub use window_sets::{
    evaluation_panels, generate_runs, generate_window_set, setup_label, GenConfig, Generator,
    WindowShape,
};
