//! # fw-dist — distributed shard execution over sockets
//!
//! The socket-backed sibling of fw-engine's in-process
//! [`ShardedPipeline`](fw_engine::ShardedPipeline): a coordinator
//! ([`DistPipeline`]) hash-routes columnar event batches to N
//! `fw-worker` *processes*, each running an ordinary local
//! [`PlanPipeline`](fw_engine::PlanPipeline) over its key slice, and
//! gathers sealed rows back into the engine's canonical result order —
//! bit-identical (`f64::to_bits`) to the sequential engine.
//!
//! Layers:
//!
//! - [`proto`] — the FWD1 frame protocol, layered on fw-serve's FWS1
//!   framing and FWB1 columnar batch encoding.
//! - [`coordinator`] ([`DistPipeline`], [`DistFactory`]) — scatter,
//!   watermark broadcast, gather/merge, checkpoint partition/merge,
//!   loud-failure supervision.
//! - [`worker`] ([`Worker`]) — the accept loop and per-connection
//!   engine loop that `fw-worker` runs.
//! - [`spawn`] ([`WorkerProc`]) — local process supervision: spawn,
//!   address discovery, kill-on-drop.
//!
//! Both hot paths are allocation-free at steady state: the coordinator
//! ships staged columns with vectored writes from recycled scratch
//! buffers, and workers decode frames in place into one recycled
//! [`EventBatch`](fw_engine::EventBatch) per connection.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod coordinator;
pub mod proto;
pub mod spawn;
pub mod worker;

pub use coordinator::{DistFactory, DistPipeline, REPLY_TIMEOUT, SCATTER_CHUNK};
pub use spawn::{WorkerProc, WORKER_BIN_ENV};
pub use worker::{Worker, HANDSHAKE_TIMEOUT};
