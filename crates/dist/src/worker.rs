//! The worker half of distributed shard execution: accepts coordinator
//! connections and runs one local [`PlanPipeline`] per connection over
//! the FWD1 protocol ([`crate::proto`]).
//!
//! Each connection is its own shard: the coordinator has already
//! key-partitioned the stream, so the worker just replays its slice
//! through an ordinary pipeline and ships sealed rows back. The receive
//! hot path is allocation-free at steady state — raw frames land in the
//! connection's [`FrameReader`] body buffer and batches decode in place
//! into one recycled [`EventBatch`].
//!
//! A half-open connection cannot wedge the worker: the handshake
//! (`Hello` + `Setup`) runs under [`HANDSHAKE_TIMEOUT`]; only after the
//! pipeline is built does the socket revert to blocking reads.

use crate::proto::{self, Setup};
use fw_core::{FromJson, QueryPlan};
use fw_engine::{EngineError, EventBatch, PlanPipeline};
use fw_serve::wire::{decode_batch_into, FrameReader, FrameWriter, WireError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long a connection may dawdle through the `Hello`/`Setup`
/// handshake before the worker drops it (bounded accept — a silent
/// client cannot hold a connection slot open forever).
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound worker listener; [`Worker::run`] accepts coordinators.
#[derive(Debug)]
pub struct Worker {
    listener: TcpListener,
}

impl Worker {
    /// Binds the worker's listening socket.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Worker> {
        Ok(Worker {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (the ephemeral port when bound to `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one thread per coordinator link.
    /// Returns only if the listener itself fails.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            std::thread::spawn(move || {
                // Connection errors tear down this shard link only; the
                // coordinator observes the close and fails loud its side.
                let _ = serve_connection(stream);
            });
        }
    }

    /// Runs the accept loop on a background thread — an in-process
    /// worker for tests and benches that don't need process isolation.
    pub fn spawn_thread(self) -> std::thread::JoinHandle<std::io::Result<()>> {
        std::thread::spawn(move || self.run())
    }
}

/// The per-connection engine loop; see module docs.
fn serve_connection(stream: TcpStream) -> Result<(), WireError> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut frames = FrameReader::new();
    let mut out = FrameWriter::new();

    // Handshake (under the read timeout): Hello, then Setup.
    let (kind, payload) = frames.read_raw(&mut reader)?;
    if kind != proto::KIND_HELLO {
        return Err(WireError::UnknownKind { kind });
    }
    proto::decode_hello(payload)?;
    out.stage_with(proto::KIND_HELLO_ACK, proto::encode_hello);
    out.flush_to(&mut writer)?;

    let (kind, payload) = frames.read_raw(&mut reader)?;
    if kind != proto::KIND_SETUP {
        return Err(WireError::UnknownKind { kind });
    }
    let setup = proto::decode_setup(payload)?;
    let (mut plan, pipeline) = match build_pipeline(&setup) {
        Ok(built) => built,
        Err(e) => {
            send_err(&mut out, &mut writer, &e)?;
            return Ok(());
        }
    };
    let mut pipeline = Some(pipeline);
    out.stage_with(proto::KIND_SETUP_ACK, |_| {});
    out.flush_to(&mut writer)?;
    stream.set_read_timeout(None)?;

    // Steady state: one recycled batch, one deferred-death slot. After
    // an engine error the pipeline is dead — data frames are dropped,
    // requests are answered with the error again (the coordinator's
    // next synchronous call surfaces it).
    let mut batch = EventBatch::new();
    let mut dead: Option<EngineError> = None;
    // A read error means the coordinator hung up (cleanly or not): this
    // shard is done.
    while let Ok((kind, payload)) = frames.read_raw(&mut reader) {
        match kind {
            proto::KIND_BATCH => {
                if dead.is_some() {
                    continue;
                }
                let pushed = decode_batch_into(payload, &mut batch)
                    .map_err(|e| EngineError::Distributed(e.to_string()))
                    .and_then(|()| {
                        let p = pipeline.as_mut().expect("pipeline until finish");
                        let (times, keys, values) = batch.columns();
                        p.push_columns(times, keys, values)
                    });
                if let Err(e) = pushed {
                    send_err(&mut out, &mut writer, &e)?;
                    dead = Some(e);
                }
            }
            proto::KIND_WATERMARK if dead.is_none() => {
                let advanced = decode_watermark(payload).and_then(|w| {
                    pipeline
                        .as_mut()
                        .expect("pipeline until finish")
                        .advance_watermark(w)
                });
                if let Err(e) = advanced {
                    send_err(&mut out, &mut writer, &e)?;
                    dead = Some(e);
                }
            }
            proto::KIND_WATERMARK => {}
            _ if dead.is_some() => {
                // Requests against a dead shard re-surface the error.
                let e = dead.clone().expect("checked above");
                send_err(&mut out, &mut writer, &e)?;
            }
            proto::KIND_POLL => {
                let rows = pipeline
                    .as_mut()
                    .expect("pipeline until finish")
                    .poll_results();
                out.stage_with(proto::KIND_ROWS, |buf| proto::encode_rows(&rows, buf));
                out.flush_to(&mut writer)?;
            }
            proto::KIND_STATS => {
                let p = pipeline.as_ref().expect("pipeline until finish");
                let (interner_slots, interner_bytes) = p.interner_stats();
                let reply = proto::StatsReply {
                    stats: p.stats(),
                    events_pushed: p.events_processed(),
                    results_emitted: p.results_emitted(),
                    watermark: p.watermark(),
                    buffered: p.buffered() as u64,
                    interner_slots,
                    interner_bytes,
                };
                out.stage_with(proto::KIND_STATS_REPLY, |buf| {
                    proto::encode_stats(&reply, buf);
                });
                out.flush_to(&mut writer)?;
            }
            proto::KIND_PROFILES => {
                let profiles = pipeline
                    .as_ref()
                    .expect("pipeline until finish")
                    .node_profiles();
                out.stage_with(proto::KIND_PROFILES_REPLY, |buf| {
                    proto::encode_profiles(&profiles, buf);
                });
                out.flush_to(&mut writer)?;
            }
            proto::KIND_REBUILD => {
                let rebuilt = proto::decode_rebuild(payload)
                    .map_err(|e| EngineError::Distributed(e.to_string()))
                    .and_then(|(watermark, plan_json)| {
                        let next = QueryPlan::from_json(&plan_json).map_err(|e| {
                            EngineError::InvalidPlan(format!("rebuild plan json: {e:?}"))
                        })?;
                        pipeline
                            .as_mut()
                            .expect("pipeline until finish")
                            .rebuild(&next, watermark)?;
                        Ok(next)
                    });
                match rebuilt {
                    Ok(next) => {
                        plan = next;
                        out.stage_with(proto::KIND_REBUILD_ACK, |_| {});
                        out.flush_to(&mut writer)?;
                    }
                    Err(e) => send_err(&mut out, &mut writer, &e)?,
                }
            }
            proto::KIND_EXPORT => {
                let mut doc = Vec::new();
                let exported = pipeline
                    .as_mut()
                    .expect("pipeline until finish")
                    .checkpoint(&plan, &mut doc);
                match exported {
                    Ok(()) => {
                        out.stage_with(proto::KIND_IMAGE, |buf| buf.extend_from_slice(&doc));
                        out.flush_to(&mut writer)?;
                    }
                    Err(e) => {
                        let e = EngineError::Distributed(format!("checkpoint export: {e}"));
                        send_err(&mut out, &mut writer, &e)?;
                    }
                }
            }
            proto::KIND_FINISH => {
                let finished = proto::decode_finish(payload)
                    .map_err(|e| EngineError::Distributed(e.to_string()))
                    .and_then(|seal| {
                        let mut p = pipeline.take().expect("pipeline until finish");
                        if let Some(seal) = seal {
                            if seal > p.watermark() {
                                p.advance_watermark(seal)?;
                            }
                        }
                        p.finish()
                    });
                match finished {
                    Ok(run) => {
                        let reply = proto::FinishReply {
                            events_processed: run.events_processed,
                            results_emitted: run.results_emitted,
                            elapsed_nanos: run.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                            stats: run.stats,
                            rows: run.results,
                        };
                        out.stage_with(proto::KIND_FINISH_REPLY, |buf| {
                            proto::encode_finish_reply(&reply, buf);
                        });
                        out.flush_to(&mut writer)?;
                    }
                    Err(e) => send_err(&mut out, &mut writer, &e)?,
                }
                break;
            }
            kind => {
                let e = EngineError::Distributed(format!("unexpected frame kind {kind:#04x}"));
                send_err(&mut out, &mut writer, &e)?;
            }
        }
    }
    Ok(())
}

fn build_pipeline(setup: &Setup) -> Result<(QueryPlan, PlanPipeline), EngineError> {
    let plan = QueryPlan::from_json(&setup.plan_json)
        .map_err(|e| EngineError::InvalidPlan(format!("setup plan json: {e:?}")))?;
    let pipeline = match &setup.snapshot {
        Some(doc) => PlanPipeline::restore(&plan, setup.opts, &mut &doc[..])
            .map_err(|e| EngineError::Distributed(format!("snapshot restore: {e}")))?,
        None if setup.grouped => PlanPipeline::compile_grouped(&plan, setup.opts)?,
        None => PlanPipeline::compile(&plan, setup.opts)?,
    };
    Ok((plan, pipeline))
}

fn decode_watermark(payload: &[u8]) -> Result<u64, EngineError> {
    if payload.len() != 8 {
        return Err(EngineError::Distributed(
            "watermark frame must carry exactly 8 bytes".into(),
        ));
    }
    Ok(u64::from_le_bytes(
        payload.try_into().expect("length checked"),
    ))
}

fn send_err(
    out: &mut FrameWriter,
    writer: &mut TcpStream,
    err: &EngineError,
) -> Result<(), WireError> {
    out.stage_with(proto::KIND_ERR, |buf| proto::encode_err(err, buf));
    out.flush_to(writer)
}
