//! The coordinator half of distributed shard execution: [`DistPipeline`]
//! scatters columnar batches over worker sockets and gathers sealed
//! results back into canonical order.
//!
//! ## Scatter
//!
//! Events are hash-routed with the *same* one-multiply route function as
//! the in-process [`ShardedPipeline`](fw_engine::ShardedPipeline)
//! ([`fw_engine::route_of`]), staged per worker in a recycled
//! [`EventBatch`], and shipped as FWB1 columnar frames once a staging
//! batch reaches [`SCATTER_CHUNK`] events (or at the next barrier). The
//! send path is allocation-free at steady state: frame headers transit
//! one per-connection scratch buffer and the staged columns go to the
//! socket with a vectored write ([`FrameWriter::write_columns`]).
//!
//! ## Gather and merge
//!
//! Each key lives on exactly one worker, so every (window, instance,
//! key) result row is produced exactly once; gathering is concatenation
//! plus the engine's canonical sort ([`fw_engine::sorted_results`]) —
//! bit-identical (`f64::to_bits`) to the sequential engine, the same
//! contract the in-process shards pin.
//!
//! ## Failure semantics
//!
//! Transport failures fail loud and poison the pipeline: the first
//! error (a worker process dying mid-stream, a protocol violation, a
//! reply timeout) is recorded and every subsequent fallible call
//! returns it. Infallible-looking accessors ([`DistPipeline::stats`],
//! [`DistPipeline::poll_results`]) record the failure internally and
//! return empty data; the next fallible call surfaces it. Replies are
//! read under [`REPLY_TIMEOUT`], so a wedged (not dead) worker cannot
//! hang the coordinator, and spawned worker processes are killed on
//! drop, so no zombies outlive their pipeline.

use crate::proto::{self, Setup};
use crate::spawn::WorkerProc;
use fw_core::{QueryPlan, ToJson};
use fw_engine::checkpoint::{CheckpointError, CheckpointResult};
use fw_engine::profile::add_shard_profiles;
use fw_engine::{
    merge_pipeline_snapshots, partition_pipeline_snapshot, route_of, sorted_results,
    BackendFactory, EngineError, EventBatch, ExecBackend, ExecStats, NodeProfile, PipelineOptions,
    Result, RunOutput, WindowResult,
};
use fw_serve::wire::{FrameReader, FrameWriter, WireError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Events staged per worker before a batch frame is shipped — matches
/// the in-process shards' chunking so per-event scatter cost and
/// downstream batch shapes are comparable.
pub const SCATTER_CHUNK: usize = 1024;

/// How long the coordinator waits for one reply frame before declaring
/// the worker lost. A dead process closes its socket and fails much
/// faster; the timeout bounds the wedged-but-alive case.
pub const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Connect timeout per worker.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// One coordinator→worker shard link.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    frames: FrameReader,
    out: FrameWriter,
    staging: EventBatch,
}

impl Conn {
    fn open(addr: SocketAddr, setup: &Setup) -> Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)
            .map_err(|e| EngineError::Distributed(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(REPLY_TIMEOUT))
            .map_err(|e| EngineError::Distributed(format!("socket setup {addr}: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| EngineError::Distributed(format!("socket clone {addr}: {e}")))?,
        );
        let mut conn = Conn {
            writer: stream,
            reader,
            frames: FrameReader::new(),
            out: FrameWriter::new(),
            staging: EventBatch::with_capacity(SCATTER_CHUNK),
        };
        conn.out.stage_with(proto::KIND_HELLO, proto::encode_hello);
        conn.out
            .stage_with(proto::KIND_SETUP, |buf| proto::encode_setup(setup, buf));
        conn.flush_frames()?;
        let hello = conn.expect(proto::KIND_HELLO_ACK)?;
        proto::decode_hello(hello).map_err(wire_err)?;
        conn.expect(proto::KIND_SETUP_ACK)?;
        Ok(conn)
    }

    /// Writes whatever control frames are staged in the scratch buffer.
    fn flush_frames(&mut self) -> Result<()> {
        self.out.flush_to(&mut self.writer).map_err(wire_err)
    }

    /// Ships the staging batch as one vectored columnar frame.
    fn flush_staging(&mut self) -> Result<()> {
        if self.staging.is_empty() {
            return Ok(());
        }
        let (times, keys, values) = self.staging.columns();
        self.out
            .write_columns(&mut self.writer, proto::KIND_BATCH, times, keys, values)
            .map_err(wire_err)?;
        self.staging.clear();
        Ok(())
    }

    /// Reads one reply frame, expecting `expected`; a [`proto::KIND_ERR`]
    /// frame becomes the worker's reconstructed engine error, anything
    /// else a protocol failure.
    fn expect(&mut self, expected: u8) -> Result<&[u8]> {
        let (kind, payload) = self.frames.read_raw(&mut self.reader).map_err(wire_err)?;
        if kind == proto::KIND_ERR {
            return Err(proto::decode_err(payload).unwrap_or_else(wire_err));
        }
        if kind != expected {
            return Err(EngineError::Distributed(format!(
                "expected reply kind {expected:#04x}, worker sent {kind:#04x}"
            )));
        }
        Ok(payload)
    }
}

fn wire_err(e: WireError) -> EngineError {
    match e {
        WireError::Closed => {
            EngineError::Distributed("worker closed the connection mid-stream".into())
        }
        other => EngineError::Distributed(other.to_string()),
    }
}

struct Inner {
    conns: Vec<Conn>,
    /// Locally spawned worker processes (killed on drop). Empty when the
    /// coordinator connected to externally managed workers.
    procs: Vec<WorkerProc>,
    plan_json: String,
    opts: PipelineOptions,
    pushed: u64,
    last_time: u64,
    announced: u64,
    replans: u64,
    failed: Option<EngineError>,
    start: Instant,
}

impl Inner {
    fn check(&self) -> Result<()> {
        match &self.failed {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn fail<T>(&mut self, e: EngineError) -> Result<T> {
        self.failed = Some(e.clone());
        Err(e)
    }

    fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()> {
        self.check()?;
        if times.len() != keys.len() || times.len() != values.len() {
            return Err(EngineError::ColumnLengthMismatch {
                times: times.len(),
                keys: keys.len(),
                values: values.len(),
            });
        }
        let shards = self.conns.len();
        for i in 0..times.len() {
            let shard = route_of(keys[i], shards);
            let conn = &mut self.conns[shard];
            conn.staging.push_parts(times[i], keys[i], values[i]);
            if conn.staging.len() >= SCATTER_CHUNK {
                if let Err(e) = conn.flush_staging() {
                    return self.fail(e);
                }
            }
        }
        // The global maximum routed time (not the chunk's last element —
        // input may be jittered within the reorder slack) is the
        // end-of-stream seal horizon every worker is advanced to.
        for &t in times {
            self.last_time = self.last_time.max(t);
        }
        self.pushed += times.len() as u64;
        Ok(())
    }

    /// Ships every staging batch — the write barrier before any control
    /// frame, so batches and watermarks stay ordered per connection.
    fn flush_all(&mut self) -> Result<()> {
        for i in 0..self.conns.len() {
            if let Err(e) = self.conns[i].flush_staging() {
                return self.fail(e);
            }
        }
        Ok(())
    }

    fn advance_watermark(&mut self, watermark: u64) -> Result<()> {
        self.check()?;
        self.flush_all()?;
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            conn.out.stage_with(proto::KIND_WATERMARK, |buf| {
                buf.extend_from_slice(&watermark.to_le_bytes());
            });
            if let Err(e) = conn.flush_frames() {
                return self.fail(e);
            }
        }
        self.announced = self.announced.max(watermark);
        Ok(())
    }

    fn poll_results(&mut self) -> Result<Vec<WindowResult>> {
        self.check()?;
        self.flush_all()?;
        // Fan the request out before reading any reply: workers drain
        // concurrently, the coordinator gathers in worker order.
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            conn.out.stage_with(proto::KIND_POLL, |_| {});
            if let Err(e) = conn.flush_frames() {
                return self.fail(e);
            }
        }
        let mut rows = Vec::new();
        for i in 0..self.conns.len() {
            match self.conns[i]
                .expect(proto::KIND_ROWS)
                .and_then(|payload| proto::decode_rows(payload).map_err(wire_err))
            {
                Ok(part) => rows.extend(part),
                Err(e) => return self.fail(e),
            }
        }
        Ok(sorted_results(rows))
    }

    fn rebuild(&mut self, plan: &QueryPlan, watermark: u64) -> Result<()> {
        self.check()?;
        self.flush_all()?;
        let plan_json = plan.to_json();
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            conn.out.stage_with(proto::KIND_REBUILD, |buf| {
                proto::encode_rebuild(watermark, &plan_json, buf);
            });
            if let Err(e) = conn.flush_frames() {
                return self.fail(e);
            }
        }
        for i in 0..self.conns.len() {
            if let Err(e) = self.conns[i].expect(proto::KIND_REBUILD_ACK).map(|_| ()) {
                return self.fail(e);
            }
        }
        self.plan_json = plan_json;
        self.replans += 1;
        Ok(())
    }

    fn stats_replies(&mut self) -> Result<Vec<proto::StatsReply>> {
        self.check()?;
        self.flush_all()?;
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            conn.out.stage_with(proto::KIND_STATS, |_| {});
            if let Err(e) = conn.flush_frames() {
                return self.fail(e);
            }
        }
        let mut replies = Vec::with_capacity(self.conns.len());
        for i in 0..self.conns.len() {
            match self.conns[i]
                .expect(proto::KIND_STATS_REPLY)
                .and_then(|payload| proto::decode_stats(payload).map_err(wire_err))
            {
                Ok(reply) => replies.push(reply),
                Err(e) => return self.fail(e),
            }
        }
        Ok(replies)
    }

    fn node_profiles(&mut self) -> Result<Vec<NodeProfile>> {
        self.check()?;
        self.flush_all()?;
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            conn.out.stage_with(proto::KIND_PROFILES, |_| {});
            if let Err(e) = conn.flush_frames() {
                return self.fail(e);
            }
        }
        let mut merged: Vec<NodeProfile> = Vec::new();
        for i in 0..self.conns.len() {
            match self.conns[i]
                .expect(proto::KIND_PROFILES_REPLY)
                .and_then(|payload| proto::decode_profiles(payload).map_err(wire_err))
            {
                Ok(part) => add_shard_profiles(&mut merged, &part),
                Err(e) => return self.fail(e),
            }
        }
        Ok(merged)
    }

    fn export_snapshot(&mut self) -> Result<Vec<u8>> {
        self.check()?;
        self.flush_all()?;
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            conn.out.stage_with(proto::KIND_EXPORT, |_| {});
            if let Err(e) = conn.flush_frames() {
                return self.fail(e);
            }
        }
        let mut parts = Vec::with_capacity(self.conns.len());
        for i in 0..self.conns.len() {
            match self.conns[i].expect(proto::KIND_IMAGE).map(<[u8]>::to_vec) {
                Ok(doc) => parts.push(doc),
                Err(e) => return self.fail(e),
            }
        }
        merge_pipeline_snapshots(&parts, self.replans)
            .map_err(|e| EngineError::Distributed(format!("snapshot merge: {e}")))
    }

    fn finish(&mut self) -> Result<RunOutput> {
        self.check()?;
        self.flush_all()?;
        let seal = (self.pushed > 0).then(|| self.last_time + 1);
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            conn.out
                .stage_with(proto::KIND_FINISH, |buf| proto::encode_finish(seal, buf));
            if let Err(e) = conn.flush_frames() {
                return self.fail(e);
            }
        }
        let mut events = 0u64;
        let mut emitted = 0u64;
        let mut stats = ExecStats::default();
        let mut rows = Vec::new();
        for i in 0..self.conns.len() {
            match self.conns[i]
                .expect(proto::KIND_FINISH_REPLY)
                .and_then(|payload| proto::decode_finish_reply(payload).map_err(wire_err))
            {
                Ok(reply) => {
                    events += reply.events_processed;
                    emitted += reply.results_emitted;
                    stats = stats + reply.stats;
                    rows.extend(reply.rows);
                }
                Err(e) => return self.fail(e),
            }
        }
        // Replans are counted once at the façade, not once per shard —
        // the same contract the in-process shards keep.
        stats.replans = self.replans;
        Ok(RunOutput {
            events_processed: events,
            results_emitted: emitted,
            elapsed: self.start.elapsed(),
            results: sorted_results(rows),
            stats,
        })
    }

    fn watermark(&self) -> u64 {
        self.last_time
            .saturating_sub(self.opts.out_of_order)
            .max(self.announced)
    }

    fn buffered(&self) -> usize {
        self.conns.iter().map(|c| c.staging.len()).sum()
    }
}

/// A distributed shard pipeline: the socket-backed sibling of
/// [`fw_engine::ShardedPipeline`]. See the module docs for the scatter,
/// merge, and failure contracts.
pub struct DistPipeline {
    inner: Mutex<Inner>,
    workers: usize,
}

impl std::fmt::Debug for DistPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistPipeline")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl DistPipeline {
    /// Spawns `workers` local worker processes (loopback) and compiles
    /// `plan` on each. `grouped` selects the grouped/slot compile path
    /// (required for live plan swaps — query groups use it).
    pub fn compile(
        plan: &QueryPlan,
        opts: PipelineOptions,
        grouped: bool,
        workers: usize,
    ) -> Result<DistPipeline> {
        Self::build(plan, opts, grouped, workers, None)
    }

    /// Connects to externally managed workers (one shard per address)
    /// and compiles `plan` on each. The processes are *not* supervised
    /// by this pipeline — failure-injection tests own them.
    pub fn connect(
        plan: &QueryPlan,
        opts: PipelineOptions,
        grouped: bool,
        addrs: &[SocketAddr],
    ) -> Result<DistPipeline> {
        Self::build_at(plan, opts, grouped, addrs.to_vec(), Vec::new(), None)
    }

    /// Restores a pipeline from a full checkpoint document produced by
    /// [`DistPipeline::export_snapshot`] (or by any other backend — the
    /// document format is shard-count-free), re-partitioning state
    /// across `workers` fresh worker processes. Elastic rescale: the
    /// worker count may differ from the checkpointing run's.
    pub fn restore(
        plan: &QueryPlan,
        opts: PipelineOptions,
        grouped: bool,
        workers: usize,
        snapshot: &[u8],
    ) -> CheckpointResult<DistPipeline> {
        Self::build(plan, opts, grouped, workers, Some(snapshot)).map_err(|e| CheckpointError::Io {
            kind: std::io::ErrorKind::Other,
            message: e.to_string(),
        })
    }

    fn build(
        plan: &QueryPlan,
        opts: PipelineOptions,
        grouped: bool,
        workers: usize,
        snapshot: Option<&[u8]>,
    ) -> Result<DistPipeline> {
        let workers = workers.max(1);
        let mut procs = Vec::with_capacity(workers);
        let mut addrs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let proc = WorkerProc::spawn()
                .map_err(|e| EngineError::Distributed(format!("spawn worker: {e}")))?;
            addrs.push(proc.addr());
            procs.push(proc);
        }
        Self::build_at(plan, opts, grouped, addrs, procs, snapshot)
    }

    fn build_at(
        plan: &QueryPlan,
        opts: PipelineOptions,
        grouped: bool,
        addrs: Vec<SocketAddr>,
        procs: Vec<WorkerProc>,
        snapshot: Option<&[u8]>,
    ) -> Result<DistPipeline> {
        assert!(!addrs.is_empty(), "at least one worker address");
        let plan_json = plan.to_json();
        // A restore re-partitions the checkpointed keyed state with the
        // same hash routing the scatter path uses, so every key's panes
        // land on the worker its future events will be routed to.
        let (summary, parts) = match snapshot {
            Some(doc) => {
                let (summary, parts) = partition_pipeline_snapshot(doc, addrs.len())
                    .map_err(|e| EngineError::Distributed(format!("snapshot partition: {e}")))?;
                (Some(summary), Some(parts))
            }
            None => (None, None),
        };
        let mut conns = Vec::with_capacity(addrs.len());
        for (i, &addr) in addrs.iter().enumerate() {
            let setup = Setup {
                grouped,
                opts,
                plan_json: plan_json.clone(),
                snapshot: parts.as_ref().map(|p| p[i].clone()),
            };
            conns.push(Conn::open(addr, &setup)?);
        }
        let inner = Inner {
            conns,
            procs,
            plan_json,
            opts,
            pushed: summary.map_or(0, |s| s.events_pushed),
            last_time: summary.map_or(0, |s| s.last_event_time),
            announced: summary.map_or(0, |s| s.watermark),
            replans: summary.map_or(0, |s| s.replans),
            failed: None,
            start: Instant::now(),
        };
        let workers = inner.conns.len();
        Ok(DistPipeline {
            inner: Mutex::new(inner),
            workers,
        })
    }

    /// Number of worker connections (= shards).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// OS process ids of locally spawned workers (empty for
    /// [`DistPipeline::connect`]); failure-injection hooks.
    #[must_use]
    pub fn worker_pids(&self) -> Vec<u32> {
        self.lock().procs.iter().map(WorkerProc::pid).collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pushes one event (scatter-staged; see [`SCATTER_CHUNK`]).
    pub fn push(&mut self, event: fw_engine::Event) -> Result<()> {
        self.lock()
            .push_columns(&[event.time], &[event.key], &[event.value])
    }

    /// Pushes a row-oriented batch.
    pub fn push_batch(&mut self, events: &[fw_engine::Event]) -> Result<()> {
        let batch = EventBatch::from_events(events);
        let (times, keys, values) = batch.columns();
        self.lock().push_columns(times, keys, values)
    }

    /// Pushes equal-length columns, scattering per event.
    pub fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()> {
        self.lock().push_columns(times, keys, values)
    }

    /// Broadcasts a watermark to every worker (after flushing staged
    /// batches, so order is preserved per shard link).
    pub fn advance_watermark(&mut self, watermark: u64) -> Result<()> {
        self.lock().advance_watermark(watermark)
    }

    /// Drains sealed rows from every worker, merged into canonical
    /// (window, instance, key) order. On transport failure the error is
    /// recorded (surfaced by the next fallible call) and the rows
    /// gathered so far are dropped.
    pub fn poll_results(&mut self) -> Vec<WindowResult> {
        self.lock().poll_results().unwrap_or_default()
    }

    /// Swaps the shared plan on every worker at `watermark` (a replan
    /// barrier). Failure poisons the pipeline.
    pub fn rebuild(&mut self, plan: &QueryPlan, watermark: u64) -> Result<()> {
        self.lock().rebuild(plan, watermark)
    }

    /// Seals every worker at the high-water event time, gathers final
    /// accounting and residual rows, and shuts the links down.
    pub fn finish(self) -> Result<RunOutput> {
        let mut inner = self
            .inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let out = inner.finish();
        // Dropping `inner` closes every socket and kills spawned procs.
        out
    }

    /// Exports a full checkpoint document: barrier-exports every
    /// worker's image and merges them into one shard-count-free
    /// snapshot (restorable at any parallelism).
    pub fn export_snapshot(&mut self) -> Result<Vec<u8>> {
        self.lock().export_snapshot()
    }

    /// Writes the merged checkpoint document to `w`.
    pub fn checkpoint<W: std::io::Write + ?Sized>(&mut self, w: &mut W) -> CheckpointResult<()> {
        let doc = self
            .lock()
            .export_snapshot()
            .map_err(|e| CheckpointError::Io {
                kind: std::io::ErrorKind::Other,
                message: e.to_string(),
            })?;
        w.write_all(&doc).map_err(|e| CheckpointError::Io {
            kind: e.kind(),
            message: e.to_string(),
        })
    }

    /// Summed worker counters; replans are the façade's count. Records
    /// (rather than returns) transport failures.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        let mut inner = self.lock();
        let replans = inner.replans;
        match inner.stats_replies() {
            Ok(replies) => {
                let mut stats = replies
                    .iter()
                    .fold(ExecStats::default(), |acc, r| acc + r.stats);
                stats.replans = replans;
                stats
            }
            Err(_) => ExecStats {
                replans,
                ..ExecStats::default()
            },
        }
    }

    /// Summed interner occupancy across workers: `(slots, bytes)`.
    #[must_use]
    pub fn interner_stats(&self) -> (u64, u64) {
        match self.lock().stats_replies() {
            Ok(replies) => replies.iter().fold((0, 0), |(s, b), r| {
                (s + r.interner_slots, b + r.interner_bytes)
            }),
            Err(_) => (0, 0),
        }
    }

    /// Per-node profiles summed across workers (occupancy high-waters
    /// add — shards partition the key space).
    #[must_use]
    pub fn node_profiles(&self) -> Vec<NodeProfile> {
        self.lock().node_profiles().unwrap_or_default()
    }

    /// Results emitted across all workers so far (a synchronizing
    /// barrier; `0` after a recorded transport failure).
    #[must_use]
    pub fn results_emitted(&self) -> u64 {
        match self.lock().stats_replies() {
            Ok(replies) => replies.iter().map(|r| r.results_emitted).sum(),
            Err(_) => 0,
        }
    }

    /// The recorded poisoning failure, if any. Infallible accessors
    /// (polls, stats) record transport errors here instead of returning
    /// them; every subsequent fallible call returns this error.
    #[must_use]
    pub fn failure(&self) -> Option<EngineError> {
        self.lock().failed.clone()
    }

    /// Events accepted by the scatter stage.
    #[must_use]
    pub fn events_pushed(&self) -> u64 {
        self.lock().pushed
    }

    /// The coordinator's watermark: high-water event time minus the
    /// disorder slack, or the last announced watermark if later.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.lock().watermark()
    }

    /// Events staged locally, not yet shipped to a worker.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.lock().buffered()
    }
}

impl ExecBackend for DistPipeline {
    fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()> {
        self.lock().push_columns(times, keys, values)
    }

    fn advance_watermark(&mut self, watermark: u64) -> Result<()> {
        self.lock().advance_watermark(watermark)
    }

    fn poll_results(&mut self) -> Vec<WindowResult> {
        self.lock().poll_results().unwrap_or_default()
    }

    fn rebuild(&mut self, plan: &QueryPlan, watermark: u64) -> Result<()> {
        self.lock().rebuild(plan, watermark)
    }

    fn finish(self: Box<Self>) -> Result<RunOutput> {
        DistPipeline::finish(*self)
    }

    fn watermark(&self) -> u64 {
        DistPipeline::watermark(self)
    }

    fn stats(&self) -> ExecStats {
        DistPipeline::stats(self)
    }

    fn interner_stats(&self) -> (u64, u64) {
        DistPipeline::interner_stats(self)
    }

    fn node_profiles(&self) -> Vec<NodeProfile> {
        DistPipeline::node_profiles(self)
    }

    fn buffered(&self) -> usize {
        DistPipeline::buffered(self)
    }

    fn export_snapshot(&mut self, _plan: &QueryPlan) -> CheckpointResult<Vec<u8>> {
        self.lock()
            .export_snapshot()
            .map_err(|e| CheckpointError::Io {
                kind: std::io::ErrorKind::Other,
                message: e.to_string(),
            })
    }
}

/// Builds [`DistPipeline`]s for [`fw_engine::GroupExec`]: every route
/// target of the group's shared factored plan resolves to the same set
/// of remote workers, making the route table the multi-tenant unit of
/// distribution.
#[derive(Debug, Clone, Copy)]
pub struct DistFactory {
    /// Worker processes per backend.
    pub workers: usize,
}

impl BackendFactory for DistFactory {
    fn compile(
        &self,
        plan: &QueryPlan,
        opts: PipelineOptions,
        grouped: bool,
    ) -> Result<Box<dyn ExecBackend>> {
        Ok(Box::new(DistPipeline::compile(
            plan,
            opts,
            grouped,
            self.workers,
        )?))
    }

    fn restore(
        &self,
        plan: &QueryPlan,
        opts: PipelineOptions,
        snapshot: &[u8],
    ) -> CheckpointResult<Box<dyn ExecBackend>> {
        Ok(Box::new(DistPipeline::restore(
            plan,
            opts,
            true,
            self.workers,
            snapshot,
        )?))
    }
}
