//! `fw-worker` — one distributed execution worker process.
//!
//! ```text
//! fw-worker [--listen ADDR]
//! ```
//!
//! Binds `ADDR` (default `127.0.0.1:0`, an ephemeral loopback port),
//! prints `LISTENING <addr>` on stdout once bound (the coordinator's
//! spawn path parses this line), and serves coordinator connections
//! forever. Each connection runs one local pipeline over its key slice
//! of the stream; see `fw_dist::worker`.

use fw_dist::Worker;
use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut listen = String::from("127.0.0.1:0");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => fail("--listen requires an address"),
            },
            "--help" | "-h" => {
                println!("usage: fw-worker [--listen ADDR]   (default 127.0.0.1:0)");
                return;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    let worker = match Worker::bind(&listen) {
        Ok(worker) => worker,
        Err(e) => fail(&format!("bind {listen}: {e}")),
    };
    let addr = match worker.local_addr() {
        Ok(addr) => addr,
        Err(e) => fail(&format!("local_addr: {e}")),
    };
    // The spawn protocol: announce the bound address, flushed, before
    // accepting — the parent blocks on this line.
    println!("LISTENING {addr}");
    let _ = std::io::stdout().flush();
    if let Err(e) = worker.run() {
        fail(&format!("accept loop: {e}"));
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("fw-worker: {msg}");
    std::process::exit(2);
}
