//! Spawning and supervising local `fw-worker` processes.
//!
//! The coordinator's default deployment is loopback: it spawns one
//! `fw-worker --listen 127.0.0.1:0` process per shard, reads the
//! `LISTENING <addr>` line the worker prints once bound, and connects.
//! The process is killed (and reaped) when its [`WorkerProc`] drops, so
//! a coordinator can never leak worker processes.
//!
//! The binary is resolved from the `FW_WORKER_BIN` environment variable
//! when set, else as a sibling of the current executable (stripping a
//! trailing `deps` directory, so both installed binaries and cargo test
//! binaries find the workspace's own `fw-worker`).

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// Environment variable overriding the worker binary path.
pub const WORKER_BIN_ENV: &str = "FW_WORKER_BIN";

/// A supervised local worker process: killed and reaped on drop.
#[derive(Debug)]
pub struct WorkerProc {
    child: Child,
    addr: SocketAddr,
}

impl WorkerProc {
    /// Spawns a worker listening on an ephemeral loopback port and waits
    /// for it to announce its address.
    pub fn spawn() -> std::io::Result<WorkerProc> {
        let bin = worker_bin()?;
        let mut child = Command::new(&bin)
            .args(["--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!(
                        "spawning {}: {e} (set {WORKER_BIN_ENV} to override)",
                        bin.display()
                    ),
                )
            })?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(rest) = line.strip_prefix("LISTENING ") {
                        match rest.trim().parse::<SocketAddr>() {
                            Ok(addr) => break addr,
                            Err(_) => {
                                let _ = child.kill();
                                let _ = child.wait();
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    format!("worker announced unparseable address {rest:?}"),
                                ));
                            }
                        }
                    }
                }
                Some(Err(e)) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(e);
                }
                None => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "worker exited before announcing its address",
                    ));
                }
            }
        };
        Ok(WorkerProc { child, addr })
    }

    /// The worker's announced listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The worker's OS process id (for failure-injection tests).
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Kills the worker immediately (mid-stream failure injection). The
    /// process is reaped; dropping afterwards is a no-op.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Resolves the `fw-worker` binary (see module docs).
fn worker_bin() -> std::io::Result<PathBuf> {
    if let Some(path) = std::env::var_os(WORKER_BIN_ENV) {
        return Ok(PathBuf::from(path));
    }
    let mut dir = std::env::current_exe()?;
    dir.pop(); // the executable's own file name
    if dir.file_name().is_some_and(|name| name == "deps") {
        dir.pop(); // cargo test binaries live one level down
    }
    let candidate = dir.join("fw-worker");
    if candidate.exists() {
        return Ok(candidate);
    }
    // Benches run from target/<profile>/deps too, but examples/criterion
    // may nest further; walk up a couple of levels looking for the bin.
    for ancestor in dir.ancestors().take(3) {
        let candidate = ancestor.join("fw-worker");
        if candidate.exists() {
            return Ok(candidate);
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!(
            "fw-worker binary not found near {}; set {WORKER_BIN_ENV}",
            dir.display()
        ),
    ))
}
