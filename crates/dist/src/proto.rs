//! The FWD1 coordinator↔worker shard protocol.
//!
//! Frames ride the same `[len: u32 LE][kind: u8][payload]` substrate as
//! the serve protocol (`fw_serve::wire`), reusing its
//! [`FrameWriter`](fw_serve::wire::FrameWriter) /
//! [`FrameReader`](fw_serve::wire::FrameReader) scratch buffers, its
//! FWB1 columnar batch codec, and
//! its 48-byte result-row codec — so the zero-allocation hot path is
//! shared, not reimplemented. Kind bytes live in a disjoint space
//! (`0x31..` coordinator→worker, `0xB1..` worker→coordinator).
//!
//! Data frames ([`KIND_BATCH`], [`KIND_WATERMARK`]) are fire-and-forget;
//! everything else is strict request/reply. A worker that hits an engine
//! error replies (or interjects, for data frames) one [`KIND_ERR`] frame
//! carrying enough structure to reconstruct the original
//! [`EngineError`] on the coordinator.

use fw_engine::{EngineError, ExecStats, NodeProfile, PipelineOptions, ProfileLevel, WindowResult};
use fw_serve::wire::{decode_result_row, encode_result_row, Cursor, WireError};

/// Protocol magic carried by `Hello` / `HelloAck` (`"FWD1"`).
pub const DIST_MAGIC: u32 = u32::from_le_bytes(*b"FWD1");

/// Protocol version negotiated by `Hello` / `HelloAck`.
pub const DIST_VERSION: u16 = 1;

/// Coordinator hello: magic + version; must be the first frame.
pub const KIND_HELLO: u8 = 0x31;
/// Pipeline setup: options + plan JSON + optional snapshot document.
pub const KIND_SETUP: u8 = 0x32;
/// One FWB1 columnar event batch (fire-and-forget).
pub const KIND_BATCH: u8 = 0x33;
/// Watermark broadcast (fire-and-forget).
pub const KIND_WATERMARK: u8 = 0x34;
/// Drain sealed results ([`KIND_ROWS`] reply).
pub const KIND_POLL: u8 = 0x35;
/// Request counters ([`KIND_STATS_REPLY`] reply).
pub const KIND_STATS: u8 = 0x36;
/// Request per-node profiles ([`KIND_PROFILES_REPLY`] reply).
pub const KIND_PROFILES: u8 = 0x37;
/// Live plan swap: watermark + plan JSON ([`KIND_REBUILD_ACK`] reply).
pub const KIND_REBUILD: u8 = 0x38;
/// Export a checkpoint document ([`KIND_IMAGE`] reply).
pub const KIND_EXPORT: u8 = 0x39;
/// Seal and finish: optional seal watermark ([`KIND_FINISH_REPLY`]).
pub const KIND_FINISH: u8 = 0x3A;

/// Worker hello ack: magic + version.
pub const KIND_HELLO_ACK: u8 = 0xB1;
/// Setup succeeded.
pub const KIND_SETUP_ACK: u8 = 0xB2;
/// Sealed result rows (48-byte row codec).
pub const KIND_ROWS: u8 = 0xB5;
/// Counter snapshot.
pub const KIND_STATS_REPLY: u8 = 0xB6;
/// Per-node profiles.
pub const KIND_PROFILES_REPLY: u8 = 0xB7;
/// Rebuild succeeded.
pub const KIND_REBUILD_ACK: u8 = 0xB8;
/// A checkpoint document.
pub const KIND_IMAGE: u8 = 0xB9;
/// Finish accounting + residual rows.
pub const KIND_FINISH_REPLY: u8 = 0xBA;
/// An engine error (see [`encode_err`] / [`decode_err`]).
pub const KIND_ERR: u8 = 0xBF;

/// `Err` payload class: an [`EngineError::OutOfOrderEvent`].
const ERR_OUT_OF_ORDER: u8 = 1;
/// `Err` payload class: any other engine error, carried as its message.
const ERR_OTHER: u8 = 0;

/// Appends the hello/hello-ack payload (shared by both directions).
pub fn encode_hello(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&DIST_MAGIC.to_le_bytes());
    buf.extend_from_slice(&DIST_VERSION.to_le_bytes());
}

/// Validates a hello/hello-ack payload.
pub fn decode_hello(payload: &[u8]) -> Result<(), WireError> {
    let mut r = Cursor::new(payload);
    let magic = r.u32("dist hello")?;
    if magic != DIST_MAGIC {
        return Err(WireError::BadMagic {
            found: magic,
            expected: DIST_MAGIC,
        });
    }
    let version = r.u16("dist hello")?;
    if version != DIST_VERSION {
        return Err(WireError::BadVersion {
            found: u32::from(version),
        });
    }
    if r.remaining() != 0 {
        return Err(WireError::Truncated { what: "dist hello" });
    }
    Ok(())
}

/// What a worker needs to build (or restore) its shard pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Setup {
    /// Compile through the grouped/slot path (live plan swaps allowed).
    pub grouped: bool,
    /// The worker's [`PipelineOptions`].
    pub opts: PipelineOptions,
    /// The shared plan, serialized by `fw_core::json`.
    pub plan_json: String,
    /// A full checkpoint document to restore from, if resuming.
    pub snapshot: Option<Vec<u8>>,
}

fn profile_code(level: ProfileLevel) -> u8 {
    match level {
        ProfileLevel::Off => 0,
        ProfileLevel::Counters => 1,
        ProfileLevel::Timed => 2,
    }
}

fn profile_from_code(code: u8) -> Result<ProfileLevel, WireError> {
    Ok(match code {
        0 => ProfileLevel::Off,
        1 => ProfileLevel::Counters,
        2 => ProfileLevel::Timed,
        kind => return Err(WireError::UnknownKind { kind }),
    })
}

/// Appends a [`Setup`] payload.
pub fn encode_setup(setup: &Setup, buf: &mut Vec<u8>) {
    buf.push(u8::from(setup.grouped));
    buf.push(u8::from(setup.opts.collect));
    buf.extend_from_slice(&setup.opts.element_work.to_le_bytes());
    buf.extend_from_slice(&setup.opts.out_of_order.to_le_bytes());
    buf.push(profile_code(setup.opts.profile));
    match &setup.snapshot {
        Some(doc) => {
            buf.push(1);
            buf.extend_from_slice(&(doc.len() as u32).to_le_bytes());
            buf.extend_from_slice(doc);
        }
        None => buf.push(0),
    }
    buf.extend_from_slice(setup.plan_json.as_bytes());
}

/// Decodes a [`Setup`] payload.
pub fn decode_setup(payload: &[u8]) -> Result<Setup, WireError> {
    let mut r = Cursor::new(payload);
    let grouped = r.u8("dist setup")? != 0;
    let collect = r.u8("dist setup")? != 0;
    let element_work = r.u32("dist setup")?;
    let out_of_order = r.u64("dist setup")?;
    let profile = profile_from_code(r.u8("dist setup")?)?;
    let snapshot = if r.u8("dist setup")? != 0 {
        let len = r.u32("dist setup")? as usize;
        Some(r.take(len, "dist setup snapshot")?.to_vec())
    } else {
        None
    };
    let plan_json = r.utf8_rest()?;
    Ok(Setup {
        grouped,
        opts: PipelineOptions {
            collect,
            element_work,
            out_of_order,
            profile,
        },
        plan_json,
        snapshot,
    })
}

/// Appends a result-rows payload (count + 48-byte rows).
pub fn encode_rows(rows: &[WindowResult], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        encode_result_row(row, buf);
    }
}

/// Decodes a result-rows payload.
pub fn decode_rows(payload: &[u8]) -> Result<Vec<WindowResult>, WireError> {
    let mut r = Cursor::new(payload);
    let n = r.u32("dist rows")? as usize;
    let mut rows = Vec::with_capacity(n.min(payload.len() / 48 + 1));
    for _ in 0..n {
        rows.push(decode_result_row(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(WireError::Truncated { what: "dist rows" });
    }
    Ok(rows)
}

/// One worker's counter snapshot ([`KIND_STATS_REPLY`] payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// The worker's [`ExecStats`].
    pub stats: ExecStats,
    /// Events the worker's pipeline has ingested.
    pub events_pushed: u64,
    /// Result rows the worker's pipeline has emitted.
    pub results_emitted: u64,
    /// The worker's current watermark.
    pub watermark: u64,
    /// Events buffered in the worker's reorder stage.
    pub buffered: u64,
    /// Live interner slots.
    pub interner_slots: u64,
    /// Interner bytes.
    pub interner_bytes: u64,
}

/// Appends a [`StatsReply`] payload.
pub fn encode_stats(s: &StatsReply, buf: &mut Vec<u8>) {
    for v in [
        s.stats.updates,
        s.stats.combines,
        s.stats.agg_ops,
        s.stats.replans,
        s.events_pushed,
        s.results_emitted,
        s.watermark,
        s.buffered,
        s.interner_slots,
        s.interner_bytes,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a [`StatsReply`] payload.
pub fn decode_stats(payload: &[u8]) -> Result<StatsReply, WireError> {
    let mut r = Cursor::new(payload);
    let mut next = || r.u64("dist stats");
    let reply = StatsReply {
        stats: ExecStats {
            updates: next()?,
            combines: next()?,
            agg_ops: next()?,
            replans: next()?,
        },
        events_pushed: next()?,
        results_emitted: next()?,
        watermark: next()?,
        buffered: next()?,
        interner_slots: next()?,
        interner_bytes: next()?,
    };
    if r.remaining() != 0 {
        return Err(WireError::Truncated { what: "dist stats" });
    }
    Ok(reply)
}

/// Appends a profiles payload (count + fixed-width profile records).
pub fn encode_profiles(profiles: &[NodeProfile], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(profiles.len() as u32).to_le_bytes());
    for p in profiles {
        buf.extend_from_slice(&(p.node as u64).to_le_bytes());
        buf.extend_from_slice(&p.range.to_le_bytes());
        buf.extend_from_slice(&p.slide.to_le_bytes());
        buf.push(u8::from(p.exposed));
        buf.push(u8::from(p.raw_fed));
        for v in [
            p.updates,
            p.combines,
            p.agg_ops,
            p.seals,
            p.emitted,
            p.pane_live_hw,
            p.nanos,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Decodes a profiles payload.
pub fn decode_profiles(payload: &[u8]) -> Result<Vec<NodeProfile>, WireError> {
    let mut r = Cursor::new(payload);
    let n = r.u32("dist profiles")? as usize;
    let mut profiles = Vec::with_capacity(n.min(payload.len() / 80 + 1));
    for _ in 0..n {
        let node = r.u64("dist profiles")? as usize;
        let range = r.u64("dist profiles")?;
        let slide = r.u64("dist profiles")?;
        let exposed = r.u8("dist profiles")? != 0;
        let raw_fed = r.u8("dist profiles")? != 0;
        let mut next = || r.u64("dist profiles");
        profiles.push(NodeProfile {
            node,
            range,
            slide,
            exposed,
            raw_fed,
            updates: next()?,
            combines: next()?,
            agg_ops: next()?,
            seals: next()?,
            emitted: next()?,
            pane_live_hw: next()?,
            nanos: next()?,
        });
    }
    if r.remaining() != 0 {
        return Err(WireError::Truncated {
            what: "dist profiles",
        });
    }
    Ok(profiles)
}

/// Appends a rebuild payload: the new watermark + plan JSON.
pub fn encode_rebuild(watermark: u64, plan_json: &str, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&watermark.to_le_bytes());
    buf.extend_from_slice(plan_json.as_bytes());
}

/// Decodes a rebuild payload.
pub fn decode_rebuild(payload: &[u8]) -> Result<(u64, String), WireError> {
    let mut r = Cursor::new(payload);
    let watermark = r.u64("dist rebuild")?;
    let plan_json = r.utf8_rest()?;
    Ok((watermark, plan_json))
}

/// Appends a finish payload: the seal watermark, if any.
pub fn encode_finish(seal: Option<u64>, buf: &mut Vec<u8>) {
    match seal {
        Some(seal) => {
            buf.push(1);
            buf.extend_from_slice(&seal.to_le_bytes());
        }
        None => buf.push(0),
    }
}

/// Decodes a finish payload.
pub fn decode_finish(payload: &[u8]) -> Result<Option<u64>, WireError> {
    let mut r = Cursor::new(payload);
    let seal = if r.u8("dist finish")? != 0 {
        Some(r.u64("dist finish")?)
    } else {
        None
    };
    if r.remaining() != 0 {
        return Err(WireError::Truncated {
            what: "dist finish",
        });
    }
    Ok(seal)
}

/// One worker's final accounting ([`KIND_FINISH_REPLY`] payload).
#[derive(Debug, Clone, PartialEq)]
pub struct FinishReply {
    /// Events the worker processed.
    pub events_processed: u64,
    /// Result rows the worker emitted over its lifetime.
    pub results_emitted: u64,
    /// The worker's processing wall time, in nanoseconds.
    pub elapsed_nanos: u64,
    /// The worker's final [`ExecStats`].
    pub stats: ExecStats,
    /// Residual collected rows not yet drained by a poll.
    pub rows: Vec<WindowResult>,
}

/// Appends a [`FinishReply`] payload.
pub fn encode_finish_reply(reply: &FinishReply, buf: &mut Vec<u8>) {
    for v in [
        reply.events_processed,
        reply.results_emitted,
        reply.elapsed_nanos,
        reply.stats.updates,
        reply.stats.combines,
        reply.stats.agg_ops,
        reply.stats.replans,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    encode_rows(&reply.rows, buf);
}

/// Decodes a [`FinishReply`] payload.
pub fn decode_finish_reply(payload: &[u8]) -> Result<FinishReply, WireError> {
    let mut r = Cursor::new(payload);
    let mut next = || r.u64("dist finish reply");
    let events_processed = next()?;
    let results_emitted = next()?;
    let elapsed_nanos = next()?;
    let stats = ExecStats {
        updates: next()?,
        combines: next()?,
        agg_ops: next()?,
        replans: next()?,
    };
    let rest = r.take(r.remaining(), "dist finish reply")?;
    let rows = decode_rows(rest)?;
    Ok(FinishReply {
        events_processed,
        results_emitted,
        elapsed_nanos,
        stats,
        rows,
    })
}

/// Appends an error payload preserving the engine error's structure:
/// out-of-order violations keep their `(at, watermark)` pair, everything
/// else travels as its display message.
pub fn encode_err(err: &EngineError, buf: &mut Vec<u8>) {
    match err {
        EngineError::OutOfOrderEvent { at, watermark } => {
            buf.push(ERR_OUT_OF_ORDER);
            buf.extend_from_slice(&at.to_le_bytes());
            buf.extend_from_slice(&watermark.to_le_bytes());
        }
        other => {
            buf.push(ERR_OTHER);
            buf.extend_from_slice(other.to_string().as_bytes());
        }
    }
}

/// Reconstructs the [`EngineError`] from an error payload.
pub fn decode_err(payload: &[u8]) -> Result<EngineError, WireError> {
    let mut r = Cursor::new(payload);
    match r.u8("dist err")? {
        ERR_OUT_OF_ORDER => {
            let at = r.u64("dist err")?;
            let watermark = r.u64("dist err")?;
            Ok(EngineError::OutOfOrderEvent { at, watermark })
        }
        ERR_OTHER => Ok(EngineError::Distributed(r.utf8_rest()?)),
        kind => Err(WireError::UnknownKind { kind }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_core::{Interval, Window};

    #[test]
    fn setup_roundtrip() {
        let setup = Setup {
            grouped: true,
            opts: PipelineOptions {
                collect: true,
                element_work: 7,
                out_of_order: 64,
                profile: ProfileLevel::Timed,
            },
            plan_json: "{\"plan\":true}".into(),
            snapshot: Some(vec![1, 2, 3, 4]),
        };
        let mut buf = Vec::new();
        encode_setup(&setup, &mut buf);
        assert_eq!(decode_setup(&buf).unwrap(), setup);

        let bare = Setup {
            snapshot: None,
            grouped: false,
            ..setup
        };
        buf.clear();
        encode_setup(&bare, &mut buf);
        assert_eq!(decode_setup(&buf).unwrap(), bare);
    }

    #[test]
    fn stats_profiles_rows_roundtrip() {
        let stats = StatsReply {
            stats: ExecStats {
                updates: 1,
                combines: 2,
                agg_ops: 3,
                replans: 4,
            },
            events_pushed: 5,
            results_emitted: 6,
            watermark: 7,
            buffered: 8,
            interner_slots: 9,
            interner_bytes: 10,
        };
        let mut buf = Vec::new();
        encode_stats(&stats, &mut buf);
        assert_eq!(decode_stats(&buf).unwrap(), stats);

        let profiles = vec![NodeProfile {
            node: 3,
            range: 20,
            slide: 10,
            exposed: true,
            raw_fed: false,
            updates: 1,
            combines: 2,
            agg_ops: 3,
            seals: 4,
            emitted: 5,
            pane_live_hw: 6,
            nanos: 7,
        }];
        buf.clear();
        encode_profiles(&profiles, &mut buf);
        assert_eq!(decode_profiles(&buf).unwrap(), profiles);

        let rows = vec![WindowResult {
            window: Window::new(20, 10).unwrap(),
            interval: Interval::new(0, 20),
            key: 3,
            agg: 0,
            value: 2.5,
        }];
        buf.clear();
        encode_rows(&rows, &mut buf);
        assert_eq!(decode_rows(&buf).unwrap(), rows);
    }

    #[test]
    fn err_roundtrip_preserves_out_of_order_structure() {
        let mut buf = Vec::new();
        encode_err(
            &EngineError::OutOfOrderEvent {
                at: 5,
                watermark: 9,
            },
            &mut buf,
        );
        assert!(matches!(
            decode_err(&buf).unwrap(),
            EngineError::OutOfOrderEvent {
                at: 5,
                watermark: 9
            }
        ));

        buf.clear();
        encode_err(&EngineError::InvalidPlan("boom".into()), &mut buf);
        match decode_err(&buf).unwrap() {
            EngineError::Distributed(msg) => assert!(msg.contains("boom")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hello_rejects_wrong_magic() {
        let mut buf = Vec::new();
        encode_hello(&mut buf);
        assert!(decode_hello(&buf).is_ok());
        buf[0] ^= 0xFF;
        assert!(matches!(
            decode_hello(&buf),
            Err(WireError::BadMagic { .. })
        ));
    }
}
