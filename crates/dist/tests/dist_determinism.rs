//! Determinism suite for [`fw_dist::DistPipeline`]: for every plan
//! choice and worker-process count, under bounded-disorder input and a
//! mixed ingestion pattern (batches, single pushes, mid-stream
//! watermarks and polls), the distributed results must be exactly the
//! single-threaded [`fw_engine::PlanPipeline`] results after canonical
//! ordering — bitwise on the `f64` values, not approximate (each key's
//! accumulator folds the same values in the same order on exactly one
//! worker).
//!
//! Also pins elastic checkpoint rescale: a snapshot exported from N
//! worker processes restores onto M (and onto the single-threaded
//! engine) with exactly-once results.

use fw_core::{
    AggregateFunction, AggregateSpec, Optimizer, PlanChoice, Window, WindowQuery, WindowSet,
};
use fw_dist::DistPipeline;
use fw_engine::{sorted_results, Event, PipelineOptions, PlanPipeline, WindowResult};

/// The workspace's deterministic PRNG (DESIGN.md §6) — no `rand` dep.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn w(r: u64, s: u64) -> Window {
    Window::new(r, s).unwrap()
}

/// An almost-ordered stream: every event lags the running maximum
/// timestamp by strictly less than `slack`.
fn jittered_stream(n: u64, keys: u32, slack: u64, rng: &mut SplitMix64) -> Vec<Event> {
    let mut arrivals: Vec<(u64, Event)> = (0..n)
        .map(|t| {
            let key = (rng.below(u64::from(keys))) as u32;
            let value = ((t.wrapping_mul(7) + u64::from(key)) % 101) as f64 - 50.0;
            (t + rng.below(slack.max(1)), Event::new(t, key, value))
        })
        .collect();
    arrivals.sort_by_key(|&(arrival, event)| (arrival, event.time));
    arrivals.into_iter().map(|(_, event)| event).collect()
}

fn opts(slack: u64) -> PipelineOptions {
    PipelineOptions {
        collect: true,
        element_work: 0,
        out_of_order: slack,
        profile: Default::default(),
    }
}

/// Drives a distributed pipeline with a mixed ingestion pattern.
fn run_distributed_mixed(
    plan: &fw_core::QueryPlan,
    events: &[Event],
    slack: u64,
    workers: usize,
    rng: &mut SplitMix64,
) -> Vec<WindowResult> {
    let mut pipeline = DistPipeline::compile(plan, opts(slack), false, workers).unwrap();
    assert_eq!(pipeline.workers(), workers);
    let mut collected = Vec::new();
    let mut i = 0usize;
    while i < events.len() {
        match rng.below(4) {
            0 => {
                pipeline.push(events[i]).unwrap();
                i += 1;
            }
            _ => {
                let len = 1 + rng.below(48) as usize;
                let end = (i + len).min(events.len());
                pipeline.push_batch(&events[i..end]).unwrap();
                i = end;
            }
        }
        if rng.below(8) == 0 {
            let watermark = pipeline.watermark().saturating_sub(slack);
            pipeline.advance_watermark(watermark).unwrap();
            collected.extend(pipeline.poll_results());
        }
    }
    let out = pipeline.finish().unwrap();
    collected.extend(out.results);
    assert_eq!(out.events_processed, events.len() as u64);
    sorted_results(collected)
}

fn check_setup(windows: &[Window], function: AggregateFunction, seed: u64) {
    let slack = 8;
    let query = WindowQuery::new(WindowSet::new(windows.to_vec()).unwrap(), function);
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let mut rng = SplitMix64(seed);
    let events = jittered_stream(500, 16, slack, &mut rng);

    for choice in PlanChoice::CONCRETE {
        let plan = &outcome.select(choice).plan;
        let single = {
            let mut pipeline = PlanPipeline::compile(plan, opts(slack)).unwrap();
            pipeline.push_batch(&events).unwrap();
            sorted_results(pipeline.finish().unwrap().results)
        };
        for workers in [1usize, 2, 4] {
            let distributed = run_distributed_mixed(plan, &events, slack, workers, &mut rng);
            assert_eq!(
                single, distributed,
                "{function:?}/{choice} at {workers} worker processes diverged"
            );
        }
    }
}

#[test]
fn tumbling_windows_match_across_worker_processes() {
    let windows = [w(20, 20), w(30, 30), w(40, 40)];
    for (i, function) in [AggregateFunction::Min, AggregateFunction::Sum]
        .into_iter()
        .enumerate()
    {
        check_setup(&windows, function, 0xD157 + i as u64);
    }
}

#[test]
fn hopping_windows_match_across_worker_processes() {
    check_setup(
        &[w(20, 10), w(40, 10), w(60, 20)],
        AggregateFunction::Max,
        0xD158,
    );
}

#[test]
fn multi_aggregate_columnar_push_matches() {
    // Columnar ingestion straight through the wire fast path, with a
    // multi-term SELECT list.
    let windows = WindowSet::new(vec![w(16, 16), w(32, 16)]).unwrap();
    let query = WindowQuery::with_aggregates(
        windows,
        vec![
            AggregateSpec::new(AggregateFunction::Min),
            AggregateSpec::new(AggregateFunction::Avg),
        ],
    )
    .unwrap();
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let mut rng = SplitMix64(0xC01);
    let events = jittered_stream(800, 8, 4, &mut rng);
    let batch = fw_engine::EventBatch::from_events(&events);
    let (times, keys, values) = batch.columns();

    for choice in PlanChoice::CONCRETE {
        let plan = &outcome.select(choice).plan;
        let single = {
            let mut pipeline = PlanPipeline::compile(plan, opts(4)).unwrap();
            pipeline.push_columns(times, keys, values).unwrap();
            sorted_results(pipeline.finish().unwrap().results)
        };
        let distributed = {
            let mut pipeline = DistPipeline::compile(plan, opts(4), false, 2).unwrap();
            pipeline.push_columns(times, keys, values).unwrap();
            sorted_results(pipeline.finish().unwrap().results)
        };
        assert_eq!(single, distributed, "{choice} columnar diverged");
    }
}

/// Elastic rescale through a checkpoint: 2 worker processes → snapshot →
/// 4 worker processes → snapshot → single-threaded engine, with polls
/// along the way; the union of everything polled and the final results
/// must be exactly-once equal to an uninterrupted sequential run.
#[test]
fn checkpoint_rescales_across_worker_counts() {
    let slack = 8;
    let windows = [w(20, 10), w(40, 40)];
    let query = WindowQuery::new(
        WindowSet::new(windows.to_vec()).unwrap(),
        AggregateFunction::Sum,
    );
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let plan = &outcome.select(PlanChoice::Factored).plan;
    let mut rng = SplitMix64(0x5CA1E);
    let events = jittered_stream(600, 16, slack, &mut rng);

    let oracle = {
        let mut pipeline = PlanPipeline::compile(plan, opts(slack)).unwrap();
        pipeline.push_batch(&events).unwrap();
        sorted_results(pipeline.finish().unwrap().results)
    };

    let (a, rest) = events.split_at(events.len() / 3);
    let (b, c) = rest.split_at(rest.len() / 2);
    let mut collected = Vec::new();

    // Stage 1: two worker processes (grouped compile — the durable core).
    let mut p1 = DistPipeline::compile(plan, opts(slack), true, 2).unwrap();
    p1.push_batch(a).unwrap();
    let watermark = p1.watermark().saturating_sub(slack);
    p1.advance_watermark(watermark).unwrap();
    collected.extend(p1.poll_results());
    let snap1 = p1.export_snapshot().unwrap();
    drop(p1);

    // Stage 2: restore onto four worker processes.
    let mut p2 = DistPipeline::restore(plan, opts(slack), true, 4, &snap1).unwrap();
    assert_eq!(p2.events_pushed(), a.len() as u64, "replay cursor survives");
    p2.push_batch(b).unwrap();
    collected.extend(p2.poll_results());
    let snap2 = p2.export_snapshot().unwrap();
    drop(p2);

    // Stage 3: the document is shard-count-free — finish on the
    // single-threaded engine.
    let mut p3 = PlanPipeline::restore(plan, opts(slack), &mut &snap2[..]).unwrap();
    for event in c {
        p3.push(*event).unwrap();
    }
    let out = p3.finish().unwrap();
    collected.extend(out.results);
    assert_eq!(out.events_processed, events.len() as u64);

    assert_eq!(sorted_results(collected), oracle, "rescale chain diverged");
}
