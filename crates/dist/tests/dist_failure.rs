//! Failure injection for distributed execution: a worker process killed
//! mid-stream must fail the coordinator *loudly* (a structured
//! [`EngineError::Distributed`], not a hang), leave no zombie sockets
//! holding the run open, and leave concurrent bystander pipelines
//! untouched. Protocol-level engine errors (an out-of-order event beyond
//! the slack) must cross the wire with their structure intact. And a
//! half-open connection that never completes the handshake must be
//! dropped by the worker within its bounded timeout.

use fw_core::{AggregateFunction, Optimizer, PlanChoice, Window, WindowQuery, WindowSet};
use fw_dist::{DistPipeline, Worker, WorkerProc, HANDSHAKE_TIMEOUT};
use fw_engine::{sorted_results, EngineError, Event, PipelineOptions, PlanPipeline};
use std::io::Read;
use std::time::{Duration, Instant};

fn plan() -> fw_core::QueryPlan {
    let windows = WindowSet::new(vec![
        Window::new(20, 10).unwrap(),
        Window::new(40, 40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Sum);
    let outcome = Optimizer::default().optimize(&query).unwrap();
    outcome.select(PlanChoice::Factored).plan.clone()
}

fn opts() -> PipelineOptions {
    PipelineOptions {
        collect: true,
        element_work: 0,
        out_of_order: 0,
        profile: Default::default(),
    }
}

fn events(n: u64) -> Vec<Event> {
    (0..n)
        .map(|t| Event::new(t, (t % 8) as u32, (t % 13) as f64 - 6.0))
        .collect()
}

/// Kill one of two workers mid-stream: the coordinator must surface a
/// distributed failure within seconds (no hang on the dead socket), and
/// every fallible call after the first failure must keep failing (the
/// pipeline is poisoned, never silently wrong).
#[test]
fn worker_killed_mid_stream_fails_loud_without_hanging() {
    let plan = plan();
    // Own the processes so the test controls their lifetime.
    let mut victim = WorkerProc::spawn().unwrap();
    let bystander = WorkerProc::spawn().unwrap();
    let addrs = [victim.addr(), bystander.addr()];
    let mut pipeline = DistPipeline::connect(&plan, opts(), false, &addrs).unwrap();

    pipeline.push_batch(&events(200)).unwrap();
    pipeline.advance_watermark(100).unwrap();
    let _ = pipeline.poll_results();

    victim.kill();

    // Keep streaming into the dead shard until the transport notices.
    // Bounded: the socket is closed, so writes fail fast (EPIPE/RST) and
    // reads see EOF — nowhere to block.
    let start = Instant::now();
    let mut failed = None;
    for round in 0u64..10_000 {
        let base = 200 + round * 10;
        let batch: Vec<Event> = (base..base + 10)
            .map(|t| Event::new(t, (t % 8) as u32, 1.0))
            .collect();
        if let Err(e) = pipeline
            .push_batch(&batch)
            .and_then(|()| pipeline.advance_watermark(base))
        {
            failed = Some(e);
            break;
        }
        let _ = pipeline.poll_results();
        if pipeline.failure().is_some() {
            // poll_results records transport failures internally; the
            // next fallible call returns it.
            failed = pipeline.push(Event::new(base + 10, 0, 0.0)).err();
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "coordinator did not notice the dead worker"
        );
    }
    let err = failed.expect("dead worker must surface an error");
    assert!(
        matches!(err, EngineError::Distributed(_)),
        "expected a distributed transport error, got {err:?}"
    );
    // Poisoned: the same loud error keeps coming back.
    let again = pipeline.push(Event::new(1_000_000, 0, 0.0)).unwrap_err();
    assert_eq!(again, err);
    let finish_err = pipeline.finish().unwrap_err();
    assert_eq!(finish_err, err);
}

/// A worker dying in one pipeline must not disturb another pipeline
/// running concurrently on its own workers.
#[test]
fn bystander_pipeline_survives_neighbor_failure() {
    let plan = plan();
    let stream = events(400);

    let oracle = {
        let mut p = PlanPipeline::compile(&plan, opts()).unwrap();
        p.push_batch(&stream).unwrap();
        sorted_results(p.finish().unwrap().results)
    };

    let mut doomed_worker = WorkerProc::spawn().unwrap();
    let addrs = [doomed_worker.addr()];
    let mut doomed = DistPipeline::connect(&plan, opts(), false, &addrs).unwrap();
    let mut healthy = DistPipeline::compile(&plan, opts(), false, 2).unwrap();

    // Interleave the two pipelines, then kill the doomed one's worker.
    for chunk in stream.chunks(50) {
        healthy.push_batch(chunk).unwrap();
        let _ = doomed.push_batch(chunk);
    }
    doomed_worker.kill();
    let _ = doomed.poll_results();
    assert!(doomed.finish().is_err(), "doomed pipeline must fail loud");

    let out = healthy.finish().unwrap();
    assert_eq!(out.events_processed, stream.len() as u64);
    assert_eq!(sorted_results(out.results), oracle, "bystander corrupted");
}

/// An engine error crosses the wire with its structure intact: an event
/// behind the watermark comes back as [`EngineError::OutOfOrderEvent`]
/// with the worker's `at`/`watermark` fields, not a stringly error.
#[test]
fn out_of_order_event_surfaces_with_structure() {
    let plan = plan();
    let mut pipeline = DistPipeline::compile(&plan, opts(), false, 2).unwrap();
    pipeline.push(Event::new(100, 0, 1.0)).unwrap();
    pipeline.advance_watermark(100).unwrap();
    // Behind the announced watermark with zero slack: the owning worker
    // rejects it. The scatter path is asynchronous, so the error may
    // surface on a later synchronous call rather than this push.
    let _ = pipeline.push(Event::new(5, 0, 1.0));
    let _ = pipeline.poll_results();
    let err = pipeline.finish().unwrap_err();
    assert_eq!(
        err,
        EngineError::OutOfOrderEvent {
            at: 5,
            watermark: 100
        }
    );
}

/// A connection that never completes the handshake is dropped by the
/// worker once [`HANDSHAKE_TIMEOUT`] elapses — a silent client cannot
/// hold a connection slot open forever.
#[test]
fn half_open_handshake_is_dropped_after_bounded_timeout() {
    let worker = Worker::bind("127.0.0.1:0").unwrap();
    let addr = worker.local_addr().unwrap();
    let _accept = worker.spawn_thread();

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT + Duration::from_secs(10)))
        .unwrap();
    let start = Instant::now();
    // Say nothing. The worker must hang up on us, observed as EOF.
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).unwrap_or(0);
    let elapsed = start.elapsed();
    assert_eq!(n, 0, "worker should close a silent connection");
    assert!(
        elapsed <= HANDSHAKE_TIMEOUT + Duration::from_secs(5),
        "handshake drop took {elapsed:?}, expected ~{HANDSHAKE_TIMEOUT:?}"
    );
}
