//! # fw-slicing — general stream slicing (the Scotty baseline, Section V-F)
//!
//! Stream slicing chops the input into *slices* delimited by the union of
//! all windows' instance start points, maintains one per-key pre-aggregate
//! per slice (one accumulator update per event), and assembles each window
//! instance by combining the slices inside its lifetime. This is the
//! technique of Scotty / general stream slicing (Traub et al.), rebuilt in
//! Rust because the original is a JVM/Flink artifact (DESIGN.md §5).
//!
//! Differences from the factor-window approach are exactly the ones the
//! paper discusses: slicing proactively cuts the stream and pays one merge
//! per contained slice per instance, while factor windows exploit coverage
//! between the windows themselves and share *sub-aggregates* hierarchically.

#![warn(missing_docs)]
#![warn(clippy::all)]

use fw_core::{AggregateFunction, Interval, Window, WindowSet};
use fw_engine::agg::{Aggregate, AvgAgg, CountAgg, MaxAgg, MinAgg, SumAgg};
use fw_engine::event::{Event, ResultSink, WindowResult};
use fw_engine::pane::{element_work, DEFAULT_ELEMENT_WORK};
use fw_engine::{EngineError, FastMap, Result, RunOutput};
use std::collections::VecDeque;
use std::time::Instant;

/// Executes `function` over every window in `windows` using general stream
/// slicing. Events must be in non-decreasing time order. Set `collect` to
/// gather results (tests); leave it off for throughput runs.
pub fn execute_sliced(
    windows: &WindowSet,
    function: AggregateFunction,
    events: &[Event],
    collect: bool,
) -> Result<RunOutput> {
    match function {
        AggregateFunction::Min => run::<MinAgg>(windows, events, collect),
        AggregateFunction::Max => run::<MaxAgg>(windows, events, collect),
        AggregateFunction::Sum => run::<SumAgg>(windows, events, collect),
        AggregateFunction::Count => run::<CountAgg>(windows, events, collect),
        AggregateFunction::Avg => run::<AvgAgg>(windows, events, collect),
        AggregateFunction::Median => Err(EngineError::HolisticSubAggregate { function: "MEDIAN" }),
    }
}

fn run<A: Aggregate>(windows: &WindowSet, events: &[Event], collect: bool) -> Result<RunOutput> {
    let mut slicer = Slicer::<A>::new(windows);
    let mut sink = if collect {
        ResultSink::Collect(Vec::new())
    } else {
        ResultSink::CountOnly
    };
    let start = Instant::now();
    slicer.run(events, &mut sink)?;
    let elapsed = start.elapsed();
    let stats = fw_engine::executor::ExecStats {
        updates: events.len() as u64,
        combines: slicer.merges,
        agg_ops: events.len() as u64 + slicer.merges,
        replans: 0,
    };
    Ok(RunOutput {
        events_processed: events.len() as u64,
        results_emitted: slicer.results_emitted,
        elapsed,
        results: sink.into_results(),
        stats,
    })
}

/// A sealed slice: per-key pre-aggregates for `[start, end)`.
#[derive(Debug)]
struct Slice<Acc> {
    start: u64,
    end: u64,
    accs: FastMap<u32, Acc>,
}

struct Slicer<A: Aggregate> {
    windows: Vec<Window>,
    /// Sealed slices, ordered by start; evicted once no window needs them.
    sealed: VecDeque<Slice<A::Acc>>,
    current: Slice<A::Acc>,
    /// Per window: next instance index to emit.
    cursors: Vec<u64>,
    watermark: u64,
    results_emitted: u64,
    /// Slice-entry merges performed (cost accounting).
    merges: u64,
    /// Emulated per-element cost, matching the engine's
    /// (`fw_engine::pane::DEFAULT_ELEMENT_WORK`) so the Section V-F
    /// comparison charges both systems identically per element.
    work: u32,
    work_sink: u64,
}

impl<A: Aggregate> Slicer<A> {
    fn new(windows: &WindowSet) -> Self {
        let windows: Vec<Window> = windows.windows().to_vec();
        let first_end = windows.iter().map(Window::slide).min().unwrap_or(1);
        let cursors = vec![0; windows.len()];
        Slicer {
            windows,
            sealed: VecDeque::new(),
            current: Slice {
                start: 0,
                end: first_end,
                accs: FastMap::default(),
            },
            cursors,
            watermark: 0,
            results_emitted: 0,
            merges: 0,
            work: DEFAULT_ELEMENT_WORK,
            work_sink: 0,
        }
    }

    /// The next slice edge strictly after `t`: the earliest window-instance
    /// start point beyond it.
    fn next_edge(&self, t: u64) -> u64 {
        self.windows
            .iter()
            .map(|w| (t / w.slide() + 1) * w.slide())
            .min()
            .expect("windows")
    }

    fn run(&mut self, events: &[Event], sink: &mut ResultSink) -> Result<()> {
        for event in events {
            if event.time < self.watermark {
                return Err(EngineError::OutOfOrderEvent {
                    at: event.time,
                    watermark: self.watermark,
                });
            }
            while event.time >= self.current.end {
                self.seal_current();
                self.emit_due(self.current.start, sink);
            }
            self.watermark = event.time;
            self.work_sink ^= element_work(event.time ^ u64::from(event.key), self.work);
            let acc = self.current.accs.entry(event.key).or_insert_with(A::init);
            A::update(acc, event.value);
        }
        std::hint::black_box(self.work_sink);
        if let Some(last) = events.last() {
            let horizon = last.time + 1;
            while self.current.start < horizon {
                self.seal_current();
            }
            self.emit_due(horizon, sink);
        }
        Ok(())
    }

    fn seal_current(&mut self) {
        let end = self.current.end;
        let next_end = self.next_edge(end);
        let finished = std::mem::replace(
            &mut self.current,
            Slice {
                start: end,
                end: next_end,
                accs: FastMap::default(),
            },
        );
        if !finished.accs.is_empty() {
            self.sealed.push_back(finished);
        }
    }

    /// Emits every window instance whose end is at or before `watermark`
    /// by combining the sealed slices inside its lifetime, then evicts
    /// slices no longer needed by any window.
    fn emit_due(&mut self, watermark: u64, sink: &mut ResultSink) {
        for i in 0..self.windows.len() {
            let window = self.windows[i];
            loop {
                let m = self.cursors[i];
                let a = m * window.slide();
                let b = a + window.range();
                if b > watermark {
                    break;
                }
                self.cursors[i] += 1;
                self.combine_and_emit(window, Interval::new(a, b), sink);
            }
        }
        // A slice is dead once it ends at or before every window's next
        // instance start.
        let min_start = self
            .windows
            .iter()
            .zip(&self.cursors)
            .map(|(w, &m)| m * w.slide())
            .min()
            .unwrap_or(0);
        while self.sealed.front().is_some_and(|s| s.end <= min_start) {
            self.sealed.pop_front();
        }
    }

    fn combine_and_emit(&mut self, window: Window, interval: Interval, sink: &mut ResultSink) {
        // Binary search for the first slice that could overlap.
        let first = self.sealed.partition_point(|s| s.end <= interval.start);
        let mut out: FastMap<u32, A::Acc> = FastMap::default();
        for s in self.sealed.iter().skip(first) {
            if s.start >= interval.end {
                break;
            }
            debug_assert!(
                interval.start <= s.start && s.end <= interval.end,
                "slice [{}, {}) not aligned with instance {interval}",
                s.start,
                s.end
            );
            self.merges += s.accs.len() as u64;
            for (&key, acc) in &s.accs {
                self.work_sink ^= element_work(s.start ^ u64::from(key), self.work);
                match out.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        A::combine(e.get_mut(), acc);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(acc.clone());
                    }
                }
            }
        }
        for (key, acc) in &out {
            let result = WindowResult {
                window,
                interval,
                key: *key,
                agg: 0,
                value: A::finalize(acc),
            };
            sink.push(result, &mut self.results_emitted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_engine::reference_results;
    use fw_engine::sorted_results;

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn stream(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t * 3 % u64::from(keys)) as u32, ((t * 31) % 97) as f64))
            .collect()
    }

    #[test]
    fn slicing_matches_reference_for_all_combinable_functions() {
        let windows = WindowSet::new(vec![w(20, 20), w(30, 30), w(40, 20), w(50, 10)]).unwrap();
        let evs = stream(400, 3);
        for function in [
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Sum,
            AggregateFunction::Count,
            AggregateFunction::Avg,
        ] {
            let out = execute_sliced(&windows, function, &evs, true).unwrap();
            let got = sorted_results(out.results);
            let oracle = reference_results(windows.windows(), function, &evs);
            assert_eq!(got, oracle, "{function}");
        }
    }

    #[test]
    fn rejects_holistic_functions() {
        let windows = WindowSet::new(vec![w(10, 10)]).unwrap();
        let err =
            execute_sliced(&windows, AggregateFunction::Median, &stream(10, 1), true).unwrap_err();
        assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
    }

    #[test]
    fn rejects_out_of_order() {
        let windows = WindowSet::new(vec![w(10, 10)]).unwrap();
        let evs = vec![Event::new(9, 0, 1.0), Event::new(3, 0, 1.0)];
        let err = execute_sliced(&windows, AggregateFunction::Min, &evs, true).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { .. }));
    }

    #[test]
    fn sparse_streams_with_gaps() {
        let windows = WindowSet::new(vec![w(10, 5), w(20, 10)]).unwrap();
        let evs: Vec<Event> = (0..40u64)
            .map(|i| Event::new(i * 13, 0, i as f64))
            .collect();
        let out = execute_sliced(&windows, AggregateFunction::Max, &evs, true).unwrap();
        let oracle = reference_results(windows.windows(), AggregateFunction::Max, &evs);
        assert_eq!(sorted_results(out.results), oracle);
    }

    #[test]
    fn slice_store_stays_bounded() {
        // After processing far past the largest range, old slices must be
        // evicted (bounded memory, as in Scotty).
        let windows = WindowSet::new(vec![w(40, 20), w(100, 50)]).unwrap();
        let evs = stream(10_000, 2);
        let mut slicer = Slicer::<MinAgg>::new(&windows);
        let mut sink = ResultSink::CountOnly;
        slicer.run(&evs, &mut sink).unwrap();
        assert!(
            slicer.sealed.len() <= 16,
            "{} sealed slices retained",
            slicer.sealed.len()
        );
    }

    #[test]
    fn empty_stream() {
        let windows = WindowSet::new(vec![w(10, 10)]).unwrap();
        let out = execute_sliced(&windows, AggregateFunction::Min, &[], true).unwrap();
        assert_eq!(out.results_emitted, 0);
    }
}
