//! # fw-bench — shared helpers for the criterion benchmarks
//!
//! The benchmarks regenerate the paper's tables and figures as timing
//! entry points (`cargo bench`); the full multi-run reports come from the
//! `fw-experiments` binary. This library holds the small amount of setup
//! code the bench targets share so each target stays focused on one
//! artifact.

#![warn(missing_docs)]
#![warn(clippy::all)]

use fw_core::{CostModel, Optimizer, QueryPlan, Semantics, WindowQuery, WindowSet};
use fw_engine::Event;
use fw_workload::{generate_window_set, GenConfig, Generator, WindowShape};

/// Deterministic constant-pace stream for benchmarks.
#[must_use]
pub fn bench_events(n: u64, keys: u32) -> Vec<Event> {
    (0..n).map(|t| Event::new(t, (t % u64::from(keys.max(1))) as u32, (t % 997) as f64)).collect()
}

/// The first window set of a configuration (run 1 of the paper's ten).
#[must_use]
pub fn bench_window_set(generator: Generator, shape: WindowShape, size: usize) -> WindowSet {
    generate_window_set(generator, shape, size, &GenConfig::default(), bench_seed(generator, shape, size))
}

fn bench_seed(generator: Generator, shape: WindowShape, size: usize) -> u64 {
    // Mirror fw_workload::generate_runs' seed derivation for run 0.
    (0x5DEECE66D ^ ((size as u64) << 32))
        | 0x9E3779B9
        | match (generator, shape) {
            (Generator::RandomGen, WindowShape::Tumbling) => 0x1000_0000,
            (Generator::RandomGen, WindowShape::Hopping) => 0x2000_0000,
            (Generator::SequentialGen, WindowShape::Tumbling) => 0x3000_0000,
            (Generator::SequentialGen, WindowShape::Hopping) => 0x4000_0000,
        }
}

/// The three plans for a window set under the given semantics.
#[must_use]
pub fn bench_plans(
    windows: &WindowSet,
    semantics: Semantics,
) -> (QueryPlan, QueryPlan, QueryPlan) {
    let query = WindowQuery::new(windows.clone(), fw_core::AggregateFunction::Min);
    let outcome = Optimizer::new(CostModel::default())
        .optimize_with(&query, semantics)
        .expect("benchmark query optimizes");
    (outcome.original.plan, outcome.rewritten.plan, outcome.factored.plan)
}

/// Semantics the paper pairs with a window shape.
#[must_use]
pub fn semantics_for(shape: WindowShape) -> Semantics {
    match shape {
        WindowShape::Tumbling => Semantics::PartitionedBy,
        WindowShape::Hopping => Semantics::CoveredBy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_fixtures() {
        let events = bench_events(100, 4);
        assert_eq!(events.len(), 100);
        let ws = bench_window_set(Generator::SequentialGen, WindowShape::Tumbling, 5);
        assert_eq!(ws.len(), 5);
        let (orig, rew, fac) = bench_plans(&ws, semantics_for(WindowShape::Tumbling));
        assert!(orig.validate().is_ok());
        assert!(rew.validate().is_ok());
        assert!(fac.validate().is_ok());
    }
}
