//! # fw-bench — shared helpers for the benchmark targets
//!
//! The benchmarks regenerate the paper's tables and figures as timing
//! entry points (`cargo bench`); the full multi-run reports come from the
//! `fw-experiments` binary. This library holds the fixture setup the
//! bench targets share plus a small, dependency-free timing harness
//! (mean/best over a fixed iteration count with one warm-up run) so the
//! targets run `harness = false` without an external bench framework.

#![warn(missing_docs)]
#![warn(clippy::all)]

use factor_windows::Session;
use fw_core::{CostModel, Optimizer, PlanChoice, QueryPlan, Semantics, WindowQuery, WindowSet};
use fw_engine::Event;
use fw_workload::{generate_window_set, GenConfig, Generator, WindowShape};

pub use fw_workload::{evaluation_panels as panels, setup_label as panel_label};
use std::time::{Duration, Instant};

/// Default measured iterations per benchmark entry.
pub const DEFAULT_ITERS: u32 = 10;

/// One benchmark measurement: wall times over repeated runs.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean wall time per iteration.
    pub mean: Duration,
    /// Best (minimum) wall time over the iterations.
    pub best: Duration,
    /// Measured iterations.
    pub iters: u32,
}

/// Times `f` over `iters` iterations after one warm-up run.
pub fn time<F: FnMut()>(iters: u32, mut f: F) -> Measurement {
    let iters = iters.max(1);
    f(); // warm-up: page in data, train branches
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        total += elapsed;
        best = best.min(elapsed);
    }
    Measurement {
        mean: total / iters,
        best,
        iters,
    }
}

/// Times `f` and prints one aligned report line.
pub fn report<F: FnMut()>(label: &str, iters: u32, f: F) -> Measurement {
    let m = time(iters, f);
    println!(
        "{label:<48} mean {:>10.3?}  best {:>10.3?}  ({} iters)",
        m.mean, m.best, m.iters
    );
    m
}

/// Times `f` (which processes `events` events per call) and prints a
/// throughput report line in K events/s, the paper's metric.
pub fn report_throughput<F: FnMut()>(label: &str, events: u64, iters: u32, f: F) -> Measurement {
    let m = time(iters, f);
    let eps = events as f64 / m.mean.as_secs_f64();
    println!(
        "{label:<48} {:>10.0} K events/s  (mean {:>9.3?}, {} iters)",
        eps / 1e3,
        m.mean,
        m.iters
    );
    m
}

/// One machine-readable throughput measurement: events/sec for one bench
/// configuration. Rates are rounded to whole events/sec so the documents
/// stay parseable by the workspace's integer-only `fw_core::json` codec.
#[derive(Debug, Clone)]
pub struct ThroughputRecord {
    /// Human-readable configuration label (also the report line's label).
    pub label: String,
    /// Plan choice executed (`original`/`rewritten`/`factored`).
    pub plan: String,
    /// Shard worker count; `0` means the single-threaded backend.
    pub shards: usize,
    /// Events per measured run.
    pub events: u64,
    /// Distinct grouping keys in the stream.
    pub keys: u32,
    /// Measured iterations.
    pub iters: u32,
    /// Mean throughput in events/sec.
    pub mean_eps: u64,
    /// Best (max) throughput in events/sec.
    pub best_eps: u64,
}

impl ThroughputRecord {
    /// Builds a record from a [`Measurement`] of a run over `events`
    /// events.
    #[must_use]
    pub fn from_measurement(
        label: &str,
        plan: &str,
        shards: usize,
        events: u64,
        keys: u32,
        m: Measurement,
    ) -> Self {
        let rate = |d: Duration| {
            if d.is_zero() {
                0
            } else {
                (events as f64 / d.as_secs_f64()).round() as u64
            }
        };
        ThroughputRecord {
            label: label.to_string(),
            plan: plan.to_string(),
            shards,
            events,
            keys,
            iters: m.iters,
            mean_eps: rate(m.mean),
            best_eps: rate(m.best),
        }
    }
}

/// Renders a bench run as a JSON document (via the workspace's
/// [`fw_core::json`] codec):
/// `{"bench": …, "records": [{label, plan, shards, events, keys, iters,
/// mean_eps, best_eps}, …]}`.
#[must_use]
pub fn render_throughput_json(bench: &str, records: &[ThroughputRecord]) -> String {
    use fw_core::json::JsonValue;
    let number = |n: u64| JsonValue::Number(i128::from(n));
    let doc = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::String(bench.to_string())),
        (
            "records".to_string(),
            JsonValue::Array(
                records
                    .iter()
                    .map(|r| {
                        JsonValue::Object(vec![
                            ("label".to_string(), JsonValue::String(r.label.clone())),
                            ("plan".to_string(), JsonValue::String(r.plan.clone())),
                            ("shards".to_string(), number(r.shards as u64)),
                            ("events".to_string(), number(r.events)),
                            ("keys".to_string(), number(u64::from(r.keys))),
                            ("iters".to_string(), number(u64::from(r.iters))),
                            ("mean_eps".to_string(), number(r.mean_eps)),
                            ("best_eps".to_string(), number(r.best_eps)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    format!("{doc}\n")
}

/// Writes `BENCH_<bench>.json` into `$BENCH_JSON_DIR` (default: the
/// current directory) so CI and future PRs have a perf trajectory to
/// compare against. Returns the written path.
pub fn write_throughput_json(
    bench: &str,
    records: &[ThroughputRecord],
) -> std::io::Result<std::path::PathBuf> {
    write_bench_document(bench, &render_throughput_json(bench, records))
}

/// Writes `BENCH_<bench>.json` into `$BENCH_JSON_DIR` (default: the
/// current directory) from an arbitrary [`fw_core::json`] document, for
/// benches whose schema doesn't fit [`ThroughputRecord`] (the serving
/// bench's latency percentiles and queue high-water marks, say).
/// Returns the written path.
pub fn write_bench_json(
    bench: &str,
    doc: &fw_core::json::JsonValue,
) -> std::io::Result<std::path::PathBuf> {
    write_bench_document(bench, &format!("{doc}\n"))
}

fn write_bench_document(bench: &str, body: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var_os("BENCH_JSON_DIR")
        .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from);
    let path = dir.join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Deterministic constant-pace stream for benchmarks, as columns (the
/// `Pipeline::push_columns` ingestion path).
#[must_use]
pub fn bench_event_columns(n: u64, keys: u32) -> fw_engine::EventBatch {
    let mut batch = fw_engine::EventBatch::with_capacity(n as usize);
    for t in 0..n {
        batch.push_parts(t, (t % u64::from(keys.max(1))) as u32, (t % 997) as f64);
    }
    batch
}

/// Row-oriented view of [`bench_event_columns`] — the single source of
/// the stream, so per-event-vs-columnar bench comparisons can never
/// silently measure different workloads.
#[must_use]
pub fn bench_events(n: u64, keys: u32) -> Vec<Event> {
    bench_event_columns(n, keys).iter().collect()
}

/// The first window set of a configuration (run 1 of the paper's ten).
#[must_use]
pub fn bench_window_set(generator: Generator, shape: WindowShape, size: usize) -> WindowSet {
    generate_window_set(
        generator,
        shape,
        size,
        &GenConfig::default(),
        bench_seed(generator, shape, size),
    )
}

fn bench_seed(generator: Generator, shape: WindowShape, size: usize) -> u64 {
    // Mirror fw_workload::generate_runs' seed derivation for run 0.
    (0x5DEECE66D ^ ((size as u64) << 32))
        | 0x9E3779B9
        | match (generator, shape) {
            (Generator::RandomGen, WindowShape::Tumbling) => 0x1000_0000,
            (Generator::RandomGen, WindowShape::Hopping) => 0x2000_0000,
            (Generator::SequentialGen, WindowShape::Tumbling) => 0x3000_0000,
            (Generator::SequentialGen, WindowShape::Hopping) => 0x4000_0000,
        }
}

/// A session over the benchmark query for a window set: MIN under the
/// paper's semantics pairing, with the plan pinned by `choice`.
#[must_use]
pub fn bench_session(windows: &WindowSet, semantics: Semantics, choice: PlanChoice) -> Session {
    let query = WindowQuery::new(windows.clone(), fw_core::AggregateFunction::Min);
    Session::from_query(query)
        .semantics(semantics)
        .plan_choice(choice)
}

/// The three plans for a window set under the given semantics.
#[must_use]
pub fn bench_plans(windows: &WindowSet, semantics: Semantics) -> (QueryPlan, QueryPlan, QueryPlan) {
    let query = WindowQuery::new(windows.clone(), fw_core::AggregateFunction::Min);
    let outcome = Optimizer::new(CostModel::default())
        .optimize_with(&query, semantics)
        .expect("benchmark query optimizes");
    (
        outcome.original.plan,
        outcome.rewritten.plan,
        outcome.factored.plan,
    )
}

/// Semantics the paper pairs with a window shape.
#[must_use]
pub fn semantics_for(shape: WindowShape) -> Semantics {
    match shape {
        WindowShape::Tumbling => Semantics::PartitionedBy,
        WindowShape::Hopping => Semantics::CoveredBy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_fixtures() {
        let events = bench_events(100, 4);
        assert_eq!(events.len(), 100);
        let columns = bench_event_columns(100, 4);
        assert_eq!(columns.iter().collect::<Vec<Event>>(), events);
        let ws = bench_window_set(Generator::SequentialGen, WindowShape::Tumbling, 5);
        assert_eq!(ws.len(), 5);
        let (orig, rew, fac) = bench_plans(&ws, semantics_for(WindowShape::Tumbling));
        assert!(orig.validate().is_ok());
        assert!(rew.validate().is_ok());
        assert!(fac.validate().is_ok());
    }

    #[test]
    fn sessions_pin_their_plan_choice() {
        let ws = bench_window_set(Generator::SequentialGen, WindowShape::Tumbling, 5);
        let session = bench_session(
            &ws,
            semantics_for(WindowShape::Tumbling),
            PlanChoice::Original,
        );
        let pipeline = session.build().unwrap();
        assert_eq!(pipeline.choice(), PlanChoice::Original);
    }

    #[test]
    fn throughput_json_is_parseable_and_complete() {
        let m = Measurement {
            mean: Duration::from_millis(10),
            best: Duration::from_millis(8),
            iters: 3,
        };
        let records = vec![
            ThroughputRecord::from_measurement("a/b \"q\"", "factored", 4, 50_000, 64, m),
            ThroughputRecord::from_measurement("seq", "original", 0, 50_000, 64, m),
        ];
        let doc = render_throughput_json("shard_scaling", &records);
        let parsed = fw_core::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            parsed.get("bench"),
            Some(&fw_core::json::JsonValue::String("shard_scaling".into()))
        );
        let rendered = parsed.get("records").unwrap();
        if let fw_core::json::JsonValue::Array(items) = rendered {
            assert_eq!(items.len(), 2);
            assert_eq!(
                items[0].get("mean_eps"),
                Some(&fw_core::json::JsonValue::Number(5_000_000))
            );
            assert_eq!(
                items[1].get("shards"),
                Some(&fw_core::json::JsonValue::Number(0))
            );
        } else {
            panic!("records must be an array: {rendered:?}");
        }
    }

    #[test]
    fn timer_reports_positive_durations() {
        let m = time(3, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(m.mean > Duration::ZERO);
        assert!(m.best <= m.mean);
        assert_eq!(m.iters, 3);
    }
}
