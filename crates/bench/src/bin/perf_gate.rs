//! CI perf-smoke gate: compares two `BENCH_ingest.json` documents (a
//! committed baseline and a fresh run) label-by-label on `mean_eps` and
//! fails if any shared label regressed beyond the tolerance.
//!
//! Usage: `perf_gate <baseline.json> <current.json>`
//!
//! Labels present on only one side are reported and skipped — the sweep
//! shrinks under `INGEST_SMOKE=1` and grows when new axes land, and the
//! gate must not block either. Improvements never fail. The tolerance
//! defaults to 30% and can be overridden with `PERF_GATE_TOLERANCE_PCT`
//! (CI runners are noisy; the gate is meant to catch layout-level
//! regressions — a hash probe back on the steady-state fold path — not
//! scheduler jitter).
//!
//! A second, *within-run* check enforces the profiling budget: for every
//! `…/profile=off/…` label in the current document with a
//! `…/profile=counters/…` twin, enabling node counters must cost less
//! than `PROFILE_GATE_TOLERANCE_PCT` (default 3%) on `best_eps`. The
//! pair is measured back-to-back in one process, so the tight tolerance
//! is meaningful where a cross-run 3% would be scheduler noise.

use fw_core::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// `(mean_eps, best_eps)` per label.
type Rates = BTreeMap<String, (u64, u64)>;

fn load_rates(path: &str) -> Result<Rates, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&body).map_err(|e| format!("{path}: {e}"))?;
    let records = doc
        .get("records")
        .ok_or_else(|| format!("{path}: missing `records`"))?;
    let JsonValue::Array(items) = records else {
        return Err(format!("{path}: `records` is not an array"));
    };
    let mut rates = BTreeMap::new();
    for item in items {
        let label = match item.get("label") {
            Some(JsonValue::String(s)) => s.clone(),
            _ => return Err(format!("{path}: record without a string `label`")),
        };
        let field = |name: &str| match item.get(name) {
            Some(JsonValue::Number(n)) => {
                u64::try_from(*n).map_err(|_| format!("{path}: {label}: `{name}` out of range"))
            }
            _ => Err(format!("{path}: {label}: missing numeric `{name}`")),
        };
        let mean = field("mean_eps")?;
        let best = field("best_eps")?;
        rates.insert(label, (mean, best));
    }
    Ok(rates)
}

/// The within-run profiling-overhead gate described in the module doc.
/// Returns `false` if any counters twin fell below the budget.
fn profile_budget_holds(current: &Rates) -> bool {
    let tolerance_pct: f64 = std::env::var("PROFILE_GATE_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let floor = 1.0 - tolerance_pct / 100.0;
    let mut ok = true;
    for (label, &(_, off_best)) in current {
        if !label.contains("/profile=off/") || off_best == 0 {
            continue;
        }
        let twin = label.replace("/profile=off/", "/profile=counters/");
        let Some(&(_, counters_best)) = current.get(&twin) else {
            continue;
        };
        let ratio = counters_best as f64 / off_best as f64;
        let verdict = if ratio < floor {
            ok = false;
            "FAIL "
        } else {
            "ok   "
        };
        println!(
            "{verdict} {twin}: {counters_best} vs unprofiled {off_best} eps \
             (x{ratio:.3}, budget {tolerance_pct:.0}%)"
        );
    }
    ok
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(current_path)) = (args.next(), args.next()) else {
        return Err("usage: perf_gate <baseline.json> <current.json>".to_string());
    };
    let tolerance_pct: f64 = std::env::var("PERF_GATE_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);
    let floor = 1.0 - tolerance_pct / 100.0;

    let baseline = load_rates(&baseline_path)?;
    let current = load_rates(&current_path)?;

    let mut failed = false;
    for (label, &(base_eps, _)) in &baseline {
        let Some(&(cur_eps, _)) = current.get(label) else {
            println!("SKIP  {label}: not in current run");
            continue;
        };
        if base_eps == 0 {
            println!("SKIP  {label}: baseline rate is zero");
            continue;
        }
        let ratio = cur_eps as f64 / base_eps as f64;
        let verdict = if ratio < floor {
            failed = true;
            "FAIL "
        } else {
            "ok   "
        };
        println!("{verdict} {label}: {cur_eps} vs baseline {base_eps} eps (x{ratio:.2})");
    }
    for label in current.keys() {
        if !baseline.contains_key(label) {
            println!("NEW   {label}: no baseline yet");
        }
    }
    if !profile_budget_holds(&current) {
        failed = true;
        println!("perf gate: node-counter profiling exceeded its overhead budget");
    }
    if failed {
        println!("perf gate: regression beyond {tolerance_pct:.0}% tolerance");
    } else {
        println!("perf gate: all shared labels within {tolerance_pct:.0}% tolerance");
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("perf gate: {msg}");
            ExitCode::FAILURE
        }
    }
}
