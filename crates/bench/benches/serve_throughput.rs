//! Serving-layer throughput: the same deterministic load-generator
//! stream pushed (a) straight into an in-process `GroupHost` via
//! `push_columns` and (b) over loopback TCP through the framed `fw-serve`
//! protocol, at 1/8/64 subscriber connections. The gap between the two is
//! the full cost of the wire: framing, the bounded ingest queue, the
//! engine thread hop, and per-subscriber result fan-out.
//!
//! Emits `BENCH_serve.json` (via `fw_bench::write_bench_json`): one
//! record per configuration with events/sec, watermark→result latency
//! percentiles from the feeder's probe query, rows delivered, and the
//! bounded-queue high-water marks.
//!
//! Environment knobs: `SERVE_SMOKE=1` runs the CI smoke — 64 clients ×
//! 10k events paced at a calibration rate (a quarter of the measured
//! full-speed rate) with `Overflow::Shed`, and **asserts zero shed
//! batches**: at a sane rate the bounded queues must never overflow.
//! `SERVE_EVENTS` / `SERVE_ITERS` override the stream length and
//! iteration count.

use factor_windows::serve::host::{GroupHost, HostConfig};
use factor_windows::serve::loadgen::{stream_plan, LoadGenConfig, PROBE_SQL};
use factor_windows::serve::{run_load, LoadReport, Overflow, ServeConfig, Server};
use fw_bench::write_bench_json;
use fw_core::json::JsonValue;
use std::time::Instant;

const KEYS: u32 = 64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load_config(clients: usize, events: u64) -> LoadGenConfig {
    LoadGenConfig {
        clients,
        events,
        keys: KEYS,
        ..LoadGenConfig::default()
    }
}

/// The in-process ceiling: the identical member set (one registration
/// per would-be subscriber, plus the probe) fed the identical stream
/// through `GroupHost::push_columns`, no sockets anywhere.
fn in_process_eps(config: &LoadGenConfig) -> u64 {
    let plan = stream_plan(config);
    let mut host = GroupHost::new(HostConfig::default());
    for i in 0..config.clients {
        let sql = &config.queries[i % config.queries.len().max(1)];
        host.register_sql(sql).expect("query registers");
    }
    host.register_sql(PROBE_SQL).expect("probe registers");
    let started = Instant::now();
    let mut rows = 0u64;
    for (i, batch) in plan.batches.iter().enumerate() {
        host.push_columns(batch.times(), batch.keys(), batch.values())
            .expect("push");
        if let Some(mark) = plan.watermarks[i] {
            host.advance_watermark(mark).expect("watermark");
            rows += host.poll_results().len() as u64;
        }
    }
    host.advance_watermark(plan.final_watermark).expect("seal");
    rows += host.poll_results().len() as u64;
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    assert!(rows > 0);
    (config.events as f64 / elapsed).round() as u64
}

fn serve_run(config: &LoadGenConfig, overflow: Overflow) -> LoadReport {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            overflow,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let mut handle = server.spawn();
    let report = run_load(addr, config).expect("load run");
    handle.stop();
    report
}

fn record(label: &str, mode: &str, clients: usize, events: u64, report: &LoadReport) -> JsonValue {
    let n = |v: u64| JsonValue::Number(i128::from(v));
    JsonValue::Object(vec![
        ("label".to_string(), JsonValue::String(label.to_string())),
        ("mode".to_string(), JsonValue::String(mode.to_string())),
        ("clients".to_string(), n(clients as u64)),
        ("events".to_string(), n(events)),
        ("events_per_sec".to_string(), n(report.events_per_sec)),
        ("latency_p50_us".to_string(), n(report.latency_p50_us)),
        ("latency_p99_us".to_string(), n(report.latency_p99_us)),
        (
            "latency_samples".to_string(),
            n(report.latency_samples as u64),
        ),
        ("rows_delivered".to_string(), n(report.rows_delivered)),
        (
            "ingest_queue_high_water".to_string(),
            n(report.snapshot.ingest_queue_high_water),
        ),
        (
            "outbox_high_water".to_string(),
            n(report.snapshot.outbox_high_water),
        ),
        ("batches_shed".to_string(), n(report.snapshot.batches_shed)),
        (
            "results_dropped".to_string(),
            n(report.snapshot.results_dropped),
        ),
    ])
}

fn baseline_record(label: &str, clients: usize, events: u64, eps: u64) -> JsonValue {
    let n = |v: u64| JsonValue::Number(i128::from(v));
    JsonValue::Object(vec![
        ("label".to_string(), JsonValue::String(label.to_string())),
        (
            "mode".to_string(),
            JsonValue::String("in_process".to_string()),
        ),
        ("clients".to_string(), n(clients as u64)),
        ("events".to_string(), n(events)),
        ("events_per_sec".to_string(), n(eps)),
    ])
}

fn main() {
    let smoke = std::env::var_os("SERVE_SMOKE").is_some();
    let events = env_u64("SERVE_EVENTS", if smoke { 10_000 } else { 200_000 });
    let iters = env_u64("SERVE_ITERS", if smoke { 1 } else { 2 }).max(1);
    let client_counts: &[usize] = if smoke { &[64] } else { &[1, 8, 64] };

    println!("# serve_throughput: in-process push_columns vs loopback-TCP framed ingest");
    let mut records = Vec::new();

    for &clients in client_counts {
        let config = load_config(clients, events);

        let eps = in_process_eps(&config);
        let label = format!("serve/in_process/members={clients}");
        println!("{label:<48} {:>10.0} K events/s", eps as f64 / 1e3);
        records.push(baseline_record(&label, clients, events, eps));

        // Loopback TCP at full feeder speed; keep the best of `iters`.
        let mut best: Option<LoadReport> = None;
        for _ in 0..iters {
            let report = serve_run(&config, Overflow::Block);
            if best
                .as_ref()
                .is_none_or(|b| report.events_per_sec > b.events_per_sec)
            {
                best = Some(report);
            }
        }
        let report = best.expect("at least one iteration");
        let label = format!("serve/loopback_tcp/clients={clients}");
        println!(
            "{label:<48} {:>10.0} K events/s  (p50 {} us, p99 {} us, {} rows)",
            report.events_per_sec as f64 / 1e3,
            report.latency_p50_us,
            report.latency_p99_us,
            report.rows_delivered
        );
        records.push(record(&label, "loopback_tcp", clients, events, &report));

        if smoke {
            // The CI acceptance gate: replay the same stream paced at a
            // quarter of the just-measured full-speed rate with shedding
            // enabled. A server that drops batches at a rate it already
            // sustained unpaced has a backpressure bug.
            let calibrated = (report.events_per_sec / 4).max(10_000);
            let paced = LoadGenConfig {
                target_eps: Some(calibrated),
                ..config.clone()
            };
            let paced_report = serve_run(&paced, Overflow::Shed);
            let label = format!("serve/calibrated/clients={clients}");
            println!(
                "{label:<48} {:>10.0} K events/s  (target {:.0} K, {} shed)",
                paced_report.events_per_sec as f64 / 1e3,
                calibrated as f64 / 1e3,
                paced_report.snapshot.batches_shed
            );
            assert_eq!(
                paced_report.snapshot.batches_shed, 0,
                "batches shed at calibration rate: {:?}",
                paced_report.snapshot
            );
            assert_eq!(paced_report.snapshot.events_in, events);
            records.push(record(&label, "calibrated", clients, events, &paced_report));
        }
    }

    let doc = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::String("serve".to_string())),
        ("records".to_string(), JsonValue::Array(records)),
    ]);
    match write_bench_json("serve", &doc) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write BENCH_serve.json: {e}"),
    }
}
