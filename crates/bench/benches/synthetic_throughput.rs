//! Figures 11 and 14–16, Tables I and IV: plan throughput on the synthetic
//! constant-pace stream, |W| ∈ {5, 10}, all four generator/shape panels.
//!
//! Criterion times one representative window set (the paper's "run 1") per
//! configuration; the full ten-run figures come from `fw-experiments`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fw_bench::{bench_events, bench_plans, bench_window_set, semantics_for};
use fw_engine::execute;
use fw_workload::{Generator, WindowShape};

const EVENTS: u64 = 100_000;

fn synthetic_throughput(c: &mut Criterion) {
    let events = bench_events(EVENTS, 1);
    for size in [5usize, 10] {
        for (generator, shape) in [
            (Generator::RandomGen, WindowShape::Tumbling),
            (Generator::RandomGen, WindowShape::Hopping),
            (Generator::SequentialGen, WindowShape::Tumbling),
            (Generator::SequentialGen, WindowShape::Hopping),
        ] {
            let label = format!("{}-{}-{}", generator.short(), size, shape.name());
            let windows = bench_window_set(generator, shape, size);
            let (original, rewritten, factored) = bench_plans(&windows, semantics_for(shape));
            let mut group = c.benchmark_group(format!("fig11_14/{label}"));
            group.throughput(Throughput::Elements(EVENTS));
            group.sample_size(10);
            for (plan_name, plan) in [
                ("original", &original),
                ("rewritten", &rewritten),
                ("factored", &factored),
            ] {
                group.bench_with_input(
                    BenchmarkId::from_parameter(plan_name),
                    plan,
                    |b, plan| b.iter(|| execute(plan, &events, false).expect("plan executes")),
                );
            }
            group.finish();
        }
    }
}

criterion_group!(benches, synthetic_throughput);
criterion_main!(benches);
