//! Figures 11 and 14–16, Tables I and IV: plan throughput on the synthetic
//! constant-pace stream, |W| ∈ {5, 10}, all four generator/shape panels.
//!
//! Times one representative window set (the paper's "run 1") per
//! configuration through the `Session` façade; the full ten-run figures
//! come from `fw-experiments`.

use fw_bench::{
    bench_events, bench_session, bench_window_set, panel_label, panels, report_throughput,
    semantics_for, DEFAULT_ITERS,
};
use fw_core::PlanChoice;

const EVENTS: u64 = 100_000;

fn main() {
    let events = bench_events(EVENTS, 1);
    println!("# fig11_14: synthetic throughput, |W| in {{5, 10}}");
    for size in [5usize, 10] {
        for (generator, shape) in panels() {
            let label = panel_label(generator, shape, size);
            let windows = bench_window_set(generator, shape, size);
            for choice in PlanChoice::CONCRETE {
                let session = bench_session(&windows, semantics_for(shape), choice);
                report_throughput(
                    &format!("fig11_14/{label}/{choice}"),
                    EVENTS,
                    DEFAULT_ITERS,
                    || {
                        session.run_batch(&events).expect("plan executes");
                    },
                );
            }
        }
    }
}
