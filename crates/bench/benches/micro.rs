//! Component micro-benchmarks and design ablations:
//!
//! * WCG construction and Algorithm 1 in isolation;
//! * Algorithm 2 (covered-by search) vs Algorithm 5 (partitioned-by
//!   search) on identical tumbling inputs — the search-space reduction of
//!   Section IV-D;
//! * the engine's raw-update vs sub-aggregate-combine paths;
//! * the per-element work emulation ablation (DESIGN.md §4.9): plan
//!   speedups with the emulation off collapse toward 1, which is why the
//!   calibrated default exists.

use fw_bench::{bench_events, bench_plans, bench_window_set, report, semantics_for, DEFAULT_ITERS};
use fw_core::factor::{find_best_factor_covered, find_best_factor_partitioned};
use fw_core::{CostModel, Semantics, Wcg, Window, WindowQuery, WindowSet};
use fw_engine::{FastMap, FastU32Map, PipelineOptions, PlanPipeline};
use fw_workload::{Generator, SplitMix64, WindowShape};

fn wcg_and_algorithm1() {
    for size in [5usize, 10, 20] {
        let windows = bench_window_set(Generator::RandomGen, WindowShape::Tumbling, size);
        report(&format!("micro/wcg/build/{size}"), DEFAULT_ITERS, || {
            std::hint::black_box(Wcg::build_augmented(&windows, Semantics::PartitionedBy));
        });
        let model = CostModel::default();
        let period = model.period(windows.iter()).expect("period fits");
        let wcg = Wcg::build_augmented(&windows, Semantics::PartitionedBy);
        report(
            &format!("micro/wcg/algorithm1/{size}"),
            DEFAULT_ITERS,
            || {
                std::hint::black_box(
                    fw_core::min_cost::minimize(wcg.clone(), &model, period).expect("minimizes"),
                );
            },
        );
    }
}

fn factor_search_ablation() {
    // Same tumbling downstream set; Algorithm 5's divisor-only search vs
    // Algorithm 2's slide×range search (which subsumes it for tumbling
    // inputs but scans a larger space).
    let model = CostModel::default();
    let downstream: Vec<Window> = [120u64, 180, 240, 360, 480]
        .iter()
        .map(|&r| Window::tumbling(r).expect("valid window"))
        .collect();
    let period = model.period(downstream.iter()).expect("period fits");
    report(
        "micro/factor_search/algorithm5_partitioned",
        DEFAULT_ITERS,
        || {
            std::hint::black_box(
                find_best_factor_partitioned(
                    &model,
                    period,
                    &Window::unit(),
                    true,
                    &downstream,
                    &|_| false,
                )
                .expect("search succeeds"),
            );
        },
    );
    report(
        "micro/factor_search/algorithm2_covered",
        DEFAULT_ITERS,
        || {
            std::hint::black_box(
                find_best_factor_covered(
                    &model,
                    period,
                    &Window::unit(),
                    true,
                    &downstream,
                    &|_| false,
                )
                .expect("search succeeds"),
            );
        },
    );
}

fn element_work_ablation() {
    let events = bench_events(50_000, 1);
    let windows = bench_window_set(Generator::SequentialGen, WindowShape::Tumbling, 5);
    let (original, _, factored) = bench_plans(&windows, semantics_for(WindowShape::Tumbling));
    for work in [0u32, 16, 64] {
        for (name, plan) in [("original", &original), ("factored", &factored)] {
            let opts = PipelineOptions {
                collect: false,
                element_work: work,
                out_of_order: 0,
                profile: Default::default(),
            };
            report(
                &format!("micro/element_work/{name}/{work}"),
                DEFAULT_ITERS,
                || {
                    PlanPipeline::run(plan, &events, opts).expect("plan executes");
                },
            );
        }
    }
}

fn engine_paths() {
    // Raw-fed single window vs a two-level sub-aggregate chain.
    let events = bench_events(100_000, 1);
    let opts = PipelineOptions {
        collect: false,
        element_work: 0,
        out_of_order: 0,
        profile: Default::default(),
    };
    let raw = WindowSet::new(vec![Window::tumbling(32).expect("valid")]).expect("non-empty");
    let (raw_plan, _, _) = bench_plans(&raw, Semantics::PartitionedBy);
    report("micro/engine/raw_single_window", DEFAULT_ITERS, || {
        PlanPipeline::run(&raw_plan, &events, opts).expect("plan executes");
    });
    let chain = WindowSet::new(vec![
        Window::tumbling(32).expect("valid"),
        Window::tumbling(64).expect("valid"),
        Window::tumbling(128).expect("valid"),
    ])
    .expect("non-empty");
    let query = WindowQuery::new(chain, fw_core::AggregateFunction::Min);
    let outcome = fw_core::Optimizer::default()
        .optimize_with(&query, Semantics::PartitionedBy)
        .expect("optimizes");
    report("micro/engine/subagg_chain_3", DEFAULT_ITERS, || {
        PlanPipeline::run(&outcome.rewritten.plan, &events, opts).expect("plan executes");
    });
}

/// The pane-map hasher ablation: the generic byte-folding `FastHasher`
/// vs the `u32`-specialized identity/Fibonacci-mix `FastU32Hasher` the
/// panes now use, on dense keys (`0..n`, the device-id workload the
/// specialization targets) and on sparse random keys (where it must not
/// regress — both hashes are bijective mixes, so the probe cost is the
/// only difference).
fn fasthash_ablation() {
    const N: u32 = 65_536;
    let dense: Vec<u32> = (0..N).collect();
    let mut rng = SplitMix64::seed_from_u64(0xFA57);
    let sparse: Vec<u32> = (0..N)
        .map(|_| rng.gen_range_u64(0..u64::MAX) as u32)
        .collect();

    for (layout, keys) in [("dense", &dense), ("sparse", &sparse)] {
        let mut generic: FastMap<u32, u64> = FastMap::default();
        let mut specialized: FastU32Map<u64> = FastU32Map::default();
        for &k in keys {
            generic.insert(k, u64::from(k));
            specialized.insert(k, u64::from(k));
        }
        report(
            &format!("micro/fasthash/{layout}/generic_probe"),
            DEFAULT_ITERS,
            || {
                let mut sum = 0u64;
                for &k in keys {
                    sum = sum.wrapping_add(*generic.get(&k).expect("inserted"));
                }
                std::hint::black_box(sum);
            },
        );
        report(
            &format!("micro/fasthash/{layout}/u32_probe"),
            DEFAULT_ITERS,
            || {
                let mut sum = 0u64;
                for &k in keys {
                    sum = sum.wrapping_add(*specialized.get(&k).expect("inserted"));
                }
                std::hint::black_box(sum);
            },
        );
        report(
            &format!("micro/fasthash/{layout}/u32_insert"),
            DEFAULT_ITERS,
            || {
                let mut m: FastU32Map<u64> = FastU32Map::default();
                for &k in keys {
                    m.insert(k, u64::from(k));
                }
                std::hint::black_box(m.len());
            },
        );
    }
}

fn main() {
    println!("# micro: component benchmarks and ablations");
    wcg_and_algorithm1();
    factor_search_ablation();
    element_work_ablation();
    engine_paths();
    fasthash_ablation();
}
