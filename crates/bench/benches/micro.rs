//! Component micro-benchmarks and design ablations:
//!
//! * WCG construction and Algorithm 1 in isolation;
//! * Algorithm 2 (covered-by search) vs Algorithm 5 (partitioned-by
//!   search) on identical tumbling inputs — the search-space reduction of
//!   Section IV-D;
//! * the engine's raw-update vs sub-aggregate-combine paths;
//! * the per-element work emulation ablation (DESIGN.md §4.9): plan
//!   speedups with the emulation off collapse toward 1, which is why the
//!   calibrated default exists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fw_bench::{bench_events, bench_plans, bench_window_set, semantics_for};
use fw_core::factor::{find_best_factor_covered, find_best_factor_partitioned};
use fw_core::{CostModel, Semantics, Wcg, Window, WindowQuery, WindowSet};
use fw_engine::{execute_with, ExecOptions};
use fw_workload::{Generator, WindowShape};

fn wcg_and_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/wcg");
    for size in [5usize, 10, 20] {
        let windows = bench_window_set(Generator::RandomGen, WindowShape::Tumbling, size);
        group.bench_with_input(BenchmarkId::new("build", size), &windows, |b, ws| {
            b.iter(|| Wcg::build_augmented(ws, Semantics::PartitionedBy));
        });
        let model = CostModel::default();
        let period = model.period(windows.iter()).expect("period fits");
        let wcg = Wcg::build_augmented(&windows, Semantics::PartitionedBy);
        group.bench_function(BenchmarkId::new("algorithm1", size), |b| {
            b.iter(|| {
                fw_core::min_cost::minimize(wcg.clone(), &model, period).expect("minimizes")
            });
        });
    }
    group.finish();
}

fn factor_search_ablation(c: &mut Criterion) {
    // Same tumbling downstream set; Algorithm 5's divisor-only search vs
    // Algorithm 2's slide×range search (which subsumes it for tumbling
    // inputs but scans a larger space).
    let model = CostModel::default();
    let downstream: Vec<Window> = [120u64, 180, 240, 360, 480]
        .iter()
        .map(|&r| Window::tumbling(r).expect("valid window"))
        .collect();
    let period = model.period(downstream.iter()).expect("period fits");
    let mut group = c.benchmark_group("micro/factor_search");
    group.bench_function("algorithm5_partitioned", |b| {
        b.iter(|| {
            find_best_factor_partitioned(
                &model,
                period,
                &Window::unit(),
                true,
                &downstream,
                &|_| false,
            )
            .expect("search succeeds")
        });
    });
    group.bench_function("algorithm2_covered", |b| {
        b.iter(|| {
            find_best_factor_covered(
                &model,
                period,
                &Window::unit(),
                true,
                &downstream,
                &|_| false,
            )
            .expect("search succeeds")
        });
    });
    group.finish();
}

fn element_work_ablation(c: &mut Criterion) {
    let events = bench_events(50_000, 1);
    let windows = bench_window_set(Generator::SequentialGen, WindowShape::Tumbling, 5);
    let (original, _, factored) = bench_plans(&windows, semantics_for(WindowShape::Tumbling));
    let mut group = c.benchmark_group("micro/element_work");
    group.sample_size(10);
    for work in [0u32, 16, 64] {
        for (name, plan) in [("original", &original), ("factored", &factored)] {
            group.bench_with_input(
                BenchmarkId::new(name, work),
                &(plan, work),
                |b, (plan, work)| {
                    b.iter(|| {
                        execute_with(
                            plan,
                            &events,
                            ExecOptions { collect: false, element_work: *work },
                        )
                        .expect("plan executes")
                    });
                },
            );
        }
    }
    group.finish();
}

fn engine_paths(c: &mut Criterion) {
    // Raw-fed single window vs a two-level sub-aggregate chain.
    let events = bench_events(100_000, 1);
    let mut group = c.benchmark_group("micro/engine");
    group.sample_size(10);
    let raw = WindowSet::new(vec![Window::tumbling(32).expect("valid")]).expect("non-empty");
    let (raw_plan, _, _) = bench_plans(&raw, Semantics::PartitionedBy);
    group.bench_function("raw_single_window", |b| {
        b.iter(|| {
            execute_with(&raw_plan, &events, ExecOptions { collect: false, element_work: 0 })
                .expect("plan executes")
        });
    });
    let chain = WindowSet::new(vec![
        Window::tumbling(32).expect("valid"),
        Window::tumbling(64).expect("valid"),
        Window::tumbling(128).expect("valid"),
    ])
    .expect("non-empty");
    let query = WindowQuery::new(chain, fw_core::AggregateFunction::Min);
    let outcome = fw_core::Optimizer::default()
        .optimize_with(&query, Semantics::PartitionedBy)
        .expect("optimizes");
    group.bench_function("subagg_chain_3", |b| {
        b.iter(|| {
            execute_with(
                &outcome.rewritten.plan,
                &events,
                ExecOptions { collect: false, element_work: 0 },
            )
            .expect("plan executes")
        });
    });
    group.finish();
}

criterion_group!(benches, wcg_and_algorithm1, factor_search_ablation, element_work_ablation, engine_paths);
criterion_main!(benches);
