//! Figures 13 and 22: Flink-default (independent evaluation) vs
//! Scotty-style general stream slicing vs the factor-window rewrite. The
//! plan-based systems run through the `Session` façade.

use fw_bench::{
    bench_events, bench_session, bench_window_set, panel_label, panels, report_throughput,
    semantics_for, DEFAULT_ITERS,
};
use fw_core::{AggregateFunction, PlanChoice};
use fw_slicing::execute_sliced;

const EVENTS: u64 = 100_000;

fn main() {
    let events = bench_events(EVENTS, 1);
    println!("# fig13_22: Flink vs Scotty vs factor windows");
    for size in [5usize, 10] {
        for (generator, shape) in panels() {
            let label = panel_label(generator, shape, size);
            let windows = bench_window_set(generator, shape, size);
            let flink = bench_session(&windows, semantics_for(shape), PlanChoice::Original);
            let factor = bench_session(&windows, semantics_for(shape), PlanChoice::Factored);
            report_throughput(
                &format!("fig13_22/{label}/flink"),
                EVENTS,
                DEFAULT_ITERS,
                || {
                    flink.run_batch(&events).expect("plan executes");
                },
            );
            report_throughput(
                &format!("fig13_22/{label}/scotty"),
                EVENTS,
                DEFAULT_ITERS,
                || {
                    execute_sliced(&windows, AggregateFunction::Min, &events, false)
                        .expect("slicing executes");
                },
            );
            report_throughput(
                &format!("fig13_22/{label}/factor_windows"),
                EVENTS,
                DEFAULT_ITERS,
                || {
                    factor.run_batch(&events).expect("plan executes");
                },
            );
        }
    }
}
