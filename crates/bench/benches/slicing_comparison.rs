//! Figures 13 and 22: Flink-default (independent evaluation) vs
//! Scotty-style general stream slicing vs the factor-window rewrite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fw_bench::{bench_events, bench_plans, bench_window_set, semantics_for};
use fw_core::AggregateFunction;
use fw_engine::execute;
use fw_slicing::execute_sliced;
use fw_workload::{Generator, WindowShape};

const EVENTS: u64 = 100_000;

fn slicing_comparison(c: &mut Criterion) {
    let events = bench_events(EVENTS, 1);
    for size in [5usize, 10] {
        for (generator, shape) in [
            (Generator::RandomGen, WindowShape::Tumbling),
            (Generator::RandomGen, WindowShape::Hopping),
            (Generator::SequentialGen, WindowShape::Tumbling),
            (Generator::SequentialGen, WindowShape::Hopping),
        ] {
            let label = format!("{}-{}-{}", generator.short(), size, shape.name());
            let windows = bench_window_set(generator, shape, size);
            let (original, _, factored) = bench_plans(&windows, semantics_for(shape));
            let mut group = c.benchmark_group(format!("fig13_22/{label}"));
            group.throughput(Throughput::Elements(EVENTS));
            group.sample_size(10);
            group.bench_function(BenchmarkId::from_parameter("flink"), |b| {
                b.iter(|| execute(&original, &events, false).expect("plan executes"));
            });
            group.bench_function(BenchmarkId::from_parameter("scotty"), |b| {
                b.iter(|| {
                    execute_sliced(&windows, AggregateFunction::Min, &events, false)
                        .expect("slicing executes")
                });
            });
            group.bench_function(BenchmarkId::from_parameter("factor_windows"), |b| {
                b.iter(|| execute(&factored, &events, false).expect("plan executes"));
            });
            group.finish();
        }
    }
}

criterion_group!(benches, slicing_comparison);
criterion_main!(benches);
