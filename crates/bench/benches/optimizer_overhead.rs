//! Figure 12: cost-based optimization overhead (Algorithm 3 end to end:
//! WCG construction, candidate search, minimization, rewriting) as the
//! window-set size grows from 5 to 20, under both semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fw_bench::bench_window_set;
use fw_core::{AggregateFunction, Optimizer, Semantics, WindowQuery};
use fw_workload::{Generator, WindowShape};

fn optimizer_overhead(c: &mut Criterion) {
    let optimizer = Optimizer::default();
    let mut group = c.benchmark_group("fig12");
    for size in [5usize, 10, 15, 20] {
        for generator in [Generator::RandomGen, Generator::SequentialGen] {
            // Tumbling sets exercise partitioned-by; hopping sets
            // covered-by — the paper's pairing.
            for (shape, semantics) in [
                (WindowShape::Tumbling, Semantics::PartitionedBy),
                (WindowShape::Hopping, Semantics::CoveredBy),
            ] {
                let windows = bench_window_set(generator, shape, size);
                let query = WindowQuery::new(windows, AggregateFunction::Min);
                let label =
                    format!("{}-{}/{}", generator.short(), size, semantics.name());
                group.bench_with_input(BenchmarkId::from_parameter(label), &query, |b, q| {
                    b.iter(|| optimizer.optimize_with(q, semantics).expect("query optimizes"));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, optimizer_overhead);
criterion_main!(benches);
