//! Figure 12: cost-based optimization overhead (Algorithm 3 end to end:
//! WCG construction, candidate search, minimization, rewriting) as the
//! window-set size grows from 5 to 20, under both semantics.

use fw_bench::{bench_window_set, report, DEFAULT_ITERS};
use fw_core::{AggregateFunction, Optimizer, Semantics, WindowQuery};
use fw_workload::{Generator, WindowShape};

fn main() {
    let optimizer = Optimizer::default();
    println!("# fig12: optimization overhead");
    for size in [5usize, 10, 15, 20] {
        for generator in [Generator::RandomGen, Generator::SequentialGen] {
            // Tumbling sets exercise partitioned-by; hopping sets
            // covered-by — the paper's pairing.
            for (shape, semantics) in [
                (WindowShape::Tumbling, Semantics::PartitionedBy),
                (WindowShape::Hopping, Semantics::CoveredBy),
            ] {
                let windows = bench_window_set(generator, shape, size);
                let query = WindowQuery::new(windows, AggregateFunction::Min);
                let label = format!("fig12/{}-{}/{}", generator.short(), size, semantics.name());
                report(&label, DEFAULT_ITERS, || {
                    std::hint::black_box(
                        optimizer
                            .optimize_with(&query, semantics)
                            .expect("query optimizes"),
                    );
                });
            }
        }
    }
}
