//! Ingestion-path throughput: per-event `push` vs row-batch `push_batch`
//! vs columnar `push_columns`, on the Figure 1 workload (MIN over
//! tumbling 20/30/40, constant pace, one key — η = 1), at
//! `ELEMENT_WORK ∈ {0, default}`.
//!
//! `ELEMENT_WORK=0` isolates pure engine bookkeeping — dispatch, instance
//! division, hash probes — which is exactly what run-sliced columnar
//! ingestion amortizes (one division per run boundary, one probe per key
//! sub-run); the acceptance bar is ≥ 2× events/sec over the per-event
//! path there. At the default calibration (~100ns/element, the regime
//! where measured throughput tracks the paper's cost model) the residual
//! bookkeeping is a small slice of the per-event budget and the bar is
//! ≥ 1.1×. Emits `BENCH_ingest.json` so CI tracks both trajectories.
//!
//! A second sweep varies key cardinality (16 / 4k / 256k keys) with
//! windows scaled to the key space (tumbling 2K/3K/4K, factor pane K, so
//! every key lands once per factor pane) at `ELEMENT_WORK=0` — the
//! regime where pane-state layout (hash probes vs dense slabs) dominates
//! the fold/merge path. Labels: `ingest/keys=<K>/<choice>/columnar`.
//!
//! Environment knobs: `INGEST_SMOKE=1` shrinks the sweep for CI;
//! `INGEST_EVENTS` / `INGEST_ITERS` override the stream length and
//! iteration count.

use factor_windows::{PlanChoice, ProfileLevel, Session};
use fw_bench::{
    bench_event_columns, bench_events, report_throughput, write_throughput_json, ThroughputRecord,
};
use fw_core::{AggregateFunction, Window, WindowQuery, WindowSet};
use fw_engine::DEFAULT_ELEMENT_WORK;

const KEYS: u32 = 1;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The Figure 1(a) window set (MIN over tumbling 20/30/40).
fn fig1_session(choice: PlanChoice, element_work: u32) -> Session {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(30).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    Session::from_query(WindowQuery::new(windows, AggregateFunction::Min))
        .plan_choice(choice)
        .element_work(element_work)
}

/// A MIN query over tumbling 2K/3K/4K — the factor window is tumbling K,
/// so a `t % K` key stream puts every key in every factor pane exactly
/// once and pane density scales with cardinality.
fn cardinality_session(keys: u32, choice: PlanChoice) -> Session {
    let k = u64::from(keys);
    let windows = WindowSet::new(vec![
        Window::tumbling(2 * k).unwrap(),
        Window::tumbling(3 * k).unwrap(),
        Window::tumbling(4 * k).unwrap(),
    ])
    .unwrap();
    Session::from_query(WindowQuery::new(windows, AggregateFunction::Min))
        .plan_choice(choice)
        .element_work(0)
}

fn main() {
    let smoke = std::env::var_os("INGEST_SMOKE").is_some();
    let events_n = env_u64("INGEST_EVENTS", if smoke { 80_000 } else { 400_000 });
    let iters = env_u64("INGEST_ITERS", if smoke { 3 } else { 7 }) as u32;
    let events = bench_events(events_n, KEYS);
    let columns = bench_event_columns(events_n, KEYS);

    println!("# ingest: per-event vs batch vs columnar, {events_n} events, {KEYS} key(s)");
    let mut records = Vec::new();
    for work in [0u32, DEFAULT_ELEMENT_WORK] {
        for choice in [PlanChoice::Factored, PlanChoice::Original] {
            let session = fig1_session(choice, work);
            session.optimize().expect("query optimizes");

            let mut measure = |mode: &str, f: &mut dyn FnMut()| {
                let label = format!("ingest/work={work}/{choice}/{mode}");
                let m = report_throughput(&label, events_n, iters, f);
                records.push(ThroughputRecord::from_measurement(
                    &label,
                    &choice.to_string(),
                    0,
                    events_n,
                    KEYS,
                    m,
                ));
            };

            measure("per_event", &mut || {
                let mut pipeline = session.build().expect("compiles");
                for &event in &events {
                    pipeline.push(event).expect("in order");
                }
                pipeline.finish().expect("finishes");
            });
            measure("batch", &mut || {
                let mut pipeline = session.build().expect("compiles");
                pipeline.push_batch(&events).expect("in order");
                pipeline.finish().expect("finishes");
            });
            measure("columnar", &mut || {
                let mut pipeline = session.build().expect("compiles");
                let (times, keys, values) = columns.columns();
                pipeline
                    .push_columns(times, keys, values)
                    .expect("in order");
                pipeline.finish().expect("finishes");
            });
        }
    }

    // Key-cardinality axis: columnar mode, work=0, windows scaled with K
    // so pane density (entries per factor pane) equals the cardinality.
    let key_axis: &[u32] = if smoke {
        &[16, 4096]
    } else {
        &[16, 4096, 262_144]
    };
    for &keys in key_axis {
        // At least 16 full factor panes per iteration so seal/combine
        // cost is represented, not just pane fill.
        let n = events_n.max(16 * u64::from(keys));
        let columns = bench_event_columns(n, keys);
        println!("# ingest cardinality axis: {n} events, {keys} keys");
        for choice in [PlanChoice::Factored, PlanChoice::Original] {
            let session = cardinality_session(keys, choice);
            session.optimize().expect("query optimizes");
            let label = format!("ingest/keys={keys}/{choice}/columnar");
            let m = report_throughput(&label, n, iters, &mut || {
                let mut pipeline = session.build().expect("compiles");
                let (times, ks, values) = columns.columns();
                pipeline.push_columns(times, ks, values).expect("in order");
                pipeline.finish().expect("finishes");
            });
            records.push(ThroughputRecord::from_measurement(
                &label,
                &choice.to_string(),
                0,
                n,
                keys,
                m,
            ));
        }
    }

    // Profiling-overhead axis: the identical columnar ingest with
    // per-node counters on vs off (clock sampling stays off), at
    // `ELEMENT_WORK=0` so the counters compete against pure bookkeeping —
    // the hardest regime for the <3% budget. The perf gate enforces the
    // budget on the within-run pair (`profile=off` vs `profile=counters`).
    println!("# ingest profiling overhead: {events_n} events, node counters on vs off");
    for choice in [PlanChoice::Factored, PlanChoice::Original] {
        for (mode, level) in [
            ("off", ProfileLevel::Off),
            ("counters", ProfileLevel::Counters),
        ] {
            let session = fig1_session(choice, 0).profiling(level);
            session.optimize().expect("query optimizes");
            let label = format!("ingest/profile={mode}/{choice}/columnar");
            let m = report_throughput(&label, events_n, iters, &mut || {
                let mut pipeline = session.build().expect("compiles");
                let (times, keys, values) = columns.columns();
                pipeline
                    .push_columns(times, keys, values)
                    .expect("in order");
                pipeline.finish().expect("finishes");
            });
            records.push(ThroughputRecord::from_measurement(
                &label,
                &choice.to_string(),
                0,
                events_n,
                KEYS,
                m,
            ));
        }
    }
    for choice in [PlanChoice::Factored, PlanChoice::Original] {
        let best = |mode: &str| {
            records
                .iter()
                .find(|r| r.label == format!("ingest/profile={mode}/{choice}/columnar"))
                .map_or(0.0, |r| r.best_eps as f64)
        };
        let off = best("off");
        if off > 0.0 {
            println!(
                "# profile={choice}: counters at {:.1}% of unprofiled throughput",
                100.0 * best("counters") / off
            );
        }
    }

    match write_throughput_json("ingest", &records) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write BENCH_ingest.json: {e}"),
    }

    // Speedup summary: columnar (and batch) over the per-event baseline.
    for work in [0u32, DEFAULT_ELEMENT_WORK] {
        for choice in [PlanChoice::Factored, PlanChoice::Original] {
            let eps = |mode: &str| {
                records
                    .iter()
                    .find(|r| r.label == format!("ingest/work={work}/{choice}/{mode}"))
                    .map_or(0.0, |r| r.mean_eps as f64)
            };
            let base = eps("per_event");
            if base > 0.0 {
                println!(
                    "# work={work} {choice}: batch ×{:.2}, columnar ×{:.2} vs per-event",
                    eps("batch") / base,
                    eps("columnar") / base,
                );
            }
        }
    }
}
