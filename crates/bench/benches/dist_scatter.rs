//! Distributed scatter/gather throughput: worker *processes* over
//! loopback sockets vs the same worker count as in-process shard
//! threads, per plan choice, on the synthetic constant-pace stream.
//!
//! Emits `BENCH_dist.json` (events/sec per configuration; see
//! `fw_bench::write_throughput_json`). `shards = 0` rows are the
//! single-threaded baseline; `dist_scatter/<plan>/workers=N` rows run
//! the fw-dist coordinator (columnar FWB1 frames, vectored writes,
//! decode-in-place on the worker side); `dist_scatter/<plan>/shards=N`
//! rows are the in-process channel-based backend at equal parallelism —
//! the number the wire hot path is judged against.
//!
//! The `fw-worker` binary must exist next to this bench's profile
//! directory (`cargo build --release` builds it; `FW_WORKER_BIN`
//! overrides the path).
//!
//! Environment knobs: `DIST_SCATTER_SMOKE=1` shrinks the sweep for CI;
//! `DIST_SCATTER_EVENTS` / `DIST_SCATTER_ITERS` override the stream
//! length and iteration count.

use factor_windows::{Parallelism, Session};
use fw_bench::{bench_events, report_throughput, write_throughput_json, ThroughputRecord};
use fw_core::{AggregateFunction, PlanChoice, Window, WindowQuery, WindowSet};

const KEYS: u32 = 64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn session(choice: PlanChoice, parallelism: Parallelism) -> Session {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(30).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Sum);
    Session::from_query(query)
        .plan_choice(choice)
        .parallelism(parallelism)
}

fn main() {
    let smoke = std::env::var_os("DIST_SCATTER_SMOKE").is_some();
    let events_n = env_u64("DIST_SCATTER_EVENTS", if smoke { 60_000 } else { 300_000 });
    let iters = env_u64("DIST_SCATTER_ITERS", if smoke { 2 } else { 5 }) as u32;
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let events = bench_events(events_n, KEYS);

    println!("# dist_scatter: worker processes over loopback, {events_n} events, {KEYS} keys");
    let mut records = Vec::new();
    for choice in PlanChoice::CONCRETE {
        // Single-threaded baseline.
        {
            let session = session(choice, Parallelism::Sequential);
            session.optimize().expect("query optimizes");
            let label = format!("dist_scatter/{choice}/shards=0");
            let m = report_throughput(&label, events_n, iters, || {
                session.run_batch(&events).expect("plan executes");
            });
            records.push(ThroughputRecord::from_measurement(
                &label,
                &choice.to_string(),
                0,
                events_n,
                KEYS,
                m,
            ));
        }
        for &n in worker_counts {
            // In-process shard threads at the same parallelism: the
            // socket hop's reference point.
            let session_threads = session(choice, Parallelism::Fixed(n));
            session_threads.optimize().expect("query optimizes");
            let label = format!("dist_scatter/{choice}/shards={n}");
            let m = report_throughput(&label, events_n, iters, || {
                session_threads.run_batch(&events).expect("plan executes");
            });
            records.push(ThroughputRecord::from_measurement(
                &label,
                &choice.to_string(),
                n,
                events_n,
                KEYS,
                m,
            ));

            // Worker processes over loopback sockets.
            let session_procs = session(choice, Parallelism::Distributed { workers: n });
            session_procs.optimize().expect("query optimizes");
            let label = format!("dist_scatter/{choice}/workers={n}");
            let m = report_throughput(&label, events_n, iters, || {
                session_procs.run_batch(&events).expect("plan executes");
            });
            records.push(ThroughputRecord::from_measurement(
                &label,
                &choice.to_string(),
                n,
                events_n,
                KEYS,
                m,
            ));
        }
    }

    match write_throughput_json("dist", &records) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write BENCH_dist.json: {e}"),
    }

    // Wire-tax summary: socket workers vs equal-count shard threads.
    for choice in PlanChoice::CONCRETE {
        for &n in worker_counts {
            let eps = |label: String| {
                records
                    .iter()
                    .find(|r| r.label == label)
                    .map_or(0.0, |r| r.mean_eps as f64)
            };
            let threads = eps(format!("dist_scatter/{choice}/shards={n}"));
            let procs = eps(format!("dist_scatter/{choice}/workers={n}"));
            if threads > 0.0 {
                println!(
                    "# {choice} n={n}: sockets at {:.0}% of in-process shards",
                    100.0 * procs / threads
                );
            }
        }
    }
}
