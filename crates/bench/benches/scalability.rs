//! Figures 20/21 and Table III: scalability of the rewrites at
//! |W| ∈ {15, 20} on the synthetic stream, through the `Session` façade.

use fw_bench::{
    bench_events, bench_session, bench_window_set, panel_label, panels, report_throughput,
    semantics_for, write_throughput_json, ThroughputRecord, DEFAULT_ITERS,
};
use fw_core::PlanChoice;

const EVENTS: u64 = 50_000;

fn main() {
    let events = bench_events(EVENTS, 1);
    println!("# fig20_21: scalability, |W| in {{15, 20}}");
    let mut records = Vec::new();
    for size in [15usize, 20] {
        for (generator, shape) in panels() {
            let label = panel_label(generator, shape, size);
            let windows = bench_window_set(generator, shape, size);
            for choice in PlanChoice::CONCRETE {
                let session = bench_session(&windows, semantics_for(shape), choice);
                let line = format!("fig20_21/{label}/{choice}");
                let m = report_throughput(&line, EVENTS, DEFAULT_ITERS, || {
                    session.run_batch(&events).expect("plan executes");
                });
                records.push(ThroughputRecord::from_measurement(
                    &line,
                    &choice.to_string(),
                    0,
                    EVENTS,
                    1,
                    m,
                ));
            }
        }
    }
    match write_throughput_json("scalability", &records) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write BENCH_scalability.json: {e}"),
    }
}
