//! Shard scaling: `ShardedPipeline` throughput vs worker count, per plan
//! choice, on the synthetic constant-pace stream (64 keys, default
//! element work).
//!
//! Emits `BENCH_shard_scaling.json` (events/sec per configuration; see
//! `fw_bench::write_throughput_json`) so CI and future PRs can track the
//! scaling trajectory. `shards = 0` rows are the single-threaded
//! `PlanPipeline` baseline; `shards = 1` is the sharded backend with one
//! worker — the denominator for the scaling factor.
//!
//! Environment knobs: `SHARD_SCALING_SMOKE=1` shrinks the sweep for CI;
//! `SHARD_SCALING_EVENTS` / `SHARD_SCALING_ITERS` override the stream
//! length and iteration count.

use factor_windows::{Parallelism, Session};
use fw_bench::{bench_events, report_throughput, write_throughput_json, ThroughputRecord};
use fw_core::{AggregateFunction, PlanChoice, Window, WindowQuery, WindowSet};

const KEYS: u32 = 64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn session(choice: PlanChoice, parallelism: Parallelism) -> Session {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(30).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Sum);
    Session::from_query(query)
        .plan_choice(choice)
        .parallelism(parallelism)
}

fn main() {
    let smoke = std::env::var_os("SHARD_SCALING_SMOKE").is_some();
    let events_n = env_u64("SHARD_SCALING_EVENTS", if smoke { 80_000 } else { 400_000 });
    let iters = env_u64("SHARD_SCALING_ITERS", if smoke { 2 } else { 5 }) as u32;
    let events = bench_events(events_n, KEYS);

    println!("# shard_scaling: key-partitioned workers, {events_n} events, {KEYS} keys");
    let mut records = Vec::new();
    for choice in PlanChoice::CONCRETE {
        for shards in [0usize, 1, 2, 4, 8] {
            let parallelism = match shards {
                0 => Parallelism::Sequential,
                n => Parallelism::Fixed(n),
            };
            let session = session(choice, parallelism);
            session.optimize().expect("query optimizes");
            let label = format!("shard_scaling/{choice}/shards={shards}");
            let m = report_throughput(&label, events_n, iters, || {
                session.run_batch(&events).expect("plan executes");
            });
            records.push(ThroughputRecord::from_measurement(
                &label,
                &choice.to_string(),
                shards,
                events_n,
                KEYS,
                m,
            ));
        }
    }

    match write_throughput_json("shard_scaling", &records) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write BENCH_shard_scaling.json: {e}"),
    }

    // Scaling summary: 4-way speedup over one shard, per plan.
    for choice in PlanChoice::CONCRETE {
        let eps = |shards: usize| {
            records
                .iter()
                .find(|r| r.plan == choice.to_string() && r.shards == shards)
                .map_or(0.0, |r| r.mean_eps as f64)
        };
        let base = eps(1);
        if base > 0.0 {
            println!(
                "# {choice}: 4-shard speedup {:.2}x, 8-shard {:.2}x (vs 1 shard)",
                eps(4) / base,
                eps(8) / base
            );
        }
    }
}
