//! Figures 17/18 and Table II: plan throughput on the DEBS-2012-like
//! sensor stream (the Real-32M substitute), |W| ∈ {5, 10}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fw_bench::{bench_plans, bench_window_set, semantics_for};
use fw_engine::execute;
use fw_workload::{debs_stream, DebsConfig, Generator, WindowShape};

fn real_throughput(c: &mut Criterion) {
    let events = debs_stream(&DebsConfig { events: 100_000, seed: 0xDEB5 });
    for size in [5usize, 10] {
        for (generator, shape) in [
            (Generator::RandomGen, WindowShape::Tumbling),
            (Generator::RandomGen, WindowShape::Hopping),
            (Generator::SequentialGen, WindowShape::Tumbling),
            (Generator::SequentialGen, WindowShape::Hopping),
        ] {
            let label = format!("{}-{}-{}", generator.short(), size, shape.name());
            let windows = bench_window_set(generator, shape, size);
            let (original, _, factored) = bench_plans(&windows, semantics_for(shape));
            let mut group = c.benchmark_group(format!("fig17_18/{label}"));
            group.throughput(Throughput::Elements(events.len() as u64));
            group.sample_size(10);
            for (plan_name, plan) in [("original", &original), ("factored", &factored)] {
                group.bench_with_input(
                    BenchmarkId::from_parameter(plan_name),
                    plan,
                    |b, plan| b.iter(|| execute(plan, &events, false).expect("plan executes")),
                );
            }
            group.finish();
        }
    }
}

criterion_group!(benches, real_throughput);
criterion_main!(benches);
