//! Figures 17/18 and Table II: plan throughput on the DEBS-2012-like
//! sensor stream (the Real-32M substitute), |W| ∈ {5, 10}, through the
//! `Session` façade.

use fw_bench::{
    bench_session, bench_window_set, panel_label, panels, report_throughput, semantics_for,
    DEFAULT_ITERS,
};
use fw_core::PlanChoice;
use fw_workload::{debs_stream, DebsConfig};

fn main() {
    let events = debs_stream(&DebsConfig {
        events: 100_000,
        seed: 0xDEB5,
    });
    println!("# fig17_18: real (DEBS-like) throughput, |W| in {{5, 10}}");
    for size in [5usize, 10] {
        for (generator, shape) in panels() {
            let label = panel_label(generator, shape, size);
            let windows = bench_window_set(generator, shape, size);
            for choice in [PlanChoice::Original, PlanChoice::Factored] {
                let session = bench_session(&windows, semantics_for(shape), choice);
                report_throughput(
                    &format!("fig17_18/{label}/{choice}"),
                    events.len() as u64,
                    DEFAULT_ITERS,
                    || {
                        session.run_batch(&events).expect("plan executes");
                    },
                );
            }
        }
    }
}
