//! Multi-aggregate scaling: throughput vs number of aggregate terms per
//! query (1/2/4) × plan choice, on the synthetic constant-pace stream.
//!
//! The point of shared factor-window execution is that pane maintenance is
//! paid once per query, not once per term, so per-event cost should grow
//! **sublinearly** in the term count. Emits `BENCH_multi_agg.json`
//! (events/sec per configuration; see `fw_bench::write_throughput_json`)
//! so CI and future PRs can track that trajectory; record labels carry the
//! term count (`aggs=N`).
//!
//! Environment knobs: `MULTI_AGG_SMOKE=1` shrinks the sweep for CI;
//! `MULTI_AGG_EVENTS` / `MULTI_AGG_ITERS` override the stream length and
//! iteration count.

use factor_windows::Session;
use fw_bench::{bench_events, report_throughput, write_throughput_json, ThroughputRecord};
use fw_core::{AggregateFunction, AggregateSpec, PlanChoice, Window, WindowQuery, WindowSet};

const KEYS: u32 = 64;

/// Term lists whose joint semantics stay partitioned-by at every size, so
/// every sweep point optimizes to the same pane topology and the only
/// variable is the accumulator fan-out.
const SWEEP: [&[AggregateFunction]; 3] = [
    &[AggregateFunction::Sum],
    &[AggregateFunction::Sum, AggregateFunction::Count],
    &[
        AggregateFunction::Sum,
        AggregateFunction::Count,
        AggregateFunction::Min,
        AggregateFunction::Max,
    ],
];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn session(funcs: &[AggregateFunction], choice: PlanChoice) -> Session {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(30).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let specs = funcs.iter().map(|&f| AggregateSpec::new(f)).collect();
    let query = WindowQuery::with_aggregates(windows, specs).expect("valid aggregate list");
    Session::from_query(query).plan_choice(choice)
}

fn main() {
    let smoke = std::env::var_os("MULTI_AGG_SMOKE").is_some();
    let events_n = env_u64("MULTI_AGG_EVENTS", if smoke { 60_000 } else { 300_000 });
    let iters = env_u64("MULTI_AGG_ITERS", if smoke { 2 } else { 5 }) as u32;
    let events = bench_events(events_n, KEYS);

    println!("# multi_agg: aggregate terms per query, {events_n} events, {KEYS} keys");
    let mut records = Vec::new();
    for choice in PlanChoice::CONCRETE {
        for funcs in SWEEP {
            let session = session(funcs, choice);
            session.optimize().expect("query optimizes");
            let label = format!("multi_agg/{choice}/aggs={}", funcs.len());
            let m = report_throughput(&label, events_n, iters, || {
                session.run_batch(&events).expect("plan executes");
            });
            records.push(ThroughputRecord::from_measurement(
                &label,
                &choice.to_string(),
                0,
                events_n,
                KEYS,
                m,
            ));
        }
    }

    match write_throughput_json("multi_agg", &records) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write BENCH_multi_agg.json: {e}"),
    }

    // Sharing summary: per-event cost relative to one term. An unshared
    // engine would pay ~N× per event for N terms; shared pane maintenance
    // keeps the growth well under that.
    for choice in PlanChoice::CONCRETE {
        let eps = |aggs: usize| {
            records
                .iter()
                .find(|r| {
                    r.plan == choice.to_string() && r.label.ends_with(&format!("aggs={aggs}"))
                })
                .map_or(0.0, |r| r.mean_eps as f64)
        };
        let base = eps(1);
        if base > 0.0 {
            println!(
                "# {choice}: per-event cost ×{:.2} at 2 terms, ×{:.2} at 4 terms (vs ×2 / ×4 unshared)",
                base / eps(2).max(1.0),
                base / eps(4).max(1.0)
            );
        }
    }
}
