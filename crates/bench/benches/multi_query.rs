//! Multi-query scaling: throughput vs number of concurrently registered
//! queries (1/2/4/8) × shared vs unshared execution, on the synthetic
//! constant-pace stream.
//!
//! The queries are *correlated* — their window sets overlap pairwise — so
//! the merged cross-query plan shares pane maintenance where an unshared
//! engine pays it once per query. The acceptance bar this bench tracks: a
//! 4-query correlated group should cost **< 2×** a single query per event
//! (vs ~4× for unshared execution). Emits `BENCH_multi_query.json` (see
//! `fw_bench::write_throughput_json`); record labels carry the group size
//! (`queries=N`) and the `plan` field carries the sharing mode.
//!
//! Environment knobs: `MULTI_QUERY_SMOKE=1` shrinks the sweep for CI;
//! `MULTI_QUERY_EVENTS` / `MULTI_QUERY_ITERS` override the stream length
//! and iteration count.

use factor_windows::{QueryGroup, SharingPolicy};
use fw_bench::{bench_events, report_throughput, write_throughput_json, ThroughputRecord};
use fw_core::{AggregateFunction, Window, WindowQuery, WindowSet};

const KEYS: u32 = 64;

/// Eight correlated standing queries — the dashboard scenario: every
/// query draws on the same small family of canonical windows (ranges from
/// the {20, …, 120} divisor family), so window sets overlap pairwise and
/// the union stays small. Functions cycle through the combinable set
/// (distinct `(function, column)` pairs still dedup into shared slots
/// where they repeat).
const QUERIES: [(&[u64], AggregateFunction); 8] = [
    (&[20, 30, 40], AggregateFunction::Sum),
    (&[20, 40, 60], AggregateFunction::Count),
    (&[20, 30, 60], AggregateFunction::Min),
    (&[30, 40, 60], AggregateFunction::Max),
    (&[20, 30, 40, 60], AggregateFunction::Sum),
    (&[20, 60, 120], AggregateFunction::Count),
    (&[30, 40, 120], AggregateFunction::Min),
    (&[20, 40, 120], AggregateFunction::Max),
];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn group(n: usize, policy: SharingPolicy) -> QueryGroup {
    let mut builder = QueryGroup::new().sharing(policy);
    for (ranges, function) in QUERIES.iter().take(n) {
        let windows = WindowSet::new(
            ranges
                .iter()
                .map(|&r| Window::tumbling(r).unwrap())
                .collect(),
        )
        .unwrap();
        builder = builder.query(WindowQuery::new(windows, *function));
    }
    builder
}

fn main() {
    let smoke = std::env::var_os("MULTI_QUERY_SMOKE").is_some();
    let events_n = env_u64("MULTI_QUERY_EVENTS", if smoke { 60_000 } else { 300_000 });
    let iters = env_u64("MULTI_QUERY_ITERS", if smoke { 2 } else { 5 }) as u32;
    let events = bench_events(events_n, KEYS);

    println!("# multi_query: concurrent correlated queries, {events_n} events, {KEYS} keys");
    let mut records = Vec::new();
    for policy in [SharingPolicy::Shared, SharingPolicy::Unshared] {
        let mode = match policy {
            SharingPolicy::Shared => "shared",
            _ => "unshared",
        };
        for n in [1usize, 2, 4, 8] {
            let builder = group(n, policy);
            let label = format!("multi_query/{mode}/queries={n}");
            let m = report_throughput(&label, events_n, iters, || {
                builder.run_batch(&events).expect("group executes");
            });
            records.push(ThroughputRecord::from_measurement(
                &label, mode, 0, events_n, KEYS, m,
            ));
        }
    }

    match write_throughput_json("multi_query", &records) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write BENCH_multi_query.json: {e}"),
    }

    // Sharing summary: per-event cost relative to one query. An unshared
    // engine pays ~N× per event for N standing queries; the merged plan
    // keeps the growth well under that (acceptance: < 2x at 4 queries).
    for mode in ["shared", "unshared"] {
        let eps = |n: usize| {
            records
                .iter()
                .find(|r| r.plan == mode && r.label.ends_with(&format!("queries={n}")))
                .map_or(0.0, |r| r.mean_eps as f64)
        };
        let base = eps(1);
        if base > 0.0 {
            println!(
                "# {mode}: per-event cost ×{:.2} at 2 queries, ×{:.2} at 4, ×{:.2} at 8 (vs ×2/×4/×8 fully unshared)",
                base / eps(2).max(1.0),
                base / eps(4).max(1.0),
                base / eps(8).max(1.0)
            );
        }
    }
}
