//! Checkpoint cost: snapshot size and encode/restore latency as a
//! function of live state (events absorbed, shard count, plan choice).
//!
//! Emits `BENCH_checkpoint.json` so CI can track the durability layer's
//! overhead trajectory: a regression in snapshot size or checkpoint
//! latency shows up as a diff in the artifact, not as a mystery in
//! production.
//!
//! Environment knobs: `CHECKPOINT_SMOKE=1` shrinks the sweep for CI;
//! `CHECKPOINT_EVENTS` / `CHECKPOINT_ITERS` override the stream length
//! and iteration count.

use factor_windows::{Parallelism, PlanChoice, Session};
use fw_bench::{bench_events, time, write_bench_json};
use fw_core::json::JsonValue;
use fw_core::{AggregateFunction, Window, WindowQuery, WindowSet};

const KEYS: u32 = 64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn session(choice: PlanChoice, parallelism: Parallelism) -> Session {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(30).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Sum);
    Session::from_query(query)
        .plan_choice(choice)
        .parallelism(parallelism)
        .collect_results(true)
        .durable(true)
}

fn main() {
    let smoke = std::env::var_os("CHECKPOINT_SMOKE").is_some();
    let events_n = env_u64("CHECKPOINT_EVENTS", if smoke { 40_000 } else { 200_000 });
    let iters = env_u64("CHECKPOINT_ITERS", if smoke { 3 } else { 10 }) as u32;
    let events = bench_events(events_n, KEYS);

    println!("# checkpoint: snapshot size + latency, {events_n} events, {KEYS} keys");
    let number = |n: u64| JsonValue::Number(i128::from(n));
    let mut rows = Vec::new();
    for choice in PlanChoice::CONCRETE {
        for shards in [0usize, 2, 4] {
            let parallelism = match shards {
                0 => Parallelism::Sequential,
                n => Parallelism::Fixed(n),
            };
            let session = session(choice, parallelism);
            let mut pipeline = session.build().expect("query compiles");
            pipeline.push_batch(&events).expect("stream ingests");
            // Leave panes open (no final watermark): the snapshot must
            // carry the full live state, the worst case for size.
            let mut snapshot = Vec::new();
            pipeline.checkpoint(&mut snapshot).expect("checkpoints");
            let bytes = snapshot.len() as u64;

            let encode = time(iters, || {
                let mut sink = Vec::with_capacity(snapshot.len());
                pipeline.checkpoint(&mut sink).expect("checkpoints");
            });
            let restore = time(iters, || {
                let _ = session
                    .restore(&mut snapshot.as_slice())
                    .expect("snapshot restores");
            });
            let encode_us = encode.mean.as_micros() as u64;
            let restore_us = restore.mean.as_micros() as u64;
            println!(
                "checkpoint/{choice}/shards={shards:<2} {bytes:>9} B  encode {encode_us:>7} us  \
                 restore {restore_us:>7} us"
            );
            rows.push(JsonValue::Object(vec![
                ("choice".to_string(), JsonValue::String(choice.to_string())),
                ("shards".to_string(), number(shards as u64)),
                ("events".to_string(), number(events_n)),
                ("snapshot_bytes".to_string(), number(bytes)),
                ("encode_micros".to_string(), number(encode_us)),
                ("restore_micros".to_string(), number(restore_us)),
            ]));
        }
    }
    let doc = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("checkpoint".to_string()),
        ),
        ("records".to_string(), JsonValue::Array(rows)),
    ]);
    match write_bench_json("checkpoint", &doc) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# failed to write BENCH_checkpoint.json: {e}"),
    }
}
