//! Multi-aggregate execution: one shared pane flow, many accumulators.
//!
//! A query like `SELECT MIN(T), MAX(T), AVG(T) … Windows(…)` compiles to
//! *one* pipeline whose pane bookkeeping (instance tracking, sealing,
//! hashing, sub-aggregate routing) runs once per element, exactly as in
//! the single-aggregate engine; each pane entry simply carries one
//! accumulator *slot per aggregate term*, dispatched over the existing
//! [`Aggregate`] implementations through a small enum. This is the
//! execution-side counterpart of the paper's premise — amortize shared
//! work across correlated aggregates — applied along the function axis in
//! addition to the window axis.
//!
//! Per-function combinability is honored within one plan: distributive and
//! algebraic terms (MIN/MAX/SUM/COUNT/AVG) ride the plan's sub-aggregate
//! topology, while holistic terms (MEDIAN) ride **raw panes** on every
//! exposed window — a sub-aggregate-fed exposed operator receives raw
//! events for its holistic slots and parent panes for the rest. Factor
//! (hidden) windows never materialize holistic state.
//!
//! Cost accounting attributes pane work once: [`ExecStats::updates`] and
//! [`ExecStats::combines`] count pane elements exactly as a
//! single-aggregate pipeline would, and the per-slot fan-out is reported
//! separately as [`ExecStats::agg_ops`].

use crate::agg::{Aggregate, AvgAgg, CountAgg, MaxAgg, MedianAgg, MinAgg, SumAgg, SumCount};
use crate::error::{EngineError, Result};
use crate::event::{Event, ResultSink, WindowResult};
use crate::executor::ExecStats;
use crate::fasthash::FastMap;
use crate::pane::{element_work, PaneDeque};
use fw_core::{AggregateClass, AggregateFunction, Interval, QueryPlan, Window};

/// One accumulator slot, dispatching to the existing [`Aggregate`] impls.
#[derive(Debug, Clone)]
enum Slot {
    /// MIN / MAX / SUM state.
    F64(f64),
    /// COUNT state.
    U64(u64),
    /// AVG state.
    SumCount(SumCount),
    /// MEDIAN state (holistic: the full multiset).
    Values(Vec<f64>),
}

fn init_slot(f: AggregateFunction) -> Slot {
    match f {
        AggregateFunction::Min => Slot::F64(MinAgg::init()),
        AggregateFunction::Max => Slot::F64(MaxAgg::init()),
        AggregateFunction::Sum => Slot::F64(SumAgg::init()),
        AggregateFunction::Count => Slot::U64(CountAgg::init()),
        AggregateFunction::Avg => Slot::SumCount(AvgAgg::init()),
        AggregateFunction::Median => Slot::Values(MedianAgg::init()),
    }
}

fn update_slot(f: AggregateFunction, slot: &mut Slot, value: f64) {
    match (f, slot) {
        (AggregateFunction::Min, Slot::F64(acc)) => MinAgg::update(acc, value),
        (AggregateFunction::Max, Slot::F64(acc)) => MaxAgg::update(acc, value),
        (AggregateFunction::Sum, Slot::F64(acc)) => SumAgg::update(acc, value),
        (AggregateFunction::Count, Slot::U64(acc)) => CountAgg::update(acc, value),
        (AggregateFunction::Avg, Slot::SumCount(acc)) => AvgAgg::update(acc, value),
        (AggregateFunction::Median, Slot::Values(acc)) => MedianAgg::update(acc, value),
        _ => unreachable!("slot shape is fixed at init"),
    }
}

fn combine_slot(f: AggregateFunction, into: &mut Slot, from: &Slot) {
    match (f, into, from) {
        (AggregateFunction::Min, Slot::F64(a), Slot::F64(b)) => MinAgg::combine(a, b),
        (AggregateFunction::Max, Slot::F64(a), Slot::F64(b)) => MaxAgg::combine(a, b),
        (AggregateFunction::Sum, Slot::F64(a), Slot::F64(b)) => SumAgg::combine(a, b),
        (AggregateFunction::Count, Slot::U64(a), Slot::U64(b)) => CountAgg::combine(a, b),
        (AggregateFunction::Avg, Slot::SumCount(a), Slot::SumCount(b)) => AvgAgg::combine(a, b),
        (AggregateFunction::Median, ..) => {
            unreachable!("holistic slots are raw-fed, never combined")
        }
        _ => unreachable!("slot shape is fixed at init"),
    }
}

fn finalize_slot(f: AggregateFunction, slot: &Slot) -> f64 {
    match (f, slot) {
        (AggregateFunction::Min, Slot::F64(acc)) => MinAgg::finalize(acc),
        (AggregateFunction::Max, Slot::F64(acc)) => MaxAgg::finalize(acc),
        (AggregateFunction::Sum, Slot::F64(acc)) => SumAgg::finalize(acc),
        (AggregateFunction::Count, Slot::U64(acc)) => CountAgg::finalize(acc),
        (AggregateFunction::Avg, Slot::SumCount(acc)) => AvgAgg::finalize(acc),
        (AggregateFunction::Median, Slot::Values(acc)) => MedianAgg::finalize(acc),
        _ => unreachable!("slot shape is fixed at init"),
    }
}

/// Per-key multi-accumulators for one window instance: one slot per
/// aggregate term, in SELECT-list order.
type MultiAcc = Box<[Slot]>;

/// Per-key accumulators for one window instance.
type MultiPane = FastMap<u32, MultiAcc>;

fn new_acc(funcs: &[AggregateFunction]) -> MultiAcc {
    funcs.iter().map(|&f| init_slot(f)).collect()
}

/// The open instances of one multi-aggregate window operator: the shared
/// [`PaneDeque`] bookkeeping (identical sealing, fast-forward, and
/// spare-pane recycling as the single-aggregate [`crate::pane::PaneStore`])
/// plus per-slot accumulator semantics and pane-level cost accounting
/// (one `update`/`combine` per element, however many slots the element
/// fans out to).
struct MultiStore {
    deque: PaneDeque<MultiAcc>,
    /// All aggregate terms' functions, slot-indexed (SELECT-list order).
    funcs: Box<[AggregateFunction]>,
    /// Slot indices raw events update at this operator: every slot on a
    /// raw-fed operator, the holistic slots on a sub-aggregate-fed exposed
    /// operator, empty on a sub-aggregate-fed factor operator.
    raw_mask: Box<[usize]>,
    /// Slot indices parent panes combine into (the combinable terms).
    combine_mask: Box<[usize]>,
    work: u32,
    work_sink: u64,
    /// Pane-level raw updates (counted once per element, not per slot).
    updates: u64,
    /// Pane-level sub-aggregate combines (once per element, not per slot).
    combines: u64,
    /// Per-slot accumulator operations (the fan-out the pane work feeds).
    agg_ops: u64,
}

impl MultiStore {
    fn new(
        window: Window,
        funcs: Box<[AggregateFunction]>,
        raw_mask: Box<[usize]>,
        combine_mask: Box<[usize]>,
        work: u32,
    ) -> Self {
        MultiStore {
            deque: PaneDeque::new(window),
            funcs,
            raw_mask,
            combine_mask,
            work,
            work_sink: 0,
            updates: 0,
            combines: 0,
            agg_ops: 0,
        }
    }

    #[inline]
    fn front_end(&self) -> u64 {
        self.deque.front_end()
    }

    /// Folds a raw event into every instance containing `t`, updating the
    /// operator's raw-fed slots. Pane work (hashing, instance routing,
    /// emulated element work) is paid once per element.
    #[inline]
    fn update_point(&mut self, t: u64, key: u32, value: f64) {
        let window = *self.deque.window();
        for m in window.instances_containing(t) {
            self.work_sink ^= element_work(t ^ m, self.work);
            self.updates += 1;
            self.agg_ops += self.raw_mask.len() as u64;
            let funcs = &self.funcs;
            let pane = self.deque.pane_mut(m);
            let acc = pane.entry(key).or_insert_with(|| new_acc(funcs));
            for &j in self.raw_mask.iter() {
                update_slot(funcs[j], &mut acc[j], value);
            }
        }
    }

    /// Folds a whole upstream pane into every instance containing `iv`,
    /// combining the combinable slots only (holistic slots are raw-fed and
    /// must never inherit parent state).
    #[inline]
    fn combine_pane(&mut self, iv: &Interval, source: &MultiPane) {
        let window = *self.deque.window();
        for m in window.instances_containing_interval(iv) {
            let work = self.work;
            let mut sink = self.work_sink;
            self.combines += source.len() as u64;
            self.agg_ops += source.len() as u64 * self.combine_mask.len() as u64;
            let funcs = &self.funcs;
            let pane = self.deque.pane_mut(m);
            for (&key, sub) in source {
                sink ^= element_work(m ^ u64::from(key), work);
                let acc = pane.entry(key).or_insert_with(|| new_acc(funcs));
                for &j in self.combine_mask.iter() {
                    combine_slot(funcs[j], &mut acc[j], &sub[j]);
                }
            }
            self.work_sink = sink;
        }
    }
}

/// The compiled physical pipeline for a multi-aggregate plan: the
/// [`crate::executor::PlanPipeline`] core used whenever a plan carries
/// more than one aggregate term (single-term plans keep the monomorphized
/// per-function cores and are byte-identical to the pre-multi engine).
pub(crate) struct MultiCore {
    stores: Vec<MultiStore>,
    windows: Vec<Window>,
    exposed: Vec<bool>,
    children: Vec<Vec<usize>>,
    /// Operators that receive raw events (non-empty `raw_mask`).
    raw_ops: Vec<usize>,
    funcs: Box<[AggregateFunction]>,
    watermark: u64,
    deadline: u64,
    results_emitted: u64,
    fed: u64,
    last_event_time: u64,
}

impl MultiCore {
    pub(crate) fn compile(plan: &QueryPlan, element_work: u32) -> Result<Self> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        let funcs: Box<[AggregateFunction]> =
            plan.aggregates().iter().map(|s| s.function()).collect();
        let combinable: Vec<usize> = funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.class() != AggregateClass::Holistic)
            .map(|(j, _)| j)
            .collect();
        let holistic: Vec<usize> = funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.class() == AggregateClass::Holistic)
            .map(|(j, _)| j)
            .collect();

        let node_ids: Vec<usize> = plan.window_nodes().collect();
        let op_of = |node: usize| {
            node_ids
                .iter()
                .position(|&n| n == node)
                .expect("window node")
        };

        let mut windows = Vec::with_capacity(node_ids.len());
        let mut exposed = Vec::with_capacity(node_ids.len());
        let mut children = vec![Vec::new(); node_ids.len()];
        let mut raw_ops = Vec::new();
        let mut stores = Vec::with_capacity(node_ids.len());
        for (op, &node) in node_ids.iter().enumerate() {
            let window = *plan.window_at(node).expect("window node");
            let is_exposed = plan.is_exposed(node);
            windows.push(window);
            exposed.push(is_exposed);
            let raw_mask: Vec<usize> = match plan.feeding_window(node) {
                // Raw-fed: every slot living at this operator shares the
                // pane feed. Factor operators carry combinable slots only.
                None => {
                    if is_exposed {
                        (0..funcs.len()).collect()
                    } else {
                        combinable.clone()
                    }
                }
                // Sub-aggregate-fed: combinable slots arrive as parent
                // panes; holistic slots (exposed operators only) ride raw.
                Some(parent) => {
                    if combinable.is_empty() {
                        return Err(EngineError::HolisticSubAggregate {
                            function: funcs[holistic[0]].name(),
                        });
                    }
                    children[op_of(parent)].push(op);
                    if is_exposed {
                        holistic.clone()
                    } else {
                        Vec::new()
                    }
                }
            };
            if !raw_mask.is_empty() {
                raw_ops.push(op);
            }
            stores.push(MultiStore::new(
                window,
                funcs.clone(),
                raw_mask.into_boxed_slice(),
                combinable.clone().into_boxed_slice(),
                element_work,
            ));
        }
        let mut core = MultiCore {
            stores,
            windows,
            exposed,
            children,
            raw_ops,
            funcs,
            watermark: 0,
            deadline: 0,
            results_emitted: 0,
            fed: 0,
            last_event_time: 0,
        };
        core.recompute_deadline();
        Ok(core)
    }

    fn recompute_deadline(&mut self) {
        self.deadline = self
            .stores
            .iter()
            .map(MultiStore::front_end)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// Emits one result per (key, aggregate term) for the pane at the
    /// store front.
    #[inline]
    fn emit_front(&mut self, op: usize, interval: Interval, sink: &mut ResultSink) {
        let window = self.windows[op];
        let pane = self.stores[op].deque.front_pane();
        let mut emitted = 0u64;
        if let ResultSink::Collect(_) = sink {
            let results: Vec<WindowResult> = pane
                .iter()
                .flat_map(|(&key, acc)| {
                    self.funcs
                        .iter()
                        .enumerate()
                        .map(move |(j, &f)| WindowResult {
                            window,
                            interval,
                            key,
                            agg: j as u32,
                            value: finalize_slot(f, &acc[j]),
                        })
                })
                .collect();
            for r in results {
                sink.push(r, &mut emitted);
            }
        } else {
            emitted = pane.len() as u64 * self.funcs.len() as u64;
        }
        self.results_emitted += emitted;
    }

    #[inline]
    fn feed(&mut self, event: &Event, sink: &mut ResultSink) -> Result<()> {
        if event.time < self.watermark {
            return Err(EngineError::OutOfOrderEvent {
                at: event.time,
                watermark: self.watermark,
            });
        }
        if event.time >= self.deadline {
            self.advance(event.time, sink);
        }
        self.watermark = event.time;
        for &op in &self.raw_ops {
            self.stores[op].update_point(event.time, event.key, event.value);
        }
        self.fed += 1;
        self.last_event_time = self.last_event_time.max(event.time);
        Ok(())
    }

    /// Seals every instance with `end ≤ watermark`, cascading combinable
    /// sub-aggregates down the forest (same single topological pass as the
    /// monomorphized core).
    fn advance(&mut self, watermark: u64, sink: &mut ResultSink) {
        let mut deadline = u64::MAX;
        for op in 0..self.stores.len() {
            while let Some(interval) = self.stores[op].deque.prepare_due(watermark) {
                if self.exposed[op] {
                    self.emit_front(op, interval, sink);
                }
                let (head, tail) = self.stores.split_at_mut(op + 1);
                let pane = head[op].deque.front_pane();
                for &child in &self.children[op] {
                    debug_assert!(child > op, "plan must be topologically ordered");
                    tail[child - op - 1].combine_pane(&interval, pane);
                }
                self.stores[op].deque.retire_front();
            }
            deadline = deadline.min(self.stores[op].front_end());
        }
        self.deadline = deadline;
    }
}

impl crate::executor::PipelineCore for MultiCore {
    fn feed_batch(&mut self, events: &[Event], sink: &mut ResultSink) -> Result<()> {
        for event in events {
            self.feed(event, sink)?;
        }
        Ok(())
    }

    fn advance_to(&mut self, watermark: u64, sink: &mut ResultSink) {
        self.advance(watermark, sink);
        self.watermark = self.watermark.max(watermark);
    }

    fn watermark(&self) -> u64 {
        self.watermark
    }

    fn events_fed(&self) -> u64 {
        self.fed
    }

    fn last_event_time(&self) -> u64 {
        self.last_event_time
    }

    fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    fn stats(&self) -> ExecStats {
        ExecStats {
            updates: self.stores.iter().map(|s| s.updates).sum(),
            combines: self.stores.iter().map(|s| s.combines).sum(),
            agg_ops: self.stores.iter().map(|s| s.agg_ops).sum(),
        }
    }

    fn work_total(&self) -> u64 {
        self.stores
            .iter()
            .map(|s| s.work_sink)
            .fold(0u64, u64::wrapping_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::sorted_results;
    use crate::executor::{PipelineOptions, PlanPipeline};
    use crate::reference::reference_results;
    use fw_core::{AggregateSpec, Optimizer, PlanChoice, WindowQuery, WindowSet};

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn events(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t % u64::from(keys)) as u32, ((t * 7) % 23) as f64))
            .collect()
    }

    fn multi_query(ws: &[Window], funcs: &[AggregateFunction]) -> WindowQuery {
        let specs = funcs.iter().map(|&f| AggregateSpec::new(f)).collect();
        WindowQuery::with_aggregates(WindowSet::new(ws.to_vec()).unwrap(), specs).unwrap()
    }

    /// Per-term slice of a multi-aggregate result set, with the tag reset
    /// so it compares equal to a single-aggregate run.
    fn slice_of(results: &[WindowResult], agg: u32) -> Vec<WindowResult> {
        results
            .iter()
            .filter(|r| r.agg == agg)
            .map(|r| WindowResult { agg: 0, ..*r })
            .collect()
    }

    #[test]
    fn multi_core_matches_single_aggregate_runs_per_term() {
        let windows = [w(20, 20), w(30, 30), w(40, 40)];
        let funcs = [
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
            AggregateFunction::Count,
        ];
        let evs = events(500, 4);
        for choice in PlanChoice::CONCRETE {
            let multi = Optimizer::default()
                .optimize(&multi_query(&windows, &funcs))
                .unwrap();
            let plan = &multi.select(choice).plan;
            let out = PlanPipeline::run(plan, &evs, PipelineOptions::collecting()).unwrap();
            let got = sorted_results(out.results);
            for (j, &f) in funcs.iter().enumerate() {
                let single = Optimizer::default()
                    .optimize(&WindowQuery::new(
                        WindowSet::new(windows.to_vec()).unwrap(),
                        f,
                    ))
                    .unwrap();
                let sout = PlanPipeline::run(
                    &single.select(choice).plan,
                    &evs,
                    PipelineOptions::collecting(),
                )
                .unwrap();
                assert_eq!(
                    slice_of(&got, j as u32),
                    sorted_results(sout.results),
                    "{f} diverges under {choice}"
                );
            }
        }
    }

    #[test]
    fn holistic_rider_matches_reference_in_a_factored_plan() {
        // MEDIAN rides raw panes inside a plan whose MIN/MAX terms share
        // sub-aggregates (including through a hidden factor window).
        let windows = [w(20, 20), w(30, 30), w(40, 40)];
        let funcs = [
            AggregateFunction::Median,
            AggregateFunction::Min,
            AggregateFunction::Max,
        ];
        let q = multi_query(&windows, &funcs);
        let out = Optimizer::default().optimize(&q).unwrap();
        assert!(out.factored.plan.factor_window_count() > 0);
        let evs = events(400, 3);
        let run =
            PlanPipeline::run(&out.factored.plan, &evs, PipelineOptions::collecting()).unwrap();
        let got = sorted_results(run.results);
        for (j, &f) in funcs.iter().enumerate() {
            let oracle = reference_results(&windows, f, &evs);
            assert_eq!(slice_of(&got, j as u32), oracle, "{f} diverges from oracle");
        }
    }

    #[test]
    fn pane_work_is_attributed_once_not_per_term() {
        let windows = [w(20, 20), w(30, 30), w(40, 40)];
        let evs = events(1200, 2);
        let opts = PipelineOptions::default();
        let single = Optimizer::default()
            .optimize(&WindowQuery::new(
                WindowSet::new(windows.to_vec()).unwrap(),
                AggregateFunction::Sum,
            ))
            .unwrap();
        let sref = PlanPipeline::run(&single.factored.plan, &evs, opts).unwrap();

        let funcs = [
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
            AggregateFunction::Count,
        ];
        let multi = Optimizer::default()
            .optimize(&multi_query(&windows, &funcs))
            .unwrap();
        assert_eq!(multi.factored.plan.factor_window_count(), 1);
        let mrun = PlanPipeline::run(&multi.factored.plan, &evs, opts).unwrap();
        // Pane maintenance is identical to the single-aggregate plan...
        assert_eq!(mrun.stats.updates, sref.stats.updates);
        assert_eq!(mrun.stats.combines, sref.stats.combines);
        // ...while the slot fan-out reports the per-term work.
        assert_eq!(
            mrun.stats.agg_ops,
            4 * (sref.stats.updates + sref.stats.combines)
        );
    }

    #[test]
    fn all_holistic_sub_aggregate_feed_is_rejected() {
        use fw_core::plan::PlanBuilder;
        let mut b = PlanBuilder::with_aggregates(vec![
            AggregateSpec::new(AggregateFunction::Median),
            AggregateSpec::new(AggregateFunction::Median).with_label("M2"),
        ]);
        let src = b.source();
        let w20 = b.window_agg(src, w(20, 20), "w20".to_string(), true);
        let w40 = b.window_agg(w20, w(40, 40), "w40".to_string(), true);
        let plan = b.finish(vec![w20, w40]);
        let err = PlanPipeline::compile(&plan, PipelineOptions::default())
            .err()
            .unwrap();
        assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
    }

    #[test]
    fn incremental_push_and_watermarks_match_batch() {
        let windows = [w(10, 10), w(20, 10), w(40, 20)];
        let funcs = [AggregateFunction::Sum, AggregateFunction::Count];
        let q = multi_query(&windows, &funcs);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(300, 3);
        let batch =
            PlanPipeline::run(&out.factored.plan, &evs, PipelineOptions::collecting()).unwrap();

        let mut pipeline =
            PlanPipeline::compile(&out.factored.plan, PipelineOptions::collecting()).unwrap();
        let mut collected = Vec::new();
        for (i, &e) in evs.iter().enumerate() {
            pipeline.push(e).unwrap();
            if i % 90 == 89 {
                pipeline.advance_watermark(e.time).unwrap();
                collected.extend(pipeline.poll_results());
            }
        }
        let tail = pipeline.finish().unwrap();
        collected.extend(tail.results);
        assert_eq!(sorted_results(collected), sorted_results(batch.results));
    }
}
