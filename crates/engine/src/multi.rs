//! Multi-aggregate execution: one shared pane flow, many accumulators.
//!
//! A query like `SELECT MIN(T), MAX(T), AVG(T) … Windows(…)` compiles to
//! *one* pipeline whose pane bookkeeping (instance tracking, sealing,
//! hashing, sub-aggregate routing) runs once per element, exactly as in
//! the single-aggregate engine; each pane entry simply carries one
//! accumulator *slot per aggregate term*, dispatched over the existing
//! [`Aggregate`] implementations through a small enum. This is the
//! execution-side counterpart of the paper's premise — amortize shared
//! work across correlated aggregates — applied along the function axis in
//! addition to the window axis.
//!
//! Per-function combinability is honored within one plan: distributive and
//! algebraic terms (MIN/MAX/SUM/COUNT/AVG) ride the plan's sub-aggregate
//! topology, while holistic terms (MEDIAN) ride **raw panes** on every
//! exposed window — a sub-aggregate-fed exposed operator receives raw
//! events for its holistic slots and parent panes for the rest. Factor
//! (hidden) windows never materialize holistic state.
//!
//! Cost accounting attributes pane work once: [`ExecStats::updates`] and
//! [`ExecStats::combines`] count pane elements exactly as a
//! single-aggregate pipeline would, and the per-slot fan-out is reported
//! separately as [`ExecStats::agg_ops`].

use crate::agg::{Aggregate, AvgAgg, CountAgg, MaxAgg, MedianAgg, MinAgg, SumAgg, SumCount};
use crate::error::{EngineError, Result};
use crate::event::{ResultSink, WindowResult};
use crate::executor::ExecStats;
use crate::pane::{element_work, PaneDeque};
use crate::profile::{NodeProfile, ProfileLevel};
use fw_core::{AggregateClass, AggregateFunction, Interval, QueryPlan, Window};
use std::time::Instant;

/// Exported execution state of a slot-based core, captured at a watermark
/// boundary for a live plan swap (`PlanPipeline::rebuild`).
///
/// Export first cascades every *in-flight* open pane down the
/// sub-aggregate forest ([`MultiCore::flush_open`]) so that each exposed
/// window's open instances hold **every** event observed so far — whether
/// it arrived raw or was still buffered inside a parent/factor window's
/// unsealed pane. Only exposed windows are then exported: the new plan's
/// internal topology (factor windows, feed edges) may be entirely
/// different, and its fresh internal state will deliver exactly the events
/// *after* the boundary, so migrated instances (events before) plus fresh
/// flow (events after) reconstruct every instance exactly once.
///
/// Slots are identified by `(function, column)` so state survives a slot
/// list that grows, shrinks, or reorders across the swap; slots new to the
/// plan initialize fresh (their partial instances are suppressed by the
/// group routing layer's `since` filter).
pub(crate) struct GroupState {
    /// Ordering watermark of the exporting core.
    pub(crate) watermark: u64,
    /// Maximum event time the exporting core has folded.
    pub(crate) last_event_time: u64,
    /// Slot identities of the exporting core, slot-indexed.
    pub(crate) slots: Vec<(AggregateFunction, String)>,
    /// Open panes of every exposed window: `(window, [(instance,
    /// key-addressed rows)])`. Rows travel keyed by raw key and sorted by
    /// it, so exported state is neutral to any core's slot assignment —
    /// the adopting core re-interns on its own table.
    pub(crate) windows: Vec<(Window, Vec<(u64, KeyedPane)>)>,
}

/// One accumulator slot, dispatching to the existing [`Aggregate`] impls.
/// Crate-visible so the checkpoint codec can serialize pane state
/// shape-checked against each slot's aggregate function.
#[derive(Debug, Clone)]
pub(crate) enum Slot {
    /// MIN / MAX / SUM state.
    F64(f64),
    /// COUNT state.
    U64(u64),
    /// AVG state.
    SumCount(SumCount),
    /// MEDIAN state (holistic: the full multiset).
    Values(Vec<f64>),
}

fn init_slot(f: AggregateFunction) -> Slot {
    match f {
        AggregateFunction::Min => Slot::F64(MinAgg::init()),
        AggregateFunction::Max => Slot::F64(MaxAgg::init()),
        AggregateFunction::Sum => Slot::F64(SumAgg::init()),
        AggregateFunction::Count => Slot::U64(CountAgg::init()),
        AggregateFunction::Avg => Slot::SumCount(AvgAgg::init()),
        AggregateFunction::Median => Slot::Values(MedianAgg::init()),
    }
}

fn combine_slot(f: AggregateFunction, into: &mut Slot, from: &Slot) {
    match (f, into, from) {
        (AggregateFunction::Min, Slot::F64(a), Slot::F64(b)) => MinAgg::combine(a, b),
        (AggregateFunction::Max, Slot::F64(a), Slot::F64(b)) => MaxAgg::combine(a, b),
        (AggregateFunction::Sum, Slot::F64(a), Slot::F64(b)) => SumAgg::combine(a, b),
        (AggregateFunction::Count, Slot::U64(a), Slot::U64(b)) => CountAgg::combine(a, b),
        (AggregateFunction::Avg, Slot::SumCount(a), Slot::SumCount(b)) => AvgAgg::combine(a, b),
        (AggregateFunction::Median, ..) => {
            unreachable!("holistic slots are raw-fed, never combined")
        }
        _ => unreachable!("slot shape is fixed at init"),
    }
}

/// Folds a carried-over (pre-plan-swap) accumulator into a live one at
/// emission time. Identical to [`combine_slot`] for combinable functions;
/// holistic state merges by concatenation — this is an emission-side
/// merge of two halves of the *same* instance, not sub-aggregate
/// composition, so it is sound for every function class.
fn merge_slot(f: AggregateFunction, into: &mut Slot, from: &Slot) {
    match (f, into, from) {
        (AggregateFunction::Median, Slot::Values(a), Slot::Values(b)) => a.extend_from_slice(b),
        (f, into, from) => combine_slot(f, into, from),
    }
}

/// Per-key multi-accumulators for one window instance: one slot per
/// aggregate term, in SELECT-list order. This is the *interchange* row
/// format — state migration ([`GroupState`]) and the checkpoint codec
/// speak rows keyed by raw key; live panes hold the same state as SoA
/// columns ([`MultiPane`]).
pub(crate) type MultiAcc = Box<[Slot]>;

/// Key-addressed pane rows: `(raw key, row)` pairs, the migration and
/// checkpoint representation of one instance's state.
pub(crate) type KeyedPane = Vec<(u32, MultiAcc)>;

/// One aggregate term's accumulator column, slot-indexed (the SoA
/// counterpart of one [`Slot`] position across every key).
#[derive(Debug, Clone)]
enum SlotCol {
    /// MIN / MAX / SUM state.
    F64(Vec<f64>),
    /// COUNT state.
    U64(Vec<u64>),
    /// AVG state.
    SumCount(Vec<SumCount>),
    /// MEDIAN state (holistic: the full multiset per key).
    Values(Vec<Vec<f64>>),
}

impl SlotCol {
    fn new(f: AggregateFunction) -> Self {
        match f.class() {
            AggregateClass::Holistic => SlotCol::Values(Vec::new()),
            _ => match init_slot(f) {
                Slot::F64(_) => SlotCol::F64(Vec::new()),
                Slot::U64(_) => SlotCol::U64(Vec::new()),
                Slot::SumCount(_) => SlotCol::SumCount(Vec::new()),
                Slot::Values(_) => SlotCol::Values(Vec::new()),
            },
        }
    }

    /// Grows the column to cover `n` slots (placeholders are gated by the
    /// pane's occupancy stamp and re-initialized on touch).
    fn grow(&mut self, n: usize) {
        match self {
            SlotCol::F64(v) => v.resize(n, 0.0),
            SlotCol::U64(v) => v.resize(n, 0),
            SlotCol::SumCount(v) => v.resize(n, SumCount::default()),
            SlotCol::Values(v) => v.resize_with(n, Vec::new),
        }
    }

    /// Re-initializes slot `i` for function `f` (first touch this epoch).
    /// The holistic multiset clears in place so its capacity survives
    /// pane recycling.
    #[inline]
    fn reinit(&mut self, f: AggregateFunction, i: usize) {
        match self {
            SlotCol::F64(v) => {
                v[i] = match init_slot(f) {
                    Slot::F64(x) => x,
                    _ => unreachable!("column shape is fixed at construction"),
                }
            }
            SlotCol::U64(v) => v[i] = 0,
            SlotCol::SumCount(v) => v[i] = SumCount::default(),
            SlotCol::Values(v) => v[i].clear(),
        }
    }

    /// Reads slot `i` out as a row-format [`Slot`].
    fn read(&self, i: usize) -> Slot {
        match self {
            SlotCol::F64(v) => Slot::F64(v[i]),
            SlotCol::U64(v) => Slot::U64(v[i]),
            SlotCol::SumCount(v) => Slot::SumCount(v[i]),
            SlotCol::Values(v) => Slot::Values(v[i].clone()),
        }
    }

    /// Writes a row-format [`Slot`] into slot `i`.
    fn write(&mut self, i: usize, slot: &Slot) {
        match (self, slot) {
            (SlotCol::F64(v), Slot::F64(x)) => v[i] = *x,
            (SlotCol::U64(v), Slot::U64(x)) => v[i] = *x,
            (SlotCol::SumCount(v), Slot::SumCount(x)) => v[i] = *x,
            (SlotCol::Values(v), Slot::Values(x)) => {
                v[i].clear();
                v[i].extend_from_slice(x);
            }
            _ => unreachable!("slot shape is fixed at init"),
        }
    }

    /// Folds a contiguous value run into slot `i` through the aggregate's
    /// columnar kernel — one function dispatch per key sub-run per term,
    /// not one per element per term.
    #[inline]
    fn fold_run(&mut self, f: AggregateFunction, i: usize, values: &[f64]) {
        match (f, self) {
            (AggregateFunction::Min, SlotCol::F64(v)) => MinAgg::fold_run(&mut v[i], values),
            (AggregateFunction::Max, SlotCol::F64(v)) => MaxAgg::fold_run(&mut v[i], values),
            (AggregateFunction::Sum, SlotCol::F64(v)) => SumAgg::fold_run(&mut v[i], values),
            (AggregateFunction::Count, SlotCol::U64(v)) => CountAgg::fold_run(&mut v[i], values),
            (AggregateFunction::Avg, SlotCol::SumCount(v)) => AvgAgg::fold_run(&mut v[i], values),
            (AggregateFunction::Median, SlotCol::Values(v)) => {
                MedianAgg::fold_run(&mut v[i], values)
            }
            _ => unreachable!("column shape is fixed at construction"),
        }
    }

    /// Combines slot `i` of `src` into slot `i` of `self` (combinable
    /// functions only — the sub-aggregate cascade).
    #[inline]
    fn combine_at(&mut self, f: AggregateFunction, i: usize, src: &SlotCol) {
        match (f, self, src) {
            (AggregateFunction::Min, SlotCol::F64(a), SlotCol::F64(b)) => {
                MinAgg::combine(&mut a[i], &b[i]);
            }
            (AggregateFunction::Max, SlotCol::F64(a), SlotCol::F64(b)) => {
                MaxAgg::combine(&mut a[i], &b[i]);
            }
            (AggregateFunction::Sum, SlotCol::F64(a), SlotCol::F64(b)) => {
                SumAgg::combine(&mut a[i], &b[i]);
            }
            (AggregateFunction::Count, SlotCol::U64(a), SlotCol::U64(b)) => {
                CountAgg::combine(&mut a[i], &b[i]);
            }
            (AggregateFunction::Avg, SlotCol::SumCount(a), SlotCol::SumCount(b)) => {
                AvgAgg::combine(&mut a[i], &b[i]);
            }
            (AggregateFunction::Median, ..) => {
                unreachable!("holistic slots are raw-fed, never combined")
            }
            _ => unreachable!("column shape is fixed at construction"),
        }
    }

    /// Emission-side merge of two halves of the same instance (see
    /// [`merge_slot`]): combine for combinable functions, multiset
    /// concatenation for the holistic column.
    #[inline]
    fn merge_at(&mut self, f: AggregateFunction, i: usize, src: &Slot) {
        match (f, self, src) {
            (AggregateFunction::Median, SlotCol::Values(a), Slot::Values(b)) => {
                a[i].extend_from_slice(b);
            }
            (f, col, src) => {
                let mut current = col.read(i);
                merge_slot(f, &mut current, src);
                col.write(i, &current);
            }
        }
    }

    /// Finalizes slot `i` into the result value.
    #[inline]
    fn finalize(&self, f: AggregateFunction, i: usize) -> f64 {
        match (f, self) {
            (AggregateFunction::Min, SlotCol::F64(v)) => MinAgg::finalize(&v[i]),
            (AggregateFunction::Max, SlotCol::F64(v)) => MaxAgg::finalize(&v[i]),
            (AggregateFunction::Sum, SlotCol::F64(v)) => SumAgg::finalize(&v[i]),
            (AggregateFunction::Count, SlotCol::U64(v)) => CountAgg::finalize(&v[i]),
            (AggregateFunction::Avg, SlotCol::SumCount(v)) => AvgAgg::finalize(&v[i]),
            (AggregateFunction::Median, SlotCol::Values(v)) => MedianAgg::finalize(&v[i]),
            _ => unreachable!("column shape is fixed at construction"),
        }
    }
}

/// One window instance's multi-aggregate state as a struct of arrays:
/// one [`SlotCol`] per aggregate term, sharing a single epoch-stamped
/// occupancy (same sparse-set scheme as [`crate::slab::Slab`]). A
/// multi-term fold over a key sub-run dispatches each term's column once
/// and then runs a tight loop over contiguous memory.
#[derive(Debug, Clone, Default)]
pub(crate) struct MultiPane {
    /// One column per aggregate term (SELECT-list order); empty until
    /// the first touch (panes are created via `Default` by the deque).
    cols: Box<[SlotCol]>,
    /// `stamp[slot] == epoch` marks the slot live this epoch.
    stamp: Vec<u32>,
    /// Current epoch; 0 only in the pristine `Default` state (bumped to 1
    /// on first touch so zeroed stamps read vacant).
    epoch: u32,
    /// Slots occupied this epoch, in first-touch order.
    touched: Vec<u32>,
}

impl crate::pane::PaneState for MultiPane {
    #[inline]
    fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }
    #[inline]
    fn clear(&mut self) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

impl MultiPane {
    /// Number of live keys this epoch.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.touched.len()
    }

    /// Marks `slot` live, lazily building the columns on a pane's first
    /// ever use and re-initializing the slot's accumulators on first
    /// touch this epoch.
    #[inline]
    fn touch(&mut self, slot: u32, funcs: &[AggregateFunction]) {
        if self.epoch == 0 {
            self.epoch = 1;
        }
        if self.cols.is_empty() && !funcs.is_empty() {
            self.cols = funcs.iter().map(|&f| SlotCol::new(f)).collect();
        }
        let i = slot as usize;
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
            for col in self.cols.iter_mut() {
                col.grow(i + 1);
            }
        }
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.touched.push(slot);
            for (col, &f) in self.cols.iter_mut().zip(funcs) {
                col.reinit(f, i);
            }
        }
    }

    /// Reads the row at `slot` in interchange format.
    fn read_row(&self, slot: u32) -> MultiAcc {
        self.cols.iter().map(|c| c.read(slot as usize)).collect()
    }

    /// Writes an interchange row into `slot` (occupying it).
    fn write_row(&mut self, slot: u32, acc: &MultiAcc, funcs: &[AggregateFunction]) {
        self.touch(slot, funcs);
        for (col, slot_val) in self.cols.iter_mut().zip(acc.iter()) {
            col.write(slot as usize, slot_val);
        }
    }

    /// Materializes the pane as key-addressed rows, sorted by raw key
    /// (the canonical, parallelism-neutral order), via the interner's
    /// slot→key table.
    fn to_entries(&self, slot_keys: &[u32]) -> KeyedPane {
        let mut entries: KeyedPane = self
            .touched
            .iter()
            .map(|&s| (slot_keys[s as usize], self.read_row(s)))
            .collect();
        entries.sort_by_key(|&(key, _)| key);
        entries
    }

    /// Folds the carried half of an instance in (emission-side merge; see
    /// [`merge_slot`]). Both panes are slot-aligned through the same
    /// interner.
    fn merge_from(&mut self, carried: &MultiPane, funcs: &[AggregateFunction]) {
        for &slot in &carried.touched {
            self.touch(slot, funcs);
            for (j, col) in self.cols.iter_mut().enumerate() {
                col.merge_at(
                    funcs[j],
                    slot as usize,
                    &carried.cols[j].read(slot as usize),
                );
            }
        }
    }
}

/// The open instances of one multi-aggregate window operator: the shared
/// [`PaneDeque`] bookkeeping (identical sealing, fast-forward, and
/// spare-pane recycling as the single-aggregate [`crate::pane::PaneStore`])
/// plus per-slot accumulator semantics and pane-level cost accounting
/// (one `update`/`combine` per element, however many slots the element
/// fans out to).
struct MultiStore {
    deque: PaneDeque<MultiPane>,
    /// Carried-over panes from a live plan swap, for open instances of
    /// operators that feed children — ascending by instance index, held
    /// *outside* the regular deque so sealing can cascade only the
    /// post-swap pane to children and fold the pre-swap half in just
    /// before emission (see [`MultiCore::adopt`]). Pre-swap contributions
    /// already reached every descendant through the export-time flush;
    /// cascading them again would double-count (fatal for SUM/COUNT/AVG).
    carry: Vec<(u64, MultiPane)>,
    /// All aggregate terms' functions, slot-indexed (SELECT-list order).
    funcs: Box<[AggregateFunction]>,
    /// Slot indices raw events update at this operator: every slot on a
    /// raw-fed operator, the holistic slots on a sub-aggregate-fed exposed
    /// operator, empty on a sub-aggregate-fed factor operator.
    raw_mask: Box<[usize]>,
    /// Slot indices parent panes combine into (the combinable terms).
    combine_mask: Box<[usize]>,
    work: u32,
    work_sink: u64,
    /// Pane-level raw updates (counted once per element, not per slot).
    updates: u64,
    /// Pane-level sub-aggregate combines (once per element, not per slot).
    combines: u64,
    /// Per-slot accumulator operations (the fan-out the pane work feeds).
    agg_ops: u64,
    /// Instances sealed at this operator (profiling; counters level).
    seals: u64,
    /// Result rows emitted from this operator (profiling; counters level).
    emitted: u64,
    /// High-water of live entries in any sealing pane (profiling).
    pane_live_hw: u64,
    /// Sampled nanoseconds attributed to this operator (timed level).
    nanos: u64,
}

impl MultiStore {
    fn new(
        window: Window,
        funcs: Box<[AggregateFunction]>,
        raw_mask: Box<[usize]>,
        combine_mask: Box<[usize]>,
        work: u32,
    ) -> Self {
        MultiStore {
            deque: PaneDeque::new(window),
            carry: Vec::new(),
            funcs,
            raw_mask,
            combine_mask,
            work,
            work_sink: 0,
            updates: 0,
            combines: 0,
            agg_ops: 0,
            seals: 0,
            emitted: 0,
            pane_live_hw: 0,
            nanos: 0,
        }
    }

    #[inline]
    fn front_end(&self) -> u64 {
        self.deque.front_end()
    }

    /// Records one sealed instance with `live` occupied entries
    /// (profiling, counters level).
    #[inline]
    fn note_seal(&mut self, live: u64) {
        self.seals += 1;
        self.pane_live_hw = self.pane_live_hw.max(live);
    }

    /// Adds sampled nanoseconds to this operator (profiling, timed level).
    #[inline]
    fn add_nanos(&mut self, ns: u64) {
        self.nanos += ns;
    }

    /// Copies this operator's observed counters into a [`NodeProfile`]
    /// (identity fields are the caller's responsibility). The slot
    /// fan-out ships as `agg_ops` — the multi core maintains it directly
    /// rather than deriving it from `updates + combines`.
    fn profile_into(&self, p: &mut NodeProfile) {
        p.updates += self.updates;
        p.combines += self.combines;
        p.agg_ops += self.agg_ops;
        p.seals += self.seals;
        p.emitted += self.emitted;
        p.pane_live_hw = p.pane_live_hw.max(self.pane_live_hw);
        p.nanos += self.nanos;
    }

    /// Positions the store at its next due instance, taking carried-over
    /// panes into account: an instance whose only content is carry must
    /// still seal (the plain skip-empty fast-forward would drop it).
    fn next_due(&mut self, watermark: u64) -> Option<Interval> {
        match self.carry.first() {
            None => self.deque.prepare_due(watermark),
            Some(&(stop, _)) => self.deque.prepare_due_upto(watermark, stop),
        }
    }

    /// Folds the carried pane for instance `m` (if any) into the front
    /// pane — called after the instance cascaded to children and before
    /// it is emitted, so children only ever see post-swap contributions.
    fn merge_carry_front(&mut self, m: u64) {
        if !matches!(self.carry.first(), Some(&(m0, _)) if m0 == m) {
            return;
        }
        let (_, carried) = self.carry.remove(0);
        let funcs = self.funcs.clone();
        self.deque.pane_mut(m).merge_from(&carried, &funcs);
    }

    /// True when the store holds no live state at all: every open pane is
    /// empty and no carried-over swap state is parked. Carried panes are
    /// slot-addressed, so compaction must also wait for them to drain.
    fn is_idle(&self) -> bool {
        self.carry.is_empty() && self.deque.is_idle()
    }

    /// Frees slab capacity sized to a retired slot space (see
    /// [`PaneDeque::compact`]); callers must hold the idle condition.
    fn compact(&mut self) {
        self.deque.compact();
    }

    /// Folds a *run* of raw events — column slices whose timestamps are
    /// non-decreasing and all route to the same instance set, with keys
    /// pre-translated to dense slots — into those instances, updating the
    /// operator's raw-fed slots. The instance arithmetic is paid once per
    /// run and each key sub-run resolves its accumulator columns once,
    /// then folds through the columnar kernels ([`SlotCol::fold_run`]) —
    /// zero hash probes. The emulated element-work loop runs separately
    /// from the value folds; its sink is combined by XOR, so the split is
    /// order-insensitive, while the value folds keep strict per-element
    /// order for the order-sensitive kernels (SUM/AVG). Per-element
    /// accounting (pane work counted once per element, `agg_ops` per slot
    /// fan-out) is unchanged.
    fn update_run(&mut self, times: &[u64], keys: &[u32], slots: &[u32], values: &[f64]) {
        debug_assert!(!times.is_empty());
        debug_assert!(times.len() == keys.len() && times.len() == values.len());
        debug_assert!(times.len() == slots.len());
        let window = *self.deque.window();
        let instances = window.instances_containing(times[0]);
        debug_assert_eq!(
            window.instances_containing(times[times.len() - 1]),
            instances,
            "run crosses a slide boundary"
        );
        let work = self.work;
        let mut work_sink = self.work_sink;
        let mut folded = 0u64;
        for m in instances {
            for &t in times {
                work_sink ^= element_work(t ^ m, work);
            }
            let funcs = &self.funcs;
            let raw_mask = &self.raw_mask;
            let pane = self.deque.pane_mut(m);
            let mut k = 0;
            while k < slots.len() {
                let slot = slots[k];
                let mut end = k + 1;
                while end < slots.len() && slots[end] == slot {
                    end += 1;
                }
                pane.touch(slot, funcs);
                let run = &values[k..end];
                for &j in raw_mask.iter() {
                    pane.cols[j].fold_run(funcs[j], slot as usize, run);
                }
                k = end;
            }
            folded += times.len() as u64;
        }
        self.updates += folded;
        self.agg_ops += folded * self.raw_mask.len() as u64;
        self.work_sink = work_sink;
    }

    /// Folds a whole upstream pane into every instance containing `iv`,
    /// combining the combinable slots only (holistic slots are raw-fed and
    /// must never inherit parent state). Both panes are slot-aligned
    /// through the shared interner, so the merge is a linear walk of the
    /// source's live slots; `slot_keys` (the interner's slot→key table)
    /// recovers raw keys for the emulated element-work seed. The work
    /// parameters are resolved once per call, outside the instance loop.
    #[inline]
    fn combine_pane(&mut self, iv: &Interval, source: &MultiPane, slot_keys: &[u32]) {
        let window = *self.deque.window();
        let work = self.work;
        let mut sink = self.work_sink;
        for m in window.instances_containing_interval(iv) {
            self.combines += source.len() as u64;
            self.agg_ops += source.len() as u64 * self.combine_mask.len() as u64;
            let funcs = &self.funcs;
            let combine_mask = &self.combine_mask;
            let pane = self.deque.pane_mut(m);
            for &slot in &source.touched {
                sink ^= element_work(m ^ u64::from(slot_keys[slot as usize]), work);
                pane.touch(slot, funcs);
                for &j in combine_mask.iter() {
                    pane.cols[j].combine_at(funcs[j], slot as usize, &source.cols[j]);
                }
            }
        }
        self.work_sink = sink;
    }
}

/// The compiled physical pipeline for a multi-aggregate plan: the
/// [`crate::executor::PlanPipeline`] core used whenever a plan carries
/// more than one aggregate term (single-term plans keep the monomorphized
/// per-function cores and are byte-identical to the pre-multi engine).
pub(crate) struct MultiCore {
    stores: Vec<MultiStore>,
    windows: Vec<Window>,
    exposed: Vec<bool>,
    children: Vec<Vec<usize>>,
    /// Operators that receive raw events (non-empty `raw_mask`).
    raw_ops: Vec<usize>,
    /// Plan node id of each operator (op-indexed) — the stable identity
    /// per-node profiles report under.
    node_ids: Vec<usize>,
    /// Per-node instrumentation level this core was compiled with.
    profile: ProfileLevel,
    /// Seal passes observed (drives the sampled per-node clock).
    seal_passes: u64,
    /// Feed batches observed (drives the sampled per-node clock).
    feed_passes: u64,
    /// Interner compactions performed by this core.
    compactions: u64,
    funcs: Box<[AggregateFunction]>,
    /// Slot identities (`(function, column)`), slot-indexed — the key
    /// state migration matches slots by across plan swaps.
    term_ids: Vec<(AggregateFunction, String)>,
    /// Key → dense slot, shared by every store so parent and child panes
    /// align slot-for-slot and combines are linear merges.
    interner: crate::slab::KeyInterner,
    /// Per-batch key→slot translation buffer (reused; ingress-only).
    slot_buf: Vec<u32>,
    /// Largest live-entry count seen in a sealing pane since the last
    /// compaction (see `Typed::maybe_compact`).
    peak_pane_live: usize,
    /// `fed` at the last compaction (spacing guard against thrash).
    last_compact_fed: u64,
    /// Interner high-water `(slots, bytes)` across compactions.
    interner_hw: (u64, u64),
    watermark: u64,
    deadline: u64,
    results_emitted: u64,
    fed: u64,
    last_event_time: u64,
}

impl MultiCore {
    pub(crate) fn compile(
        plan: &QueryPlan,
        element_work: u32,
        profile: ProfileLevel,
    ) -> Result<Self> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        let funcs: Box<[AggregateFunction]> =
            plan.aggregates().iter().map(|s| s.function()).collect();
        let term_ids: Vec<(AggregateFunction, String)> = plan
            .aggregates()
            .iter()
            .map(|s| (s.function(), s.column().to_string()))
            .collect();
        let combinable: Vec<usize> = funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.class() != AggregateClass::Holistic)
            .map(|(j, _)| j)
            .collect();
        let holistic: Vec<usize> = funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.class() == AggregateClass::Holistic)
            .map(|(j, _)| j)
            .collect();

        let node_ids: Vec<usize> = plan.window_nodes().collect();
        let op_of = |node: usize| {
            node_ids
                .iter()
                .position(|&n| n == node)
                .expect("window node")
        };

        let mut windows = Vec::with_capacity(node_ids.len());
        let mut exposed = Vec::with_capacity(node_ids.len());
        let mut children = vec![Vec::new(); node_ids.len()];
        let mut raw_ops = Vec::new();
        let mut stores = Vec::with_capacity(node_ids.len());
        for (op, &node) in node_ids.iter().enumerate() {
            let window = *plan.window_at(node).expect("window node");
            let is_exposed = plan.is_exposed(node);
            windows.push(window);
            exposed.push(is_exposed);
            let raw_mask: Vec<usize> = match plan.feeding_window(node) {
                // Raw-fed: every slot living at this operator shares the
                // pane feed. Factor operators carry combinable slots only.
                None => {
                    if is_exposed {
                        (0..funcs.len()).collect()
                    } else {
                        combinable.clone()
                    }
                }
                // Sub-aggregate-fed: combinable slots arrive as parent
                // panes; holistic slots (exposed operators only) ride raw.
                Some(parent) => {
                    if combinable.is_empty() {
                        return Err(EngineError::HolisticSubAggregate {
                            function: funcs[holistic[0]].name(),
                        });
                    }
                    children[op_of(parent)].push(op);
                    if is_exposed {
                        holistic.clone()
                    } else {
                        Vec::new()
                    }
                }
            };
            if !raw_mask.is_empty() {
                raw_ops.push(op);
            }
            stores.push(MultiStore::new(
                window,
                funcs.clone(),
                raw_mask.into_boxed_slice(),
                combinable.clone().into_boxed_slice(),
                element_work,
            ));
        }
        let mut core = MultiCore {
            stores,
            windows,
            exposed,
            children,
            raw_ops,
            node_ids,
            profile,
            seal_passes: 0,
            feed_passes: 0,
            compactions: 0,
            funcs,
            term_ids,
            interner: crate::slab::KeyInterner::new(),
            slot_buf: Vec::new(),
            peak_pane_live: 0,
            last_compact_fed: 0,
            interner_hw: (0, 0),
            watermark: 0,
            deadline: 0,
            results_emitted: 0,
            fed: 0,
            last_event_time: 0,
        };
        core.recompute_deadline();
        Ok(core)
    }

    fn recompute_deadline(&mut self) {
        self.deadline = self
            .stores
            .iter()
            .map(MultiStore::front_end)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// Emits one result per (key, aggregate term) for the pane at the
    /// store front, straight into the sink (no intermediate buffer). Keys
    /// are recovered through the interner's slot→key table; emission
    /// walks the pane's live slots in first-touch order.
    #[inline]
    fn emit_front(&mut self, op: usize, interval: Interval, sink: &mut ResultSink) {
        let window = self.windows[op];
        let slot_keys = self.interner.keys();
        let pane = self.stores[op].deque.front_pane();
        let mut emitted = 0u64;
        if let ResultSink::Collect(_) = sink {
            for &slot in &pane.touched {
                let key = slot_keys[slot as usize];
                for (j, &f) in self.funcs.iter().enumerate() {
                    sink.push(
                        WindowResult {
                            window,
                            interval,
                            key,
                            agg: j as u32,
                            value: pane.cols[j].finalize(f, slot as usize),
                        },
                        &mut emitted,
                    );
                }
            }
        } else {
            emitted = pane.len() as u64 * self.funcs.len() as u64;
        }
        self.results_emitted += emitted;
        if self.profile.counters_on() {
            self.stores[op].emitted += emitted;
        }
    }

    /// Cascades every open (unsealed) pane down the sub-aggregate forest
    /// without sealing or emitting anything. After the pass, each window's
    /// open instances hold every event observed so far, including
    /// contributions that were still in flight inside an ancestor's
    /// unsealed pane. Operators are topologically ordered (parents first),
    /// so a single pass propagates transitively.
    ///
    /// Exactly-once is preserved: an open pane has never been delivered
    /// (delivery normally happens at seal), and after the flush the old
    /// core is discarded, so each in-flight element reaches each
    /// descendant instance once. Under covered-by semantics overlapping
    /// deliveries can double up exactly as they do during normal sealing —
    /// which only overlap-tolerant functions (MIN/MAX) ride.
    fn flush_open(&mut self) {
        let slot_keys = self.interner.keys();
        for op in 0..self.stores.len() {
            if self.children[op].is_empty() {
                continue;
            }
            let (head, tail) = self.stores.split_at_mut(op + 1);
            let window = *head[op].deque.window();
            for (m, pane) in head[op].deque.iter_open() {
                let interval = window.interval(m);
                for &child in &self.children[op] {
                    debug_assert!(child > op, "plan must be topologically ordered");
                    tail[child - op - 1].combine_pane(&interval, pane, slot_keys);
                }
            }
        }
    }

    /// Exports the core's migratable state for a live plan swap: flushes
    /// in-flight sub-aggregates downward, then drains the open panes of
    /// every exposed window (see [`GroupState`]). Carried-over panes from
    /// a previous swap are folded back into their instances first — they
    /// are emission-side state and must keep traveling as such.
    pub(crate) fn export_state(&mut self) -> GroupState {
        self.flush_open();
        let mut windows = Vec::new();
        for op in 0..self.stores.len() {
            if !self.exposed[op] {
                continue;
            }
            let funcs = self.funcs.clone();
            let slot_keys = self.interner.keys();
            let store = &mut self.stores[op];
            let mut panes = store.deque.take_open();
            for (m, carried) in std::mem::take(&mut store.carry) {
                match panes.iter_mut().find(|(pm, _)| *pm == m) {
                    Some((_, pane)) => pane.merge_from(&carried, &funcs),
                    None => panes.push((m, carried)),
                }
            }
            panes.sort_by_key(|&(m, _)| m);
            if !panes.is_empty() {
                // Hand state over key-addressed (sorted by raw key): the
                // adopting core owns a different interner, and checkpoint
                // snapshots must stay slot-assignment-neutral.
                let entries: Vec<(u64, KeyedPane)> = panes
                    .iter()
                    .map(|(m, pane)| (*m, pane.to_entries(slot_keys)))
                    .collect();
                windows.push((self.windows[op], entries));
            }
        }
        GroupState {
            watermark: self.watermark,
            last_event_time: self.last_event_time,
            slots: self.term_ids.clone(),
            windows,
        }
    }

    /// Installs exported state into this (freshly compiled) core: exposed
    /// windows present in both plans receive their open panes back, with
    /// accumulator slots matched by `(function, column)`; slots new to
    /// this plan initialize fresh, slots that disappeared are dropped.
    /// Exported windows absent from this plan are discarded. The ordering
    /// watermark and end-of-stream horizon carry over.
    ///
    /// Panes of operators that feed children are parked in the store's
    /// *carry* rather than the live deque: their pre-swap contributions
    /// already reached every descendant through the export-time flush, so
    /// sealing must cascade only the post-swap pane and fold the carried
    /// half in just before emission. Leaf operators (no children) adopt
    /// directly into the deque.
    pub(crate) fn adopt(&mut self, state: GroupState) {
        debug_assert_eq!(self.fed, 0, "state is adopted into a fresh core only");
        self.watermark = self.watermark.max(state.watermark);
        self.last_event_time = self.last_event_time.max(state.last_event_time);
        let slot_map: Vec<Option<usize>> = self
            .term_ids
            .iter()
            .map(|key| state.slots.iter().position(|old| old == key))
            .collect();
        for (window, panes) in state.windows {
            let Some(op) =
                (0..self.stores.len()).find(|&op| self.exposed[op] && self.windows[op] == window)
            else {
                continue;
            };
            let funcs = self.funcs.clone();
            let feeds_children = !self.children[op].is_empty();
            // Fast-forward the cursor past everything already sealed so
            // re-opening instance m does not allocate panes for the
            // sealed prefix (returns None: a fresh deque has no panes).
            let positioned = self.stores[op].deque.prepare_due(state.watermark);
            debug_assert!(positioned.is_none());
            let remap = |old_acc: &MultiAcc| -> MultiAcc {
                funcs
                    .iter()
                    .enumerate()
                    .map(|(j, &f)| match slot_map[j] {
                        Some(old_j) => old_acc[old_j].clone(),
                        None => init_slot(f),
                    })
                    .collect()
            };
            // Entries arrive key-sorted, so slot assignment in this
            // core's interner is deterministic (key order) regardless of
            // the exporting core's interning history.
            if feeds_children {
                let mut carried: Vec<(u64, MultiPane)> = Vec::with_capacity(panes.len());
                for (m, entries) in panes {
                    let mut pane = MultiPane::default();
                    for (key, old_acc) in entries {
                        let slot = self.interner.intern(key);
                        pane.write_row(slot, &remap(&old_acc), &funcs);
                    }
                    carried.push((m, pane));
                }
                carried.sort_by_key(|&(m, _)| m);
                self.stores[op].carry = carried;
            } else {
                for (m, entries) in panes {
                    for (key, old_acc) in entries {
                        let slot = self.interner.intern(key);
                        self.stores[op]
                            .deque
                            .pane_mut(m)
                            .write_row(slot, &remap(&old_acc), &funcs);
                    }
                }
            }
        }
        self.recompute_deadline();
    }

    /// Seals every instance with `end ≤ watermark`, cascading combinable
    /// sub-aggregates down the forest (same single topological pass as the
    /// monomorphized core). Cascading runs *before* the carry merge, so
    /// instances migrated across a plan swap deliver only their post-swap
    /// half to children (the pre-swap half already arrived through the
    /// export-time flush) while still emitting the complete instance.
    fn advance(&mut self, watermark: u64, sink: &mut ResultSink) {
        let counters = self.profile.counters_on();
        let clock = self.profile.clock_on() && {
            self.seal_passes = self.seal_passes.wrapping_add(1);
            self.seal_passes
                .is_multiple_of(crate::executor::PROFILE_CLOCK_STRIDE)
        };
        let mut deadline = u64::MAX;
        for op in 0..self.stores.len() {
            let mut op_timer = clock.then(Instant::now);
            let mut op_nanos = 0u64;
            while let Some(interval) = self.stores[op].next_due(watermark) {
                let (head, tail) = self.stores.split_at_mut(op + 1);
                let pane = head[op].deque.front_pane();
                let live = pane.len();
                self.peak_pane_live = self.peak_pane_live.max(live);
                let slot_keys = self.interner.keys();
                match &mut op_timer {
                    // Sampled pass: child combines are timed separately so
                    // their cost lands on the child node, not the sealer.
                    Some(start) => {
                        op_nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        for &child in &self.children[op] {
                            debug_assert!(child > op, "plan must be topologically ordered");
                            let t0 = Instant::now();
                            tail[child - op - 1].combine_pane(&interval, pane, slot_keys);
                            tail[child - op - 1].add_nanos(
                                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            );
                        }
                        *start = Instant::now();
                    }
                    None => {
                        for &child in &self.children[op] {
                            debug_assert!(child > op, "plan must be topologically ordered");
                            tail[child - op - 1].combine_pane(&interval, pane, slot_keys);
                        }
                    }
                }
                if counters {
                    self.stores[op].note_seal(live as u64);
                }
                let m = interval.start / self.windows[op].slide();
                self.stores[op].merge_carry_front(m);
                if self.exposed[op] {
                    self.emit_front(op, interval, sink);
                }
                self.stores[op].deque.retire_front();
            }
            if let Some(start) = op_timer {
                op_nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.stores[op].add_nanos(op_nanos);
            }
            deadline = deadline.min(self.stores[op].front_end());
        }
        self.deadline = deadline;
    }

    /// Recycles the interner and the slabs sized to it at idle points
    /// (see `Typed::maybe_compact` — same conditions, plus the store-level
    /// idle check covering carried-over swap state). Called from watermark
    /// announcements only — never from the sealing inside a columnar
    /// feed, whose translated slot buffer must stay valid for the rest of
    /// the batch.
    fn maybe_compact(&mut self) {
        let slots = self.interner.len();
        if slots >= crate::executor::COMPACT_MIN_SLOTS
            && slots >= 2 * self.peak_pane_live.max(1)
            && self.fed.saturating_sub(self.last_compact_fed) >= 16 * slots as u64
            && self.stores.iter().all(MultiStore::is_idle)
        {
            self.interner_hw.0 = self.interner_hw.0.max(slots as u64);
            self.interner_hw.1 = self.interner_hw.1.max(self.interner.bytes() as u64);
            self.interner.clear();
            for store in &mut self.stores {
                store.compact();
            }
            self.compactions += 1;
            self.peak_pane_live = 0;
            self.last_compact_fed = self.fed;
        }
    }
}

impl crate::executor::PipelineCore for MultiCore {
    /// Run-sliced columnar feed, mirroring the monomorphized core's
    /// implementation (see `Typed::feed_columns`): one instance division
    /// per run per raw-fed operator, one hash probe per key sub-run,
    /// element-for-element identical behavior to per-event feeding.
    fn feed_columns(
        &mut self,
        times: &[u64],
        keys: &[u32],
        values: &[f64],
        sink: &mut ResultSink,
    ) -> Result<()> {
        debug_assert!(times.len() == keys.len() && times.len() == values.len());
        // Intern the key column once at ingress: one interner probe per
        // key change, zero hash probes on the fold path below.
        let mut slot_buf = std::mem::take(&mut self.slot_buf);
        crate::executor::intern_keys(&mut self.interner, keys, &mut slot_buf);
        let clock = self.profile.clock_on() && {
            self.feed_passes = self.feed_passes.wrapping_add(1);
            self.feed_passes
                .is_multiple_of(crate::executor::PROFILE_CLOCK_STRIDE)
        };
        let mut i = 0;
        while i < times.len() {
            let head = times[i];
            if head < self.watermark {
                self.slot_buf = slot_buf;
                return Err(EngineError::OutOfOrderEvent {
                    at: head,
                    watermark: self.watermark,
                });
            }
            if head >= self.deadline {
                self.advance(head, sink);
            }
            // One-element batches (the per-event wrapper) skip the run
            // arithmetic: `update_run` on a single element already does
            // exactly what the per-event path used to.
            let j = if times.len() == 1 {
                1
            } else {
                let limit = crate::executor::run_limit(
                    head,
                    self.raw_ops.iter().map(|&op| &self.windows[op]),
                    self.deadline,
                );
                i + crate::executor::run_len(&times[i..], limit)
            };
            for &op in &self.raw_ops {
                if clock {
                    let t0 = Instant::now();
                    self.stores[op].update_run(
                        &times[i..j],
                        &keys[i..j],
                        &slot_buf[i..j],
                        &values[i..j],
                    );
                    self.stores[op]
                        .add_nanos(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                } else {
                    self.stores[op].update_run(
                        &times[i..j],
                        &keys[i..j],
                        &slot_buf[i..j],
                        &values[i..j],
                    );
                }
            }
            let last = times[j - 1];
            self.watermark = last;
            self.fed += (j - i) as u64;
            self.last_event_time = self.last_event_time.max(last);
            i = j;
        }
        self.slot_buf = slot_buf;
        Ok(())
    }

    fn advance_to(&mut self, watermark: u64, sink: &mut ResultSink) {
        self.advance(watermark, sink);
        self.watermark = self.watermark.max(watermark);
        self.maybe_compact();
    }

    fn watermark(&self) -> u64 {
        self.watermark
    }

    fn events_fed(&self) -> u64 {
        self.fed
    }

    fn last_event_time(&self) -> u64 {
        self.last_event_time
    }

    fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    fn stats(&self) -> ExecStats {
        ExecStats {
            updates: self.stores.iter().map(|s| s.updates).sum(),
            combines: self.stores.iter().map(|s| s.combines).sum(),
            agg_ops: self.stores.iter().map(|s| s.agg_ops).sum(),
            replans: 0,
        }
    }

    fn work_total(&self) -> u64 {
        self.stores
            .iter()
            .map(|s| s.work_sink)
            .fold(0u64, u64::wrapping_add)
    }

    fn supports_group_state(&self) -> bool {
        true
    }

    fn export_group_state(&mut self) -> Option<GroupState> {
        Some(self.export_state())
    }

    fn interner_stats(&self) -> (u64, u64) {
        (
            self.interner_hw.0.max(self.interner.len() as u64),
            self.interner_hw.1.max(self.interner.bytes() as u64),
        )
    }

    fn node_profiles(&self) -> Vec<NodeProfile> {
        self.windows
            .iter()
            .enumerate()
            .map(|(op, w)| {
                let mut p = NodeProfile {
                    node: self.node_ids[op],
                    range: w.range(),
                    slide: w.slide(),
                    exposed: self.exposed[op],
                    raw_fed: self.raw_ops.contains(&op),
                    ..NodeProfile::default()
                };
                self.stores[op].profile_into(&mut p);
                p
            })
            .collect()
    }

    fn compactions(&self) -> u64 {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{sorted_results, Event};
    use crate::executor::{PipelineOptions, PlanPipeline};
    use crate::reference::reference_results;
    use fw_core::{AggregateSpec, Optimizer, PlanChoice, WindowQuery, WindowSet};

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn events(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t % u64::from(keys)) as u32, ((t * 7) % 23) as f64))
            .collect()
    }

    fn multi_query(ws: &[Window], funcs: &[AggregateFunction]) -> WindowQuery {
        let specs = funcs.iter().map(|&f| AggregateSpec::new(f)).collect();
        WindowQuery::with_aggregates(WindowSet::new(ws.to_vec()).unwrap(), specs).unwrap()
    }

    /// Per-term slice of a multi-aggregate result set, with the tag reset
    /// so it compares equal to a single-aggregate run.
    fn slice_of(results: &[WindowResult], agg: u32) -> Vec<WindowResult> {
        results
            .iter()
            .filter(|r| r.agg == agg)
            .map(|r| WindowResult { agg: 0, ..*r })
            .collect()
    }

    #[test]
    fn multi_core_matches_single_aggregate_runs_per_term() {
        let windows = [w(20, 20), w(30, 30), w(40, 40)];
        let funcs = [
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
            AggregateFunction::Count,
        ];
        let evs = events(500, 4);
        for choice in PlanChoice::CONCRETE {
            let multi = Optimizer::default()
                .optimize(&multi_query(&windows, &funcs))
                .unwrap();
            let plan = &multi.select(choice).plan;
            let out = PlanPipeline::run(plan, &evs, PipelineOptions::collecting()).unwrap();
            let got = sorted_results(out.results);
            for (j, &f) in funcs.iter().enumerate() {
                let single = Optimizer::default()
                    .optimize(&WindowQuery::new(
                        WindowSet::new(windows.to_vec()).unwrap(),
                        f,
                    ))
                    .unwrap();
                let sout = PlanPipeline::run(
                    &single.select(choice).plan,
                    &evs,
                    PipelineOptions::collecting(),
                )
                .unwrap();
                assert_eq!(
                    slice_of(&got, j as u32),
                    sorted_results(sout.results),
                    "{f} diverges under {choice}"
                );
            }
        }
    }

    #[test]
    fn holistic_rider_matches_reference_in_a_factored_plan() {
        // MEDIAN rides raw panes inside a plan whose MIN/MAX terms share
        // sub-aggregates (including through a hidden factor window).
        let windows = [w(20, 20), w(30, 30), w(40, 40)];
        let funcs = [
            AggregateFunction::Median,
            AggregateFunction::Min,
            AggregateFunction::Max,
        ];
        let q = multi_query(&windows, &funcs);
        let out = Optimizer::default().optimize(&q).unwrap();
        assert!(out.factored.plan.factor_window_count() > 0);
        let evs = events(400, 3);
        let run =
            PlanPipeline::run(&out.factored.plan, &evs, PipelineOptions::collecting()).unwrap();
        let got = sorted_results(run.results);
        for (j, &f) in funcs.iter().enumerate() {
            let oracle = reference_results(&windows, f, &evs);
            assert_eq!(slice_of(&got, j as u32), oracle, "{f} diverges from oracle");
        }
    }

    #[test]
    fn pane_work_is_attributed_once_not_per_term() {
        let windows = [w(20, 20), w(30, 30), w(40, 40)];
        let evs = events(1200, 2);
        let opts = PipelineOptions::default();
        let single = Optimizer::default()
            .optimize(&WindowQuery::new(
                WindowSet::new(windows.to_vec()).unwrap(),
                AggregateFunction::Sum,
            ))
            .unwrap();
        let sref = PlanPipeline::run(&single.factored.plan, &evs, opts).unwrap();

        let funcs = [
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
            AggregateFunction::Count,
        ];
        let multi = Optimizer::default()
            .optimize(&multi_query(&windows, &funcs))
            .unwrap();
        assert_eq!(multi.factored.plan.factor_window_count(), 1);
        let mrun = PlanPipeline::run(&multi.factored.plan, &evs, opts).unwrap();
        // Pane maintenance is identical to the single-aggregate plan...
        assert_eq!(mrun.stats.updates, sref.stats.updates);
        assert_eq!(mrun.stats.combines, sref.stats.combines);
        // ...while the slot fan-out reports the per-term work.
        assert_eq!(
            mrun.stats.agg_ops,
            4 * (sref.stats.updates + sref.stats.combines)
        );
    }

    #[test]
    fn all_holistic_sub_aggregate_feed_is_rejected() {
        use fw_core::plan::PlanBuilder;
        let mut b = PlanBuilder::with_aggregates(vec![
            AggregateSpec::new(AggregateFunction::Median),
            AggregateSpec::new(AggregateFunction::Median).with_label("M2"),
        ]);
        let src = b.source();
        let w20 = b.window_agg(src, w(20, 20), "w20".to_string(), true);
        let w40 = b.window_agg(w20, w(40, 40), "w40".to_string(), true);
        let plan = b.finish(vec![w20, w40]);
        let err = PlanPipeline::compile(&plan, PipelineOptions::default())
            .err()
            .unwrap();
        assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
    }

    #[test]
    fn incremental_push_and_watermarks_match_batch() {
        let windows = [w(10, 10), w(20, 10), w(40, 20)];
        let funcs = [AggregateFunction::Sum, AggregateFunction::Count];
        let q = multi_query(&windows, &funcs);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(300, 3);
        let batch =
            PlanPipeline::run(&out.factored.plan, &evs, PipelineOptions::collecting()).unwrap();

        let mut pipeline =
            PlanPipeline::compile(&out.factored.plan, PipelineOptions::collecting()).unwrap();
        let mut collected = Vec::new();
        for (i, &e) in evs.iter().enumerate() {
            pipeline.push(e).unwrap();
            if i % 90 == 89 {
                pipeline.advance_watermark(e.time).unwrap();
                collected.extend(pipeline.poll_results());
            }
        }
        let tail = pipeline.finish().unwrap();
        collected.extend(tail.results);
        assert_eq!(sorted_results(collected), sorted_results(batch.results));
    }
}
