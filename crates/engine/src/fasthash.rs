//! A fast multiplicative hasher for small integer keys.
//!
//! The default SipHash is robust against adversarial keys but costs tens of
//! cycles per lookup, which would dominate the per-event work we are trying
//! to measure. Grouping keys here are small trusted integers (device ids),
//! so a Fibonacci-multiplicative mix is both sufficient and fast — the same
//! trade-off `rustc` makes with `FxHash` (that crate is not in our
//! dependency allowance, so we carry the 10-line equivalent).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

const SEED: u64 = 0x9E37_79B9_7F4A_7C15; // 2^64 / φ

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.0 = (self.0 ^ u64::from(i)).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by small integers using the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u32..10_000 {
            let mut h = FastHasher::default();
            h.write_u32(k);
            assert!(seen.insert(h.finish()), "collision at {k}");
        }
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastMap<u32, u64> = FastMap::default();
        for k in 0..100u32 {
            m.insert(k, u64::from(k) * 3);
        }
        for k in 0..100u32 {
            assert_eq!(m.get(&k), Some(&(u64::from(k) * 3)));
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn byte_writes_mix() {
        let mut a = FastHasher::default();
        a.write(b"abc");
        let mut b = FastHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
