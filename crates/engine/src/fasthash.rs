//! A fast multiplicative hasher for small integer keys.
//!
//! The default SipHash is robust against adversarial keys but costs tens of
//! cycles per lookup, which would dominate the per-event work we are trying
//! to measure. Grouping keys here are small trusted integers (device ids),
//! so a Fibonacci-multiplicative mix is both sufficient and fast — the same
//! trade-off `rustc` makes with `FxHash` (that crate is not in our
//! dependency allowance, so we carry the 10-line equivalent).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

const SEED: u64 = 0x9E37_79B9_7F4A_7C15; // 2^64 / φ

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.0 = (self.0 ^ u64::from(i)).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by small integers using the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A hasher specialized for `u32` keys: identity write, one Fibonacci
/// multiply at `finish`.
///
/// Grouping keys are dense small integers (device ids `0..K`), so the
/// general [`FastHasher`] — which must fold arbitrarily many writes into
/// its running state — does more work than a single 4-byte key needs (an
/// xor into the running state plus the multiply). This hasher stores the
/// key verbatim and performs exactly one multiplication when the table
/// asks for the hash: the odd multiplier is a bijection modulo every
/// `2^k`, so both the low bits (hashbrown's bucket index) and the top
/// bits (its 7 control bits) change with every key, dense or sparse,
/// with the shortest possible dependency chain in front of the probe's
/// address computation. No xor, no shift, no per-byte loop — strictly
/// less work per probe than the generic hasher, so sparse (random) keys
/// cannot regress (`cargo bench --bench micro` tracks dense and sparse
/// probe timings side by side).
#[derive(Debug, Default, Clone, Copy)]
pub struct FastU32Hasher(u64);

impl Hasher for FastU32Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0.wrapping_mul(SEED)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Non-u32 writes (only reachable if the map is misused with a
        // composite key) fall back to the general byte fold.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        // Identity: the mix happens once, in `finish`.
        self.0 = u64::from(i);
    }
}

/// `BuildHasher` for [`FastU32Hasher`].
pub type FastU32BuildHasher = BuildHasherDefault<FastU32Hasher>;

/// A `HashMap` keyed by `u32` using the specialized hasher — the pane map
/// type of the hot path (see [`crate::pane::Pane`]).
pub type FastU32Map<V> = std::collections::HashMap<u32, V, FastU32BuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u32..10_000 {
            let mut h = FastHasher::default();
            h.write_u32(k);
            assert!(seen.insert(h.finish()), "collision at {k}");
        }
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastMap<u32, u64> = FastMap::default();
        for k in 0..100u32 {
            m.insert(k, u64::from(k) * 3);
        }
        for k in 0..100u32 {
            assert_eq!(m.get(&k), Some(&(u64::from(k) * 3)));
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn u32_hasher_is_collision_free_on_dense_and_strided_keys() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u32..10_000 {
            let mut h = FastU32Hasher::default();
            h.write_u32(k);
            assert!(seen.insert(h.finish()), "collision at dense {k}");
        }
        // Strided keys (the worst case for low-bit bucket indexing).
        let mut seen = std::collections::HashSet::new();
        for k in (0u32..10_000).map(|k| k << 12) {
            let mut h = FastU32Hasher::default();
            h.write_u32(k);
            assert!(seen.insert(h.finish()), "collision at strided {k}");
        }
    }

    #[test]
    fn u32_hashes_vary_in_low_bits_for_dense_keys() {
        // hashbrown derives the bucket index from the low bits: dense keys
        // must not collapse onto a few buckets there.
        let mut low = std::collections::HashSet::new();
        for k in 0u32..256 {
            let mut h = FastU32Hasher::default();
            h.write_u32(k);
            low.insert(h.finish() & 0xFF);
        }
        assert!(low.len() > 128, "only {} distinct low bytes", low.len());
    }

    #[test]
    fn u32_map_round_trip() {
        let mut m: FastU32Map<u64> = FastU32Map::default();
        for k in 0..1000u32 {
            m.insert(k, u64::from(k) * 7);
        }
        for k in 0..1000u32 {
            assert_eq!(m.get(&k), Some(&(u64::from(k) * 7)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_writes_mix() {
        let mut a = FastHasher::default();
        a.write(b"abc");
        let mut b = FastHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
