//! Aggregate implementations: update (raw events), combine (sub-aggregates),
//! finalize (result values).
//!
//! The pipeline is monomorphized over one of these types so the hot loops
//! compile to straight-line code per aggregate function — matching how a
//! production engine (Trill, Flink) generates or specializes aggregation
//! code per query.

use fw_core::AggregateFunction;

/// An aggregate function the engine can execute.
///
/// `update` folds a raw event into an accumulator; `combine` folds another
/// accumulator in (used by sub-aggregate-fed operators); `finalize`
/// produces the result value.
pub trait Aggregate: 'static {
    /// Accumulator state per (window instance, key). `Send` so operator
    /// state can live on shard worker threads
    /// (see [`crate::shard::ShardedPipeline`]).
    type Acc: Clone + std::fmt::Debug + Send;

    /// Whether `combine` is meaningful: false for holistic functions, whose
    /// sub-aggregates would be unbounded (Section III-A).
    const COMBINABLE: bool;

    /// The corresponding SQL-level function.
    fn function() -> AggregateFunction;

    /// A fresh accumulator.
    fn init() -> Self::Acc;

    /// Folds one raw value in.
    fn update(acc: &mut Self::Acc, value: f64);

    /// Folds a contiguous run of raw values in — the columnar fold
    /// kernel. The default is a strict left fold (element order exactly
    /// as [`Self::update`] applied in sequence), which reorder-sensitive
    /// aggregates (SUM/AVG: float addition does not associate) must keep
    /// for bit-identical results. Reorder-safe aggregates (MIN/MAX:
    /// idempotent comparison; COUNT: length) override with unrolled
    /// multi-accumulator variants the compiler can vectorize.
    #[inline]
    fn fold_run(acc: &mut Self::Acc, values: &[f64]) {
        for &v in values {
            Self::update(acc, v);
        }
    }

    /// Folds a sub-aggregate in.
    fn combine(acc: &mut Self::Acc, other: &Self::Acc);

    /// Produces the result value.
    fn finalize(acc: &Self::Acc) -> f64;
}

/// MIN: distributive, tolerant of overlapping sub-aggregates (Theorem 6).
#[derive(Debug, Clone, Copy)]
pub struct MinAgg;

impl Aggregate for MinAgg {
    type Acc = f64;
    const COMBINABLE: bool = true;

    fn function() -> AggregateFunction {
        AggregateFunction::Min
    }

    fn init() -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn update(acc: &mut f64, value: f64) {
        if value < *acc {
            *acc = value;
        }
    }

    // MIN is commutative and associative, and NaN never wins `<`, so the
    // four-lane unroll cannot change the value (only the sign of a ±0.0
    // tie could differ bitwise; see DESIGN.md §3.9). Short runs (high
    // key-alternation streams produce length-1 sub-runs) skip the lane
    // setup/reduce entirely.
    #[inline]
    fn fold_run(acc: &mut f64, values: &[f64]) {
        if values.len() < 4 {
            for &v in values {
                if v < *acc {
                    *acc = v;
                }
            }
            return;
        }
        let mut lanes = [*acc; 4];
        let mut chunks = values.chunks_exact(4);
        for c in &mut chunks {
            for (lane, &v) in lanes.iter_mut().zip(c) {
                if v < *lane {
                    *lane = v;
                }
            }
        }
        for &v in chunks.remainder() {
            if v < lanes[0] {
                lanes[0] = v;
            }
        }
        let mut m = lanes[0];
        for &l in &lanes[1..] {
            if l < m {
                m = l;
            }
        }
        *acc = m;
    }

    #[inline]
    fn combine(acc: &mut f64, other: &f64) {
        if *other < *acc {
            *acc = *other;
        }
    }

    fn finalize(acc: &f64) -> f64 {
        *acc
    }
}

/// MAX: distributive, overlap tolerant.
#[derive(Debug, Clone, Copy)]
pub struct MaxAgg;

impl Aggregate for MaxAgg {
    type Acc = f64;
    const COMBINABLE: bool = true;

    fn function() -> AggregateFunction {
        AggregateFunction::Max
    }

    fn init() -> f64 {
        f64::NEG_INFINITY
    }

    #[inline]
    fn update(acc: &mut f64, value: f64) {
        if value > *acc {
            *acc = value;
        }
    }

    // Same reorder-safety and short-run arguments as MIN's kernel.
    #[inline]
    fn fold_run(acc: &mut f64, values: &[f64]) {
        if values.len() < 4 {
            for &v in values {
                if v > *acc {
                    *acc = v;
                }
            }
            return;
        }
        let mut lanes = [*acc; 4];
        let mut chunks = values.chunks_exact(4);
        for c in &mut chunks {
            for (lane, &v) in lanes.iter_mut().zip(c) {
                if v > *lane {
                    *lane = v;
                }
            }
        }
        for &v in chunks.remainder() {
            if v > lanes[0] {
                lanes[0] = v;
            }
        }
        let mut m = lanes[0];
        for &l in &lanes[1..] {
            if l > m {
                m = l;
            }
        }
        *acc = m;
    }

    #[inline]
    fn combine(acc: &mut f64, other: &f64) {
        if *other > *acc {
            *acc = *other;
        }
    }

    fn finalize(acc: &f64) -> f64 {
        *acc
    }
}

/// SUM: distributive, requires disjoint (partitioned) sub-aggregates.
#[derive(Debug, Clone, Copy)]
pub struct SumAgg;

impl Aggregate for SumAgg {
    type Acc = f64;
    const COMBINABLE: bool = true;

    fn function() -> AggregateFunction {
        AggregateFunction::Sum
    }

    fn init() -> f64 {
        0.0
    }

    #[inline]
    fn update(acc: &mut f64, value: f64) {
        *acc += value;
    }

    #[inline]
    fn combine(acc: &mut f64, other: &f64) {
        *acc += *other;
    }

    fn finalize(acc: &f64) -> f64 {
        *acc
    }
}

/// COUNT: distributive; `g` is SUM over sub-counts (Gray et al.).
#[derive(Debug, Clone, Copy)]
pub struct CountAgg;

impl Aggregate for CountAgg {
    type Acc = u64;
    const COMBINABLE: bool = true;

    fn function() -> AggregateFunction {
        AggregateFunction::Count
    }

    fn init() -> u64 {
        0
    }

    #[inline]
    fn update(acc: &mut u64, _value: f64) {
        *acc += 1;
    }

    // COUNT of a run is its length — no per-element loop at all.
    #[inline]
    fn fold_run(acc: &mut u64, values: &[f64]) {
        *acc += values.len() as u64;
    }

    #[inline]
    fn combine(acc: &mut u64, other: &u64) {
        *acc += *other;
    }

    fn finalize(acc: &u64) -> f64 {
        *acc as f64
    }
}

/// AVG: algebraic; the sub-aggregate carries (sum, count) and `h` divides.
#[derive(Debug, Clone, Copy)]
pub struct AvgAgg;

/// AVG's bounded sub-aggregate state.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumCount {
    /// Sum of values.
    pub sum: f64,
    /// Number of values.
    pub count: u64,
}

impl Aggregate for AvgAgg {
    type Acc = SumCount;
    const COMBINABLE: bool = true;

    fn function() -> AggregateFunction {
        AggregateFunction::Avg
    }

    fn init() -> SumCount {
        SumCount::default()
    }

    #[inline]
    fn update(acc: &mut SumCount, value: f64) {
        acc.sum += value;
        acc.count += 1;
    }

    #[inline]
    fn combine(acc: &mut SumCount, other: &SumCount) {
        acc.sum += other.sum;
        acc.count += other.count;
    }

    fn finalize(acc: &SumCount) -> f64 {
        if acc.count == 0 {
            f64::NAN
        } else {
            acc.sum / acc.count as f64
        }
    }
}

/// MEDIAN: holistic — the accumulator is the full multiset of values, and
/// `combine` must never be called (plan compilation rejects sub-aggregate
/// feeds for holistic functions).
#[derive(Debug, Clone, Copy)]
pub struct MedianAgg;

impl Aggregate for MedianAgg {
    type Acc = Vec<f64>;
    const COMBINABLE: bool = false;

    fn function() -> AggregateFunction {
        AggregateFunction::Median
    }

    fn init() -> Vec<f64> {
        Vec::new()
    }

    #[inline]
    fn update(acc: &mut Vec<f64>, value: f64) {
        acc.push(value);
    }

    // Order inside the multiset is irrelevant to the median; a bulk
    // append keeps the run path allocation-efficient.
    #[inline]
    fn fold_run(acc: &mut Vec<f64>, values: &[f64]) {
        acc.extend_from_slice(values);
    }

    fn combine(_acc: &mut Vec<f64>, _other: &Vec<f64>) {
        unreachable!("holistic sub-aggregation is rejected at plan compile time");
    }

    fn finalize(acc: &Vec<f64>) -> f64 {
        if acc.is_empty() {
            return f64::NAN;
        }
        let mut sorted = acc.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold<A: Aggregate>(values: &[f64]) -> f64 {
        let mut acc = A::init();
        for &v in values {
            A::update(&mut acc, v);
        }
        A::finalize(&acc)
    }

    #[test]
    fn min_max_fold_and_combine() {
        assert_eq!(fold::<MinAgg>(&[3.0, 1.0, 2.0]), 1.0);
        assert_eq!(fold::<MaxAgg>(&[3.0, 1.0, 2.0]), 3.0);
        let mut a = MinAgg::init();
        MinAgg::update(&mut a, 5.0);
        let mut b = MinAgg::init();
        MinAgg::update(&mut b, 2.0);
        MinAgg::combine(&mut a, &b);
        // MIN over overlapping partitions stays correct (Theorem 6).
        MinAgg::combine(&mut a, &b);
        assert_eq!(MinAgg::finalize(&a), 2.0);
    }

    #[test]
    fn sum_count_avg() {
        assert_eq!(fold::<SumAgg>(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(fold::<CountAgg>(&[1.0, 2.0, 3.0]), 3.0);
        assert_eq!(fold::<AvgAgg>(&[1.0, 2.0, 3.0]), 2.0);
        let mut a = AvgAgg::init();
        AvgAgg::update(&mut a, 1.0);
        let mut b = AvgAgg::init();
        AvgAgg::update(&mut b, 3.0);
        AvgAgg::combine(&mut a, &b);
        assert_eq!(AvgAgg::finalize(&a), 2.0);
    }

    // Compile-time pin: MEDIAN must never advertise combinability.
    const _: () = assert!(!MedianAgg::COMBINABLE && MinAgg::COMBINABLE);

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(fold::<MedianAgg>(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(fold::<MedianAgg>(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert!(fold::<MedianAgg>(&[]).is_nan());
    }

    #[test]
    fn fold_run_matches_strict_left_fold() {
        // The unrolled kernels must agree bit-for-bit with per-element
        // update over run lengths around the unroll width.
        let values: Vec<f64> = (0..23).map(|i| f64::from((i * 37 % 11) - 5)).collect();
        for n in 0..values.len() {
            let run = &values[..n];
            macro_rules! check {
                ($a:ty) => {{
                    let mut strict = <$a>::init();
                    for &v in run {
                        <$a>::update(&mut strict, v);
                    }
                    let mut kernel = <$a>::init();
                    <$a>::fold_run(&mut kernel, run);
                    assert_eq!(
                        <$a>::finalize(&kernel).to_bits(),
                        <$a>::finalize(&strict).to_bits(),
                        "{} over {n} values",
                        stringify!($a)
                    );
                }};
            }
            check!(MinAgg);
            check!(MaxAgg);
            check!(SumAgg);
            check!(CountAgg);
            check!(AvgAgg);
            check!(MedianAgg);
        }
    }

    #[test]
    fn fold_run_kernels_ignore_nan_like_update() {
        let run = [3.0, f64::NAN, 1.0, f64::NAN, 2.0, 7.0, f64::NAN];
        let mut min = MinAgg::init();
        MinAgg::fold_run(&mut min, &run);
        assert_eq!(min, 1.0);
        let mut max = MaxAgg::init();
        MaxAgg::fold_run(&mut max, &run);
        assert_eq!(max, 7.0);
    }

    #[test]
    fn empty_accumulator_finalization() {
        assert_eq!(MinAgg::finalize(&MinAgg::init()), f64::INFINITY);
        assert_eq!(SumAgg::finalize(&SumAgg::init()), 0.0);
        assert!(AvgAgg::finalize(&AvgAgg::init()).is_nan());
    }
}
