//! Plan compilation and single-core push execution.
//!
//! A [`fw_core::QueryPlan`] compiles into one operator per
//! window node. Raw-fed operators fold events into their panes; when the
//! watermark passes an instance's end, the instance seals and its per-key
//! sub-aggregates cascade to child operators (the Multicast/Union wiring of
//! the plan collapses into the routing tables here). Exposed operators also
//! emit user-visible results.
//!
//! Compilation and feeding are split: [`PlanPipeline::compile`] builds a
//! long-lived pipeline once, and [`PlanPipeline::push`] /
//! [`PlanPipeline::advance_watermark`] / [`PlanPipeline::poll_results`] /
//! [`PlanPipeline::finish`] drive it incrementally. The free functions
//! [`execute`] / [`execute_with`] remain as thin batch wrappers and are
//! deprecated in favor of the pipeline (or the `factor_windows::Session`
//! façade one level up).

use crate::agg::{Aggregate, AvgAgg, CountAgg, MaxAgg, MedianAgg, MinAgg, SumAgg};
use crate::batch::EventBatch;
use crate::error::{EngineError, Result};
use crate::event::{Event, ResultSink, WindowResult};
use crate::pane::PaneStore;
use crate::profile::{fold_profiles, join_profiles, NodeProfile, ProfileLevel};
use crate::reorder::ReorderBuffer;
use fw_core::{AggregateFunction, QueryPlan, Window};
use std::time::{Duration, Instant};

/// Run-sliced pane routing, shared by the executor cores (this module's
/// monomorphized [`Typed`] core and [`crate::multi::MultiCore`]).
///
/// A *run* is a maximal column slice whose events all route to the same
/// instance set of every raw-fed window and cannot seal anything: the
/// instance arithmetic (one division per window) and the sealing check
/// are then paid once per run instead of once per event, and each run is
/// folded per key so a key repeated k times in a run costs one hash probe
/// instead of k (see `PaneStore::update_run`). Mostly-in-order streams at
/// the paper's constant pace produce runs of a whole slide (η·s events),
/// which is where the columnar ingestion win comes from.
///
/// Returns the exclusive time limit of the run starting at `t0`: the
/// earliest next slide boundary over `windows`, capped at `deadline`
/// (instance routing changes only at multiples of the slide, and nothing
/// strictly below the deadline can seal).
#[inline]
pub(crate) fn run_limit<'a>(
    t0: u64,
    windows: impl Iterator<Item = &'a Window>,
    deadline: u64,
) -> u64 {
    let mut limit = deadline;
    for window in windows {
        let s = window.slide();
        limit = limit.min((t0 / s + 1).saturating_mul(s));
    }
    limit
}

/// Length of the run starting at `times[0]`: the maximal non-decreasing
/// prefix strictly below `limit`. A timestamp decrease ends the run (the
/// next run's head is then validated against the watermark, reproducing
/// the per-event out-of-order check at the same position).
#[inline]
pub(crate) fn run_len(times: &[u64], limit: u64) -> usize {
    let mut prev = times[0];
    let mut j = 1;
    while j < times.len() && times[j] >= prev && times[j] < limit {
        prev = times[j];
        j += 1;
    }
    j
}

/// Element-level accounting: the quantities the paper's cost model counts.
///
/// `updates` and `combines` are *pane-level*: one raw event folded into
/// one instance, or one sub-aggregate entry combined into one instance,
/// counts once however many aggregate terms share the pane. The per-term
/// fan-out (N accumulator operations per pane element for an N-term
/// query) is reported separately as `agg_ops`, so a multi-aggregate plan's
/// pane maintenance compares directly against the single-aggregate plan it
/// shares its topology with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Raw-event pane updates (`n·η·r` per period, summed over raw-fed
    /// windows; counted once per element, not per aggregate term).
    pub updates: u64,
    /// Sub-aggregate pane combines (`n·M` per period, summed over fed
    /// windows; counted once per element, not per aggregate term).
    pub combines: u64,
    /// Per-term accumulator operations the pane elements fanned out to.
    /// Equals `updates + combines` for single-aggregate pipelines.
    pub agg_ops: u64,
    /// Live plan swaps ([`PlanPipeline::rebuild`]) performed over the
    /// pipeline's lifetime: adaptive re-optimizations and query-group
    /// register/deregister events. `0` for static pipelines.
    pub replans: u64,
}

impl ExecStats {
    /// Total cost-model elements processed (pane-level).
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.updates + self.combines
    }
}

impl std::ops::Add for ExecStats {
    type Output = ExecStats;

    fn add(self, other: ExecStats) -> ExecStats {
        ExecStats {
            updates: self.updates + other.updates,
            combines: self.combines + other.combines,
            agg_ops: self.agg_ops + other.agg_ops,
            replans: self.replans + other.replans,
        }
    }
}

/// Outcome of executing a plan over a stream.
#[derive(Debug)]
pub struct RunOutput {
    /// Number of events fed through the plan.
    pub events_processed: u64,
    /// Number of (window, instance, key) results emitted to the union.
    pub results_emitted: u64,
    /// Wall time of the processing (compilation excluded).
    pub elapsed: Duration,
    /// Collected results not yet drained by
    /// [`PlanPipeline::poll_results`] (empty unless collection was
    /// requested).
    pub results: Vec<WindowResult>,
    /// Cost-model element counts (updates and combines).
    pub stats: ExecStats,
}

impl RunOutput {
    /// Throughput in events per second (the paper's metric, Karimov et al.).
    #[must_use]
    pub fn throughput_eps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.events_processed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Execution options for the deprecated batch entry points.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Gather results (tests) instead of counting them (throughput runs).
    pub collect: bool,
    /// Emulated per-element processing cost
    /// ([`crate::pane::DEFAULT_ELEMENT_WORK`]); `0` disables it.
    pub element_work: u32,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            collect: false,
            element_work: crate::pane::DEFAULT_ELEMENT_WORK,
        }
    }
}

/// Options for compiling a [`PlanPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Gather results for [`PlanPipeline::poll_results`] /
    /// [`RunOutput::results`] (tests and consumers) instead of counting
    /// them (throughput runs).
    pub collect: bool,
    /// Emulated per-element processing cost
    /// ([`crate::pane::DEFAULT_ELEMENT_WORK`]); `0` disables it.
    pub element_work: u32,
    /// Bounded out-of-order tolerance in time units: events may lag the
    /// observed maximum timestamp by up to this much and are repaired
    /// through a [`ReorderBuffer`]; `0` demands in-order input.
    pub out_of_order: u64,
    /// Per-plan-node instrumentation ([`ProfileLevel::Off`] by default;
    /// observation-only — results are bit-identical at every level).
    pub profile: ProfileLevel,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            collect: false,
            element_work: crate::pane::DEFAULT_ELEMENT_WORK,
            out_of_order: 0,
            profile: ProfileLevel::Off,
        }
    }
}

impl PipelineOptions {
    /// Options for correctness checks: collect results, no emulated work.
    #[must_use]
    pub fn collecting() -> Self {
        PipelineOptions {
            collect: true,
            ..PipelineOptions::default()
        }
    }
}

/// Executes `plan` over `events` (must be in non-decreasing time order)
/// with default element work. Set `collect` to gather results for
/// correctness checks; leave it off for throughput measurements.
#[deprecated(
    since = "0.2.0",
    note = "compile a `PlanPipeline` (or use `factor_windows::Session`) and push events instead"
)]
pub fn execute(plan: &QueryPlan, events: &[Event], collect: bool) -> Result<RunOutput> {
    let opts = PipelineOptions {
        collect,
        ..PipelineOptions::default()
    };
    PlanPipeline::run(plan, events, opts)
}

/// Executes `plan` with explicit [`ExecOptions`].
#[deprecated(
    since = "0.2.0",
    note = "compile a `PlanPipeline` (or use `factor_windows::Session`) and push events instead"
)]
pub fn execute_with(plan: &QueryPlan, events: &[Event], opts: ExecOptions) -> Result<RunOutput> {
    let opts = PipelineOptions {
        collect: opts.collect,
        element_work: opts.element_work,
        ..PipelineOptions::default()
    };
    PlanPipeline::run(plan, events, opts)
}

/// A compiled, long-lived physical pipeline with an incremental push API.
///
/// ```
/// use fw_core::prelude::*;
/// use fw_engine::{Event, PipelineOptions, PlanPipeline};
///
/// let windows = WindowSet::new(vec![Window::tumbling(10)?])?;
/// let query = WindowQuery::new(windows, AggregateFunction::Sum);
/// let plan = fw_core::rewrite::original_plan(&query);
///
/// let mut pipeline = PlanPipeline::compile(&plan, PipelineOptions::collecting()).unwrap();
/// for t in 0..25u64 {
///     pipeline.push(Event::new(t, 0, 1.0)).unwrap();
/// }
/// pipeline.advance_watermark(20).unwrap();
/// assert_eq!(pipeline.poll_results().len(), 2); // [0,10) and [10,20) sealed
/// let out = pipeline.finish().unwrap();
/// assert_eq!(out.events_processed, 25);
/// # Ok::<(), fw_core::Error>(())
/// ```
pub struct PlanPipeline {
    core: Box<dyn PipelineCore>,
    sink: ResultSink,
    reorder: Option<ReorderBuffer>,
    /// Reusable AoS→SoA conversion buffer for [`Self::push_batch`]
    /// (columnar callers bypass it entirely).
    staging: EventBatch,
    events_processed: u64,
    /// Maximum event time fed to the core (the end-of-stream seal point).
    last_time: u64,
    elapsed: Duration,
    /// Open timing burst for single-event pushes (see [`Self::push`]):
    /// the clock is read once per [`PUSH_CLOCK_STRIDE`] pushes instead of
    /// twice per event.
    burst_start: Option<Instant>,
    burst_len: u32,
    /// Per-element emulated work, retained so [`Self::rebuild`] can
    /// compile replacement cores with identical options.
    element_work: u32,
    /// Per-node instrumentation level, retained like `element_work` so
    /// rebuilt cores keep profiling.
    profile: ProfileLevel,
    /// Accounting of cores retired by [`Self::rebuild`]: every accessor
    /// reports `retired + live core`, so a rebuilt pipeline's numbers stay
    /// cumulative over its whole lifetime.
    base_stats: ExecStats,
    base_fed: u64,
    base_results: u64,
    base_work: u64,
    /// Per-node counters of retired cores, folded by window identity so
    /// [`Self::node_profiles`] stays cumulative across plan swaps (the
    /// per-node analogue of `base_stats`).
    base_profiles: Vec<NodeProfile>,
    /// Interner compactions performed by retired cores.
    base_compactions: u64,
    /// Number of live plan swaps performed (see [`ExecStats::replans`]).
    replans: u64,
}

/// Single-event pushes sample the wall clock once per this many events;
/// any batch push, watermark, poll-free accounting read, or finish closes
/// the open burst exactly.
const PUSH_CLOCK_STRIDE: u32 = 64;

/// With [`ProfileLevel::Timed`], the per-node clock samples one feed pass
/// and one seal pass out of this many — the same burst-amortization idea
/// as the push timing above, so per-node nanoseconds cost a clock read
/// only on sampled passes. Attributed nanos are therefore ~1/64th of
/// wall time: compare them *between* nodes, not against the clock.
pub const PROFILE_CLOCK_STRIDE: u64 = 64;

impl std::fmt::Debug for PlanPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanPipeline")
            .field("events_processed", &self.events_processed)
            .field("watermark", &self.core.watermark())
            .field("buffered", &self.buffered())
            .finish_non_exhaustive()
    }
}

impl PlanPipeline {
    /// Compiles `plan` into a pipeline. Holistic functions in sub-aggregate
    /// position and structurally invalid plans are rejected here, before
    /// any event flows.
    ///
    /// Single-aggregate plans compile to the per-function monomorphized
    /// core (byte-identical to the pre-multi-aggregate engine);
    /// multi-aggregate plans compile to the shared-pane
    /// `MultiCore` ([`crate::multi`]), which maintains each pane once and
    /// fans it out to one accumulator slot per term.
    pub fn compile(plan: &QueryPlan, opts: PipelineOptions) -> Result<Self> {
        let work = opts.element_work;
        let prof = opts.profile;
        let core: Box<dyn PipelineCore> = if plan.aggregates().len() > 1 {
            Box::new(crate::multi::MultiCore::compile(plan, work, prof)?)
        } else {
            match plan.function() {
                AggregateFunction::Min => Box::new(Typed::<MinAgg>::compile(plan, work, prof)?),
                AggregateFunction::Max => Box::new(Typed::<MaxAgg>::compile(plan, work, prof)?),
                AggregateFunction::Sum => Box::new(Typed::<SumAgg>::compile(plan, work, prof)?),
                AggregateFunction::Count => Box::new(Typed::<CountAgg>::compile(plan, work, prof)?),
                AggregateFunction::Avg => Box::new(Typed::<AvgAgg>::compile(plan, work, prof)?),
                AggregateFunction::Median => {
                    Box::new(Typed::<MedianAgg>::compile(plan, work, prof)?)
                }
            }
        };
        Ok(Self::with_core(core, opts, Self::sink_hint(plan)))
    }

    /// Collecting-sink capacity hint: the plan's expected results per
    /// seal. Every exposed window emits one result per (key, term) when an
    /// instance seals; the key cardinality is unknown at compile time, so
    /// a per-window key allowance covers the common small-key workloads
    /// and larger ones grow once and then stay allocation-free (the sink
    /// buffer is drained, never taken — see [`Self::poll_results_into`]).
    fn sink_hint(plan: &QueryPlan) -> usize {
        /// Keys pre-reserved per (exposed window, aggregate term).
        const SINK_KEY_ALLOWANCE: usize = 16;
        let exposed = plan
            .window_nodes()
            .filter(|&node| plan.is_exposed(node))
            .count();
        exposed * plan.aggregates().len().max(1) * SINK_KEY_ALLOWANCE
    }

    /// Compiles `plan` onto the slot-based core ([`crate::multi`])
    /// regardless of its term count. Single-term plans lose the
    /// monomorphized fast path but gain [`Self::rebuild`]: only the slot
    /// core can export and re-adopt its pane state across a live plan
    /// swap, so query-group execution and adaptive re-optimization compile
    /// through here.
    pub fn compile_grouped(plan: &QueryPlan, opts: PipelineOptions) -> Result<Self> {
        let core = Box::new(crate::multi::MultiCore::compile(
            plan,
            opts.element_work,
            opts.profile,
        )?);
        Ok(Self::with_core(core, opts, Self::sink_hint(plan)))
    }

    fn with_core(core: Box<dyn PipelineCore>, opts: PipelineOptions, sink_hint: usize) -> Self {
        PlanPipeline {
            core,
            sink: if opts.collect {
                ResultSink::collecting_with_capacity(sink_hint)
            } else {
                ResultSink::CountOnly
            },
            reorder: (opts.out_of_order > 0).then(|| ReorderBuffer::new(opts.out_of_order)),
            staging: EventBatch::new(),
            events_processed: 0,
            last_time: 0,
            elapsed: Duration::ZERO,
            burst_start: None,
            burst_len: 0,
            element_work: opts.element_work,
            profile: opts.profile,
            base_stats: ExecStats::default(),
            base_fed: 0,
            base_results: 0,
            base_work: 0,
            base_profiles: Vec::new(),
            base_compactions: 0,
            replans: 0,
        }
    }

    /// Swaps the executing plan in place at a watermark boundary, carrying
    /// the window state of every exposed window across.
    ///
    /// The sequence: announce `watermark` (flushing the reorder buffer and
    /// sealing every instance ending at or before it), cascade in-flight
    /// sub-aggregates down to the exposed windows, export their open
    /// panes, compile `plan` onto a fresh slot core, and re-adopt the
    /// state — slots matched by `(function, column)`, windows by value.
    /// Instances spanning the boundary therefore keep their pre-boundary
    /// contents while the new plan's (possibly completely different)
    /// internal topology delivers exactly the post-boundary events, so
    /// results are identical to having run the new plan's windows over the
    /// whole stream. The reorder buffer, result sink, and cumulative
    /// accounting survive the swap; [`ExecStats::replans`] increments.
    ///
    /// Only pipelines compiled through [`Self::compile_grouped`] (or
    /// multi-aggregate plans, which use the slot core anyway) support
    /// this; monomorphized single-aggregate pipelines return
    /// [`EngineError::RebuildUnsupported`].
    pub fn rebuild(&mut self, plan: &QueryPlan, watermark: u64) -> Result<()> {
        if !self.core.supports_group_state() {
            return Err(EngineError::RebuildUnsupported {
                reason: "pipeline was not compiled on the slot-based group core",
            });
        }
        // Compile before announcing the boundary or exporting: a plan
        // rejection must leave the running pipeline fully untouched — no
        // early sealing, no drained core.
        let mut core = crate::multi::MultiCore::compile(plan, self.element_work, self.profile)?;
        self.advance_watermark(watermark)?;
        let state = self
            .core
            .export_group_state()
            .expect("support checked above");
        core.adopt(state);
        // Fold the retired core's accounting into the cumulative base
        // (after export: the downward flush performs counted combines).
        self.base_stats = self.base_stats + self.core.stats();
        self.base_fed += self.core.events_fed();
        self.base_results += self.core.results_emitted();
        self.base_work = self.base_work.wrapping_add(self.core.work_total());
        fold_profiles(&mut self.base_profiles, &self.core.node_profiles());
        self.base_compactions += self.core.compactions();
        self.replans += 1;
        self.core = Box::new(core);
        self.sync_accounting();
        Ok(())
    }

    /// Writes a durable checkpoint of the pipeline's full state (open
    /// panes, reorder buffer, undelivered results, watermark, cumulative
    /// accounting) to `w` — see [`crate::checkpoint`] for the format.
    ///
    /// `plan` must be the plan this pipeline is executing: the snapshot
    /// rides the live-swap export path, which compiles a fresh core and
    /// re-adopts the exported state, so the pipeline *keeps running*
    /// after the call (checkpoint-and-continue). Only pipelines on the
    /// slot-based group core ([`Self::compile_grouped`] or any
    /// multi-aggregate plan) support this.
    pub fn checkpoint<W: std::io::Write + ?Sized>(
        &mut self,
        plan: &QueryPlan,
        w: &mut W,
    ) -> std::result::Result<(), crate::checkpoint::CheckpointError> {
        let image = self.export_image(plan)?;
        crate::checkpoint::write_header(w, crate::checkpoint::KIND_PIPELINE)?;
        image.encode(w)
    }

    /// Exports the pipeline's full state as a checkpoint image, leaving
    /// the pipeline running on a freshly compiled core that adopted the
    /// very same state (the same mechanism as [`Self::rebuild`], minus
    /// the watermark announcement — a checkpoint must not seal anything).
    pub(crate) fn export_image(
        &mut self,
        plan: &QueryPlan,
    ) -> std::result::Result<crate::checkpoint::PipelineImage, crate::checkpoint::CheckpointError>
    {
        use crate::checkpoint::{CheckpointError, PipelineImage};
        if !self.core.supports_group_state() {
            return Err(CheckpointError::Unsupported {
                reason: "pipeline was not compiled on the slot-based group core",
            });
        }
        // Compile the replacement core first: a plan rejection must leave
        // the running pipeline untouched. Exporting drains the live core,
        // so re-adopting into a *fresh* core (never the same one — factor
        // windows would double-deliver their flushed panes) is mandatory.
        let mut fresh = crate::multi::MultiCore::compile(plan, self.element_work, self.profile)
            .map_err(CheckpointError::Engine)?;
        self.close_burst();
        // Snapshot accounting before the export: the downward flush
        // performs counted combines that belong to the post-checkpoint
        // continuation, not the image.
        let stats = self.stats();
        let fed = self.base_fed + self.core.events_fed();
        let results = self.base_results + self.core.results_emitted();
        let work = self.base_work.wrapping_add(self.core.work_total());
        let profiles = self.node_profiles();
        let state = self
            .core
            .export_group_state()
            .expect("support checked above");
        let mut image = PipelineImage::from_state(
            &state,
            self.reorder.as_ref().map(ReorderBuffer::image),
            self.sink.results().to_vec(),
            fed,
            results,
            work,
            stats,
        );
        image.profiles = profiles;
        fresh.adopt(state);
        // Fold the retired core into the cumulative base. No replan
        // increment: a checkpoint is observably transparent.
        self.base_stats = self.base_stats + self.core.stats();
        self.base_fed += self.core.events_fed();
        self.base_results += self.core.results_emitted();
        self.base_work = self.base_work.wrapping_add(self.core.work_total());
        fold_profiles(&mut self.base_profiles, &self.core.node_profiles());
        self.base_compactions += self.core.compactions();
        self.core = Box::new(fresh);
        self.sync_accounting();
        Ok(image)
    }

    /// Restores a pipeline from a checkpoint written by
    /// [`Self::checkpoint`] (or by `ShardedPipeline::checkpoint` — the
    /// on-disk format is shard-count-free). `plan` must describe the same
    /// query; `opts` may differ (the snapshot's reorder buffer wins over
    /// `opts.out_of_order` when present). Replaying the event stream from
    /// the snapshot's cursor (`events_processed() + buffered()`) yields
    /// results bit-identical to an uninterrupted run.
    pub fn restore<R: std::io::Read + ?Sized>(
        plan: &QueryPlan,
        opts: PipelineOptions,
        r: &mut R,
    ) -> std::result::Result<Self, crate::checkpoint::CheckpointError> {
        let version = crate::checkpoint::read_header(r, crate::checkpoint::KIND_PIPELINE)?;
        let image = crate::checkpoint::PipelineImage::decode(r, version)?;
        Self::restore_image(plan, opts, image)
    }

    /// Builds a running pipeline from a decoded checkpoint image.
    pub(crate) fn restore_image(
        plan: &QueryPlan,
        opts: PipelineOptions,
        mut image: crate::checkpoint::PipelineImage,
    ) -> std::result::Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let mut core = crate::multi::MultiCore::compile(plan, opts.element_work, opts.profile)
            .map_err(CheckpointError::Engine)?;
        let reorder_image = image.reorder.take();
        let pending = std::mem::take(&mut image.pending);
        let profiles = std::mem::take(&mut image.profiles);
        core.adopt(image.take_group_state());
        let mut pipeline = Self::with_core(Box::new(core), opts, Self::sink_hint(plan));
        if let Some(ri) = &reorder_image {
            // The snapshot is authoritative: it carries the buffered
            // events and the high watermark later pushes validate against.
            pipeline.reorder = Some(ReorderBuffer::from_image(ri));
        }
        if let ResultSink::Collect(rows) = &mut pipeline.sink {
            // Undelivered rows re-enter the sink without re-counting:
            // their emission is already in `image.results`.
            rows.extend(pending);
        }
        pipeline.base_stats = ExecStats {
            replans: 0,
            ..image.stats
        };
        pipeline.replans = image.stats.replans;
        pipeline.base_fed = image.fed;
        pipeline.base_results = image.results;
        pipeline.base_work = image.work;
        // Cumulative per-node counters resume from the snapshot (empty
        // for images written before profiles existed).
        pipeline.base_profiles = profiles;
        pipeline.sync_accounting();
        Ok(pipeline)
    }

    /// Compiles and runs `plan` over a whole in-order batch — the
    /// non-deprecated replacement for [`execute_with`].
    pub fn run(plan: &QueryPlan, events: &[Event], opts: PipelineOptions) -> Result<RunOutput> {
        let mut pipeline = PlanPipeline::compile(plan, opts)?;
        pipeline.push_batch(events)?;
        pipeline.finish()
    }

    /// Pushes one event. With an out-of-order tolerance configured, the
    /// event may lag the observed maximum timestamp by up to the
    /// tolerance; otherwise it must not precede the current watermark.
    ///
    /// Timing is amortized: the wall clock is read once per
    /// `PUSH_CLOCK_STRIDE` (64) single-event pushes (a hot push loop pays no
    /// per-event clock cost), and any `push_batch`, watermark, or finish
    /// closes the open sample exactly. Caller think-time *between* pushes
    /// inside one stride is attributed to `elapsed`, so tight loops are
    /// measured accurately while interactive trickles are approximate —
    /// use [`Self::push_batch`] where exact timing matters.
    pub fn push(&mut self, event: Event) -> Result<()> {
        if self.burst_start.is_none() {
            self.burst_start = Some(Instant::now());
        }
        // The degenerate one-event column batch: per-event ingestion is a
        // wrapper over the columnar primitive, so there is exactly one
        // feed implementation to keep correct.
        let result = self.push_columns_inner(
            &[event.time],
            &[event.key],
            std::slice::from_ref(&event.value),
        );
        self.burst_len += 1;
        if self.burst_len >= PUSH_CLOCK_STRIDE {
            self.close_burst();
        }
        result
    }

    /// Folds the open single-push timing burst into `elapsed`.
    fn close_burst(&mut self) {
        if let Some(start) = self.burst_start.take() {
            self.elapsed += start.elapsed();
        }
        self.burst_len = 0;
    }

    /// Pushes a batch of row-oriented events (timed once around the whole
    /// batch, so batch callers pay no per-event clock overhead). The rows
    /// are transposed once into a reusable columnar staging buffer and
    /// then take the same run-sliced path as [`Self::push_columns`].
    pub fn push_batch(&mut self, events: &[Event]) -> Result<()> {
        self.close_burst();
        let start = Instant::now();
        let result = self.push_events_inner(events);
        self.elapsed += start.elapsed();
        result
    }

    /// Pushes a columnar batch — the zero-copy ingestion primitive. The
    /// three slices must be equally long; timestamps are expected
    /// non-decreasing (within the configured out-of-order tolerance).
    pub fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()> {
        if times.len() != keys.len() || times.len() != values.len() {
            return Err(EngineError::ColumnLengthMismatch {
                times: times.len(),
                keys: keys.len(),
                values: values.len(),
            });
        }
        self.close_burst();
        let start = Instant::now();
        let result = self.push_columns_inner(times, keys, values);
        self.elapsed += start.elapsed();
        result
    }

    fn push_events_inner(&mut self, events: &[Event]) -> Result<()> {
        match &mut self.reorder {
            None => {
                // Transpose in spare-cap-sized chunks: the staging buffer
                // then never exceeds the capacity `EventBatch::clear`
                // retains, so arbitrarily large caller batches reuse one
                // allocation forever instead of shrinking and regrowing
                // the columns on every call.
                let mut result = Ok(());
                for chunk in events.chunks(crate::batch::BATCH_SPARE_CAP) {
                    self.staging.clear();
                    self.staging.extend_from_events(chunk);
                    result = {
                        let (times, keys, values) = self.staging.columns();
                        self.core.feed_columns(times, keys, values, &mut self.sink)
                    };
                    if result.is_err() {
                        break;
                    }
                }
                self.sync_accounting();
                result
            }
            Some(buffer) => {
                for &event in events {
                    buffer.push(event)?;
                }
                self.feed_staged()
            }
        }
    }

    fn push_columns_inner(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()> {
        match &mut self.reorder {
            None => {
                let result = self.core.feed_columns(times, keys, values, &mut self.sink);
                self.sync_accounting();
                result
            }
            Some(buffer) => {
                for i in 0..times.len() {
                    buffer.push(Event::new(times[i], keys[i], values[i]))?;
                }
                self.feed_staged()
            }
        }
    }

    /// Feeds everything the reorder buffer has staged (released in
    /// timestamp order into its reusable columnar drain buffer). The
    /// staged columns are cleared afterwards whether or not the feed
    /// errored: the core consumed the prefix before the offending
    /// element, and the offender can never become feedable.
    fn feed_staged(&mut self) -> Result<()> {
        let Some(buffer) = &mut self.reorder else {
            return Ok(());
        };
        if buffer.staged().is_empty() {
            return Ok(());
        }
        let (times, keys, values) = buffer.staged().columns();
        let result = self.core.feed_columns(times, keys, values, &mut self.sink);
        buffer.clear_staged();
        self.sync_accounting();
        result
    }

    /// Mirrors the core's feed counters (plus the base retired by any
    /// rebuilds). The core counts per event, so a batch that errors
    /// mid-way leaves the accounting consistent with the events actually
    /// aggregated (the prefix before the error).
    fn sync_accounting(&mut self) {
        self.events_processed = self.base_fed + self.core.events_fed();
        self.last_time = self.core.last_event_time();
    }

    /// Declares that no event with `time < watermark` will arrive: releases
    /// everything the reorder buffer held before `watermark`, seals every
    /// window instance ending at or before it, and emits their results.
    pub fn advance_watermark(&mut self, watermark: u64) -> Result<()> {
        self.close_burst();
        let start = Instant::now();
        if let Some(buffer) = &mut self.reorder {
            buffer.advance_to(watermark);
        }
        let result = self.feed_staged();
        self.core.advance_to(watermark, &mut self.sink);
        self.elapsed += start.elapsed();
        result
    }

    /// Drains the results collected since the last poll. Always empty when
    /// the pipeline was compiled without `collect`.
    pub fn poll_results(&mut self) -> Vec<WindowResult> {
        let mut out = Vec::new();
        self.poll_results_into(&mut out);
        out
    }

    /// Drains the results collected since the last poll into `out`,
    /// reusing both buffers: the sink keeps its (pre-reserved) capacity
    /// and `out` keeps whatever the caller accumulated, so a steady-state
    /// poll loop with a recycled `out` performs no allocations.
    pub fn poll_results_into(&mut self, out: &mut Vec<WindowResult>) {
        self.sink.drain_into(out);
    }

    /// Ends the stream: flushes the reorder buffer, seals everything the
    /// stream completed, and returns the run's accounting (plus any
    /// results not yet drained by [`Self::poll_results`]).
    pub fn finish(mut self) -> Result<RunOutput> {
        self.close_burst();
        let start = Instant::now();
        if let Some(buffer) = &mut self.reorder {
            buffer.flush();
        }
        self.feed_staged()?;
        if self.events_processed > 0 {
            self.core.advance_to(self.last_time + 1, &mut self.sink);
        }
        self.elapsed += start.elapsed();
        // Keep the emulated element work observable so it is not optimized
        // away (see `pane::element_work`).
        std::hint::black_box(self.base_work.wrapping_add(self.core.work_total()));
        let stats = self.stats();
        Ok(RunOutput {
            events_processed: self.events_processed,
            results_emitted: self.base_results + self.core.results_emitted(),
            elapsed: self.elapsed,
            results: self.sink.into_results(),
            stats,
        })
    }

    /// Number of events fed into the operators so far (events still held in
    /// the reorder buffer are not counted).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of results emitted so far (including polled ones).
    #[must_use]
    pub fn results_emitted(&self) -> u64 {
        self.base_results + self.core.results_emitted()
    }

    /// Current ordering watermark of the operators.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.core.watermark()
    }

    /// Events currently held in the reorder buffer.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.reorder.as_ref().map_or(0, ReorderBuffer::buffered)
    }

    /// Cost-model element counts so far (cumulative across any rebuilds).
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        let mut stats = self.base_stats + self.core.stats();
        stats.replans = self.replans;
        stats
    }

    /// Processing wall time accumulated so far (compilation excluded; a
    /// single-push timing burst still open is not yet folded in).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// High-water `(slots, bytes)` of the core's key interner — the dense
    /// key space backing the pane slabs (see [`crate::slab`]). Slots
    /// count distinct keys interned since the last compaction; bytes are
    /// the interner's table memory. Observability only.
    #[must_use]
    pub fn interner_stats(&self) -> (u64, u64) {
        self.core.interner_stats()
    }

    /// The per-node instrumentation level this pipeline was compiled with.
    #[must_use]
    pub fn profile_level(&self) -> ProfileLevel {
        self.profile
    }

    /// Per-plan-node observed counters, cumulative across rebuilds,
    /// checkpoints and restores (windows retired by a replan appear as
    /// [`crate::profile::RETIRED_NODE`] entries). With profiling off the
    /// always-on update/combine counters are still attributed; seals,
    /// emitted rows, occupancy high-waters and nanos stay zero.
    #[must_use]
    pub fn node_profiles(&self) -> Vec<NodeProfile> {
        join_profiles(&self.base_profiles, &self.core.node_profiles())
    }

    /// Interner compactions performed over the pipeline's lifetime.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.base_compactions + self.core.compactions()
    }
}

/// Object-safe interface over the pipeline cores (per-function
/// monomorphized [`Typed`] and the multi-aggregate
/// [`crate::multi::MultiCore`]), so one [`PlanPipeline`] type serves every
/// aggregate list. `Send` so a compiled pipeline can move onto a shard
/// worker thread (see [`crate::shard::ShardedPipeline`]).
///
/// The feed primitive is **columnar**: equally long timestamp/key/value
/// slices, consumed run-sliced (see [`run_limit`]). Row-oriented entry
/// points transpose (or wrap a single event as one-element columns)
/// before reaching the core.
pub(crate) trait PipelineCore: Send {
    fn feed_columns(
        &mut self,
        times: &[u64],
        keys: &[u32],
        values: &[f64],
        sink: &mut ResultSink,
    ) -> Result<()>;
    fn advance_to(&mut self, watermark: u64, sink: &mut ResultSink);
    fn watermark(&self) -> u64;
    fn events_fed(&self) -> u64;
    fn last_event_time(&self) -> u64;
    fn results_emitted(&self) -> u64;
    fn stats(&self) -> ExecStats;
    fn work_total(&self) -> u64;
    /// Whether the core can export its state for a live plan swap (only
    /// the slot-based [`crate::multi::MultiCore`] can).
    fn supports_group_state(&self) -> bool {
        false
    }
    /// Drains the core's migratable state (see
    /// [`crate::multi::GroupState`]); `None` for monomorphized cores.
    fn export_group_state(&mut self) -> Option<crate::multi::GroupState> {
        None
    }
    /// `(slots, bytes)` high-water mark of the core's key interner —
    /// the dense key space backing the pane slabs (see [`crate::slab`]).
    fn interner_stats(&self) -> (u64, u64) {
        (0, 0)
    }
    /// Observed counters for every window node, in `window_nodes` order
    /// (see [`crate::profile::NodeProfile`]).
    fn node_profiles(&self) -> Vec<NodeProfile>;
    /// Interner compactions performed by this core.
    fn compactions(&self) -> u64 {
        0
    }
}

/// Interner compaction floor: below this many slots the dense tables are
/// too small to be worth recycling.
pub(crate) const COMPACT_MIN_SLOTS: usize = 4096;

/// Translates raw keys into dense slots through `interner`, appending to
/// `slot_buf` (cleared first). Consecutive equal keys — the common case
/// for run-sliced streams — share one interner probe.
#[inline]
pub(crate) fn intern_keys(
    interner: &mut crate::slab::KeyInterner,
    keys: &[u32],
    slot_buf: &mut Vec<u32>,
) {
    slot_buf.clear();
    slot_buf.reserve(keys.len());
    let mut last_key = 0u32;
    let mut last_slot = 0u32;
    let mut have_last = false;
    for &key in keys {
        if !have_last || key != last_key {
            last_slot = interner.intern(key);
            last_key = key;
            have_last = true;
        }
        slot_buf.push(last_slot);
    }
}

/// The compiled physical pipeline, monomorphic over the aggregate.
struct Typed<A: Aggregate> {
    stores: Vec<PaneStore<A>>,
    windows: Vec<Window>,
    exposed: Vec<bool>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    /// Plan [`fw_core::NodeId`] of each operator (profiling identity).
    node_ids: Vec<usize>,
    /// Per-node instrumentation level (see [`ProfileLevel`]).
    profile: ProfileLevel,
    /// Seal passes performed (drives the sampled per-node clock).
    seal_passes: u64,
    /// Feed batches performed (drives the sampled per-node clock).
    feed_passes: u64,
    /// Interner compactions performed (trace observability).
    compactions: u64,
    /// Key → dense slot, shared by every store so parent and child panes
    /// align slot-for-slot and combines are linear merges.
    interner: crate::slab::KeyInterner,
    /// Per-batch key→slot translation buffer (reused; ingress-only).
    slot_buf: Vec<u32>,
    /// Largest live-entry count seen in a sealing pane since the last
    /// compaction — the signal distinguishing a genuinely wide key space
    /// from a rotating one that has retired most of its slots.
    peak_pane_live: usize,
    /// `fed` at the last compaction (spacing guard against thrash).
    last_compact_fed: u64,
    /// Interner high-water `(slots, bytes)` across compactions.
    interner_hw: (u64, u64),
    watermark: u64,
    /// `min` over stores of the next instance end; events strictly before
    /// this cannot seal anything, so the per-event fast path is one compare.
    deadline: u64,
    results_emitted: u64,
    /// Events successfully folded into the operators.
    fed: u64,
    /// Maximum event time among fed events (the end-of-stream seal point;
    /// unlike `watermark`, never moved by explicit announcements).
    last_event_time: u64,
}

impl<A: Aggregate> Typed<A> {
    fn compile(plan: &QueryPlan, element_work: u32, profile: ProfileLevel) -> Result<Self> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        let node_ids: Vec<usize> = plan.window_nodes().collect();
        let op_of = |node: usize| {
            node_ids
                .iter()
                .position(|&n| n == node)
                .expect("window node")
        };

        let mut windows = Vec::with_capacity(node_ids.len());
        let mut exposed = Vec::with_capacity(node_ids.len());
        let mut children = vec![Vec::new(); node_ids.len()];
        let mut roots = Vec::new();
        for (op, &node) in node_ids.iter().enumerate() {
            let window = *plan.window_at(node).expect("window node");
            windows.push(window);
            exposed.push(plan.is_exposed(node));
            match plan.feeding_window(node) {
                None => roots.push(op),
                Some(parent) => {
                    if !A::COMBINABLE {
                        return Err(EngineError::HolisticSubAggregate {
                            function: A::function().name(),
                        });
                    }
                    children[op_of(parent)].push(op);
                }
            }
        }
        let stores = windows
            .iter()
            .map(|w| PaneStore::<A>::with_element_work(*w, element_work))
            .collect();
        let mut pipeline = Typed {
            stores,
            windows,
            exposed,
            children,
            roots,
            node_ids,
            profile,
            seal_passes: 0,
            feed_passes: 0,
            compactions: 0,
            interner: crate::slab::KeyInterner::new(),
            slot_buf: Vec::new(),
            peak_pane_live: 0,
            last_compact_fed: 0,
            interner_hw: (0, 0),
            watermark: 0,
            deadline: 0,
            results_emitted: 0,
            fed: 0,
            last_event_time: 0,
        };
        pipeline.recompute_deadline();
        Ok(pipeline)
    }

    fn recompute_deadline(&mut self) {
        self.deadline = self
            .stores
            .iter()
            .map(PaneStore::front_end)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// Emits the window's results for the pane at the store front,
    /// straight into the sink (no intermediate buffer: with the sink's
    /// pre-reserved capacity, steady-state emission allocates nothing).
    #[inline]
    fn emit_front(&mut self, op: usize, interval: fw_core::Interval, sink: &mut ResultSink) {
        let window = self.windows[op];
        let pane = self.stores[op].front_pane();
        let slot_keys = self.interner.keys();
        let mut emitted = 0u64;
        if let ResultSink::Collect(_) = sink {
            for (slot, acc) in pane.iter() {
                sink.push(
                    WindowResult {
                        window,
                        interval,
                        key: slot_keys[slot as usize],
                        agg: 0,
                        value: A::finalize(acc),
                    },
                    &mut emitted,
                );
            }
        } else {
            emitted = pane.len() as u64;
        }
        self.results_emitted += emitted;
        if self.profile.counters_on() {
            self.stores[op].note_emitted(emitted);
        }
    }

    /// Seals every instance with `end ≤ watermark`, cascading sub-aggregates
    /// down the forest. Operators are stored in topological order (parents
    /// first), so a single pass suffices; the pass also refreshes the
    /// deadline, so sealing adds no extra scan.
    fn advance(&mut self, watermark: u64, sink: &mut ResultSink) {
        let counters = self.profile.counters_on();
        let clock = self.profile.clock_on() && {
            self.seal_passes = self.seal_passes.wrapping_add(1);
            self.seal_passes.is_multiple_of(PROFILE_CLOCK_STRIDE)
        };
        let mut deadline = u64::MAX;
        for op in 0..self.stores.len() {
            // On sampled passes the per-op seal work is timed, with the
            // cascade's combines attributed to the receiving child node.
            let mut op_timer = clock.then(Instant::now);
            let mut op_nanos = 0u64;
            while let Some(interval) = self.stores[op].prepare_due(watermark) {
                if self.exposed[op] {
                    self.emit_front(op, interval, sink);
                }
                // Children are strictly later ops (plans are topologically
                // ordered), so a split borrow reaches them without copying
                // the sealed pane.
                let (head, tail) = self.stores.split_at_mut(op + 1);
                let pane = head[op].front_pane();
                let live = pane.len();
                self.peak_pane_live = self.peak_pane_live.max(live);
                let slot_keys = self.interner.keys();
                match &mut op_timer {
                    Some(start) => {
                        op_nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        for &child in &self.children[op] {
                            debug_assert!(child > op, "plan must be topologically ordered");
                            let t0 = Instant::now();
                            tail[child - op - 1].combine_pane(&interval, pane, slot_keys);
                            tail[child - op - 1]
                                .add_nanos(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0));
                        }
                        *start = Instant::now();
                    }
                    None => {
                        for &child in &self.children[op] {
                            debug_assert!(child > op, "plan must be topologically ordered");
                            tail[child - op - 1].combine_pane(&interval, pane, slot_keys);
                        }
                    }
                }
                if counters {
                    self.stores[op].note_seal(live as u64);
                }
                self.stores[op].retire_front();
            }
            if let Some(start) = op_timer {
                op_nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.stores[op].add_nanos(op_nanos);
            }
            deadline = deadline.min(self.stores[op].front_end());
        }
        self.deadline = deadline;
    }

    /// Recycles the interner (and the slabs sized to it) at idle points
    /// when the live key working set has shrunk well below the slot
    /// count — long key churn would otherwise grow dense slabs without
    /// bound. Only runs when every open pane is empty (slot ids are then
    /// referenced nowhere), at least [`COMPACT_MIN_SLOTS`] slots exist,
    /// the largest recent pane used under half the slots, and enough
    /// events passed since the last compaction to amortize re-interning.
    ///
    /// Called from watermark announcements only — never from the sealing
    /// that runs inside a columnar feed, whose translated slot buffer
    /// must stay valid for the rest of the batch.
    fn maybe_compact(&mut self) {
        let slots = self.interner.len();
        if slots >= COMPACT_MIN_SLOTS
            && slots >= 2 * self.peak_pane_live.max(1)
            && self.fed.saturating_sub(self.last_compact_fed) >= 16 * slots as u64
            && self.stores.iter().all(PaneStore::is_idle)
        {
            self.interner_hw.0 = self.interner_hw.0.max(slots as u64);
            self.interner_hw.1 = self.interner_hw.1.max(self.interner.bytes() as u64);
            self.interner.clear();
            for store in &mut self.stores {
                store.compact();
            }
            self.peak_pane_live = 0;
            self.last_compact_fed = self.fed;
            self.compactions += 1;
        }
    }
}

impl<A: Aggregate> PipelineCore for Typed<A> {
    /// The run-sliced feed: intern the key column into dense slots once
    /// at ingress, split the columns at slide boundaries and the sealing
    /// deadline, then fold each run into every root store with one
    /// instance division per run and one slot-indexed accumulator resolve
    /// per key sub-run — zero hash probes past this point. Behavior
    /// (results, error position, accounting) is element-for-element
    /// identical to feeding the events one at a time.
    fn feed_columns(
        &mut self,
        times: &[u64],
        keys: &[u32],
        values: &[f64],
        sink: &mut ResultSink,
    ) -> Result<()> {
        debug_assert!(times.len() == keys.len() && times.len() == values.len());
        // One-element batches (the per-event `push` wrapper) skip the run
        // arithmetic entirely and keep `update_point`'s tumbling fast
        // path — the per-event API costs what it did before columnar
        // ingestion existed.
        let clock = self.profile.clock_on() && {
            self.feed_passes = self.feed_passes.wrapping_add(1);
            self.feed_passes.is_multiple_of(PROFILE_CLOCK_STRIDE)
        };
        if times.len() == 1 {
            let t = times[0];
            if t < self.watermark {
                return Err(EngineError::OutOfOrderEvent {
                    at: t,
                    watermark: self.watermark,
                });
            }
            if t >= self.deadline {
                self.advance(t, sink);
            }
            self.watermark = t;
            let slot = self.interner.intern(keys[0]);
            for &root in &self.roots {
                if clock {
                    let t0 = Instant::now();
                    self.stores[root].update_point(t, keys[0], slot, values[0]);
                    self.stores[root]
                        .add_nanos(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0));
                } else {
                    self.stores[root].update_point(t, keys[0], slot, values[0]);
                }
            }
            self.fed += 1;
            self.last_event_time = self.last_event_time.max(t);
            return Ok(());
        }
        // The whole batch's keys translate in one pass — the only hashing
        // on the columnar path, paid once per element instead of once per
        // key sub-run per root per instance.
        let mut slot_buf = std::mem::take(&mut self.slot_buf);
        intern_keys(&mut self.interner, keys, &mut slot_buf);
        let mut i = 0;
        while i < times.len() {
            let head = times[i];
            if head < self.watermark {
                self.slot_buf = slot_buf;
                return Err(EngineError::OutOfOrderEvent {
                    at: head,
                    watermark: self.watermark,
                });
            }
            if head >= self.deadline {
                self.advance(head, sink);
            }
            let limit = run_limit(
                head,
                self.roots.iter().map(|&root| &self.windows[root]),
                self.deadline,
            );
            let j = i + run_len(&times[i..], limit);
            for &root in &self.roots {
                if clock {
                    let t0 = Instant::now();
                    self.stores[root].update_run(
                        &times[i..j],
                        &keys[i..j],
                        &slot_buf[i..j],
                        &values[i..j],
                    );
                    self.stores[root]
                        .add_nanos(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0));
                } else {
                    self.stores[root].update_run(
                        &times[i..j],
                        &keys[i..j],
                        &slot_buf[i..j],
                        &values[i..j],
                    );
                }
            }
            let last = times[j - 1];
            self.watermark = last;
            self.fed += (j - i) as u64;
            self.last_event_time = self.last_event_time.max(last);
            i = j;
        }
        self.slot_buf = slot_buf;
        Ok(())
    }

    fn advance_to(&mut self, watermark: u64, sink: &mut ResultSink) {
        self.advance(watermark, sink);
        // Later events behind an announced watermark can no longer be
        // ordered with the sealed instances.
        self.watermark = self.watermark.max(watermark);
        self.maybe_compact();
    }

    fn watermark(&self) -> u64 {
        self.watermark
    }

    fn events_fed(&self) -> u64 {
        self.fed
    }

    fn last_event_time(&self) -> u64 {
        self.last_event_time
    }

    fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    fn stats(&self) -> ExecStats {
        let updates: u64 = self.stores.iter().map(PaneStore::updates).sum();
        let combines: u64 = self.stores.iter().map(PaneStore::combines).sum();
        ExecStats {
            updates,
            combines,
            // One aggregate term: every pane element is one accumulator op.
            agg_ops: updates + combines,
            replans: 0,
        }
    }

    fn work_total(&self) -> u64 {
        self.stores
            .iter()
            .map(PaneStore::work_sink)
            .fold(0u64, u64::wrapping_add)
    }

    fn interner_stats(&self) -> (u64, u64) {
        (
            self.interner_hw.0.max(self.interner.len() as u64),
            self.interner_hw.1.max(self.interner.bytes() as u64),
        )
    }

    fn node_profiles(&self) -> Vec<NodeProfile> {
        self.windows
            .iter()
            .enumerate()
            .map(|(op, w)| {
                let mut p = NodeProfile {
                    node: self.node_ids[op],
                    range: w.range(),
                    slide: w.slide(),
                    exposed: self.exposed[op],
                    raw_fed: self.roots.contains(&op),
                    ..NodeProfile::default()
                };
                self.stores[op].profile_into(&mut p);
                p
            })
            .collect()
    }

    fn compactions(&self) -> u64 {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::sorted_results;
    use fw_core::{AggregateFunction, Optimizer, Semantics, Window, WindowQuery, WindowSet};

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn events(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t % u64::from(keys)) as u32, (t % 17) as f64))
            .collect()
    }

    fn query(ws: &[Window], f: AggregateFunction) -> WindowQuery {
        WindowQuery::new(WindowSet::new(ws.to_vec()).unwrap(), f)
    }

    fn run_collect(plan: &QueryPlan, evs: &[Event]) -> Result<RunOutput> {
        PlanPipeline::run(
            plan,
            evs,
            PipelineOptions {
                collect: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn plan_pipeline_is_send() {
        // Shard workers move compiled pipelines across threads; this must
        // hold for every aggregate's accumulator type.
        fn assert_send<T: Send>() {}
        assert_send::<PlanPipeline>();
    }

    #[test]
    fn single_tumbling_min() {
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let evs = events(30, 1);
        let out = run_collect(&plan, &evs).unwrap();
        // Instances [0,10): min(0..10 % 17) = 0; [10,20): values 10..16,0,1,2 → 0;
        // [20,30): values 3..12 → 3.
        let results = sorted_results(out.results);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].value, 0.0);
        assert_eq!(results[1].value, 0.0);
        assert_eq!(results[2].value, 3.0);
        assert_eq!(out.events_processed, 30);
    }

    #[test]
    fn all_three_plans_agree_for_min_covered_by() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Min);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(500, 4);
        let a = run_collect(&out.original.plan, &evs).unwrap();
        let b = run_collect(&out.rewritten.plan, &evs).unwrap();
        let c = run_collect(&out.factored.plan, &evs).unwrap();
        let ra = sorted_results(a.results);
        let rb = sorted_results(b.results);
        let rc = sorted_results(c.results);
        assert!(!ra.is_empty());
        assert_eq!(ra, rb);
        assert_eq!(ra, rc);
    }

    #[test]
    fn all_three_plans_agree_for_sum_partitioned_by() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Sum);
        let out = Optimizer::default()
            .optimize_with(&q, Semantics::PartitionedBy)
            .unwrap();
        let evs = events(600, 3);
        let a = run_collect(&out.original.plan, &evs).unwrap();
        let c = run_collect(&out.factored.plan, &evs).unwrap();
        assert_eq!(sorted_results(a.results), sorted_results(c.results));
    }

    #[test]
    fn hopping_windows_agree_for_max() {
        let q = query(&[w(20, 10), w(40, 10), w(60, 20)], AggregateFunction::Max);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(400, 2);
        let a = run_collect(&out.original.plan, &evs).unwrap();
        let c = run_collect(&out.factored.plan, &evs).unwrap();
        assert_eq!(sorted_results(a.results), sorted_results(c.results));
    }

    #[test]
    fn rejects_out_of_order_events() {
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let evs = vec![Event::new(5, 0, 1.0), Event::new(3, 0, 1.0)];
        // The watermark only moves on seals; craft times to hit the check.
        let err = run_collect(&plan, &evs).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { .. }));
    }

    #[test]
    fn rejects_holistic_subaggregation() {
        // Hand-build a plan that feeds MEDIAN from sub-aggregates.
        let mut b = fw_core::plan::PlanBuilder::new(AggregateFunction::Median);
        let src = b.source();
        let w20 = b.window_agg(src, w(20, 20), "w20".to_string(), true);
        let w40 = b.window_agg(w20, w(40, 40), "w40".to_string(), true);
        let plan = b.finish(vec![w20, w40]);
        let err = PlanPipeline::compile(&plan, PipelineOptions::default())
            .err()
            .unwrap();
        assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
    }

    #[test]
    fn median_runs_on_original_plan() {
        let q = query(&[w(10, 10), w(20, 20)], AggregateFunction::Median);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(40, 1);
        let run = run_collect(&out.factored.plan, &evs).unwrap();
        assert!(!run.results.is_empty());
    }

    #[test]
    fn count_matches_event_counts() {
        let q = query(&[w(10, 10), w(20, 20)], AggregateFunction::Count);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(40, 2);
        let run = run_collect(&out.factored.plan, &evs).unwrap();
        for r in &run.results {
            // 2 keys alternating each tick: every instance holds r/2 per key.
            assert_eq!(r.value, (r.interval.len() / 2) as f64);
        }
    }

    #[test]
    fn exec_stats_count_cost_model_elements() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Min);
        let out = Optimizer::default()
            .optimize_with(&q, Semantics::PartitionedBy)
            .unwrap();
        let evs = events(1200, 1);
        // Original: every event updates each of the 3 tumbling windows.
        let orig = PlanPipeline::run(&out.original.plan, &evs, PipelineOptions::default()).unwrap();
        assert_eq!(orig.stats.updates, 3 * 1200);
        assert_eq!(orig.stats.combines, 0);
        // Factored (Figure 2(c)): one raw update per event into W(10,10),
        // everything else arrives as sub-aggregates.
        let fac = PlanPipeline::run(&out.factored.plan, &evs, PipelineOptions::default()).unwrap();
        assert_eq!(fac.stats.updates, 1200);
        assert!(fac.stats.combines > 0);
        assert!(fac.stats.elements() < orig.stats.elements());
    }

    #[test]
    fn empty_stream_is_fine() {
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let out = run_collect(&plan, &[]).unwrap();
        assert_eq!(out.events_processed, 0);
        assert_eq!(out.results_emitted, 0);
    }

    #[test]
    fn out_of_order_check_uses_watermark_not_last_event() {
        // Equal timestamps are allowed (multiple keys per tick).
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let evs = vec![
            Event::new(1, 0, 1.0),
            Event::new(1, 1, 2.0),
            Event::new(2, 0, 0.5),
        ];
        assert!(run_collect(&plan, &evs).is_ok());
    }

    #[test]
    fn exec_options_defaults_mirror_pipeline_defaults() {
        // The deprecated `executor::execute`/`execute_with` wrappers
        // translate `ExecOptions` into `PipelineOptions` field-for-field
        // with `out_of_order = 0` (`execute` additionally fixes
        // `element_work` to the default). Internal code no longer calls
        // them; pin the shared defaults so the wrapper contract cannot
        // silently drift from the pipeline it delegates to.
        let exec = ExecOptions::default();
        let pipe = PipelineOptions::default();
        assert_eq!(exec.collect, pipe.collect);
        assert_eq!(exec.element_work, pipe.element_work);
        assert_eq!(exec.element_work, crate::pane::DEFAULT_ELEMENT_WORK);
        assert_eq!(pipe.out_of_order, 0);
    }

    #[test]
    fn incremental_push_matches_batch_run() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Sum);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(500, 3);
        let batch = run_collect(&out.factored.plan, &evs).unwrap();

        let mut pipeline =
            PlanPipeline::compile(&out.factored.plan, PipelineOptions::collecting()).unwrap();
        let mut collected = Vec::new();
        for (i, &e) in evs.iter().enumerate() {
            pipeline.push(e).unwrap();
            if i % 100 == 99 {
                collected.extend(pipeline.poll_results());
            }
        }
        let tail = pipeline.finish().unwrap();
        collected.extend(tail.results);
        assert_eq!(sorted_results(collected), sorted_results(batch.results));
        assert_eq!(tail.events_processed, 500);
        assert_eq!(tail.results_emitted, batch.results_emitted);
    }

    #[test]
    fn watermark_advance_seals_incrementally() {
        let q = query(&[w(10, 10)], AggregateFunction::Count);
        let plan = fw_core::rewrite::original_plan(&q);
        let mut pipeline = PlanPipeline::compile(&plan, PipelineOptions::collecting()).unwrap();
        for t in 0..10u64 {
            pipeline.push(Event::new(t, 0, 1.0)).unwrap();
        }
        // Nothing sealed yet: the instance [0,10) ends exactly at the
        // maximum pushed time + 1.
        assert!(pipeline.poll_results().is_empty());
        pipeline.advance_watermark(10).unwrap();
        let sealed = pipeline.poll_results();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].value, 10.0);
        // An event behind the announced watermark is rejected.
        let err = pipeline.push(Event::new(5, 0, 1.0)).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { .. }));
        // The stream continues past the watermark.
        pipeline.push(Event::new(15, 0, 1.0)).unwrap();
        let out = pipeline.finish().unwrap();
        assert_eq!(out.events_processed, 11);
    }

    #[test]
    fn out_of_order_tolerance_repairs_jitter() {
        let q = query(&[w(10, 10), w(20, 20)], AggregateFunction::Min);
        let out = Optimizer::default().optimize(&q).unwrap();
        let ordered = events(200, 2);
        let mut jittered = ordered.clone();
        for chunk in jittered.chunks_mut(4) {
            chunk.reverse();
        }
        // Strict pipeline rejects the jitter...
        let strict =
            PlanPipeline::run(&out.factored.plan, &jittered, PipelineOptions::collecting());
        assert!(strict.is_err());
        // ...a tolerant pipeline repairs it losslessly.
        let opts = PipelineOptions {
            out_of_order: 4,
            ..PipelineOptions::collecting()
        };
        let mut pipeline = PlanPipeline::compile(&out.factored.plan, opts).unwrap();
        for &e in &jittered {
            pipeline.push(e).unwrap();
        }
        let repaired = pipeline.finish().unwrap();
        let reference = run_collect(&out.factored.plan, &ordered).unwrap();
        assert_eq!(
            sorted_results(repaired.results),
            sorted_results(reference.results)
        );
        assert_eq!(repaired.events_processed, 200);
    }

    #[test]
    fn mid_batch_error_keeps_accounting_consistent() {
        // A batch that errors part-way must leave events_processed equal
        // to the prefix actually aggregated, so finish() still seals it.
        let q = query(&[w(10, 10)], AggregateFunction::Sum);
        let plan = fw_core::rewrite::original_plan(&q);
        let mut pipeline = PlanPipeline::compile(&plan, PipelineOptions::collecting()).unwrap();
        let batch = vec![
            Event::new(12, 0, 1.0),
            Event::new(19, 0, 2.0),
            Event::new(3, 0, 4.0),
        ];
        let err = pipeline.push_batch(&batch).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { at: 3, .. }));
        // The two in-order events were fed; the late one was not.
        assert_eq!(pipeline.events_processed(), 2);
        let out = pipeline.finish().unwrap();
        assert_eq!(out.events_processed, 2);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].value, 3.0); // 1.0 + 2.0, not 7.0
    }

    #[test]
    fn rebuild_swaps_plans_mid_stream_without_changing_results() {
        // Swap factored → original → rewritten at watermark boundaries;
        // results and cumulative accounting must match a static run.
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Sum);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(600, 3);
        let reference = run_collect(&out.original.plan, &evs).unwrap();

        let mut pipeline =
            PlanPipeline::compile_grouped(&out.factored.plan, PipelineOptions::collecting())
                .unwrap();
        let mut collected = Vec::new();
        pipeline.push_batch(&evs[..200]).unwrap();
        pipeline.rebuild(&out.original.plan, 200).unwrap();
        collected.extend(pipeline.poll_results());
        pipeline.push_batch(&evs[200..400]).unwrap();
        pipeline.rebuild(&out.rewritten.plan, 400).unwrap();
        pipeline.push_batch(&evs[400..]).unwrap();
        assert_eq!(pipeline.events_processed(), 600);
        let tail = pipeline.finish().unwrap();
        collected.extend(tail.results);
        assert_eq!(sorted_results(collected), sorted_results(reference.results));
        assert_eq!(tail.events_processed, 600);
        assert_eq!(tail.results_emitted, reference.results_emitted);
        assert_eq!(tail.stats.replans, 2);
    }

    #[test]
    fn rebuild_does_not_double_count_through_exposed_feeders() {
        // The regression the carry mechanism exists for: w20 (exposed)
        // feeds w40 in the rewritten plan, and the swap watermark (130)
        // falls inside w20's instance [120,140). The export-time flush
        // hands w40 the [120,130) contributions; the migrated w20 pane
        // must then cascade only [130,140) when it seals — cascading the
        // adopted pane wholesale made w40's [120,160) sum 50 instead of
        // 40 for a constant-1.0 stream.
        let q = query(&[w(20, 20), w(40, 40)], AggregateFunction::Sum);
        let out = Optimizer::default().optimize(&q).unwrap();
        let plan = &out.rewritten.plan;
        assert!(plan
            .window_nodes()
            .any(|id| plan.feeding_window(id).is_some()));
        let evs: Vec<Event> = (0..200u64).map(|t| Event::new(t, 0, 1.0)).collect();
        let reference = run_collect(plan, &evs).unwrap();

        for boundary in [130u64, 125, 140] {
            let mut pipeline =
                PlanPipeline::compile_grouped(plan, PipelineOptions::collecting()).unwrap();
            pipeline.push_batch(&evs[..boundary as usize]).unwrap();
            pipeline.rebuild(plan, boundary).unwrap();
            pipeline.push_batch(&evs[boundary as usize..]).unwrap();
            let mut collected = pipeline.poll_results();
            let tail = pipeline.finish().unwrap();
            collected.extend(tail.results);
            assert_eq!(
                sorted_results(collected),
                sorted_results(reference.results.clone()),
                "boundary {boundary}"
            );
        }
    }

    #[test]
    fn rebuild_carry_survives_back_to_back_swaps_and_quiet_instances() {
        // Two swaps in a row (carry re-exported before it merged) and a
        // stream that goes quiet right after the boundary (the carried
        // instance's only content is the carry itself — it must still
        // seal and emit).
        let q = query(&[w(20, 20), w(40, 40), w(80, 80)], AggregateFunction::Avg);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs: Vec<Event> = (0..160u64)
            .map(|t| Event::new(t, (t % 2) as u32, (t % 13) as f64))
            .collect();
        let reference = run_collect(&out.rewritten.plan, &evs).unwrap();

        let mut pipeline =
            PlanPipeline::compile_grouped(&out.rewritten.plan, PipelineOptions::collecting())
                .unwrap();
        pipeline.push_batch(&evs[..90]).unwrap();
        pipeline.rebuild(&out.factored.plan, 90).unwrap();
        pipeline.rebuild(&out.rewritten.plan, 90).unwrap(); // carry re-exported
        pipeline.push_batch(&evs[90..100]).unwrap();
        // Quiet gap: seal everything (including carry-only instances) via
        // an announced watermark far past the stream.
        pipeline.push_batch(&evs[100..]).unwrap();
        let mut collected = pipeline.poll_results();
        let tail = pipeline.finish().unwrap();
        collected.extend(tail.results);
        assert_eq!(
            sorted_results(collected),
            sorted_results(reference.results.clone())
        );
        assert_eq!(tail.stats.replans, 2);
    }

    #[test]
    fn rebuild_requires_the_slot_core() {
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let mut pipeline = PlanPipeline::compile(&plan, PipelineOptions::default()).unwrap();
        let err = pipeline.rebuild(&plan, 0).unwrap_err();
        assert!(matches!(err, EngineError::RebuildUnsupported { .. }));
    }

    #[test]
    fn rebuild_with_out_of_order_tolerance_keeps_buffered_events() {
        let q = query(&[w(10, 10), w(20, 20)], AggregateFunction::Min);
        let out = Optimizer::default().optimize(&q).unwrap();
        let ordered = events(200, 2);
        let mut jittered = ordered.clone();
        for chunk in jittered.chunks_mut(4) {
            chunk.reverse();
        }
        let reference = run_collect(&out.factored.plan, &ordered).unwrap();
        let opts = PipelineOptions {
            out_of_order: 4,
            ..PipelineOptions::collecting()
        };
        let mut pipeline = PlanPipeline::compile_grouped(&out.factored.plan, opts).unwrap();
        for (i, &e) in jittered.iter().enumerate() {
            pipeline.push(e).unwrap();
            if i == 99 {
                // Swap at the pipeline's own watermark: events still held
                // in the reorder buffer survive the swap.
                let w = pipeline.watermark();
                pipeline.rebuild(&out.original.plan, w).unwrap();
            }
        }
        let repaired = pipeline.finish().unwrap();
        assert_eq!(
            sorted_results(repaired.results),
            sorted_results(reference.results)
        );
        assert_eq!(repaired.events_processed, 200);
    }

    #[test]
    fn tolerance_still_rejects_excess_disorder() {
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let opts = PipelineOptions {
            out_of_order: 5,
            ..PipelineOptions::default()
        };
        let mut pipeline = PlanPipeline::compile(&plan, opts).unwrap();
        pipeline.push(Event::new(100, 0, 1.0)).unwrap();
        let err = pipeline.push(Event::new(10, 0, 1.0)).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { at: 10, .. }));
    }
}
