//! Plan compilation and single-core push execution.
//!
//! A [`fw_core::QueryPlan`] compiles into one operator per
//! window node. Raw-fed operators fold events into their panes; when the
//! watermark passes an instance's end, the instance seals and its per-key
//! sub-aggregates cascade to child operators (the Multicast/Union wiring of
//! the plan collapses into the routing tables here). Exposed operators also
//! emit user-visible results.

use crate::agg::{Aggregate, AvgAgg, CountAgg, MaxAgg, MedianAgg, MinAgg, SumAgg};
use crate::error::{EngineError, Result};
use crate::event::{Event, ResultSink, WindowResult};
use crate::pane::PaneStore;
use fw_core::{AggregateFunction, QueryPlan, Window};
use std::time::{Duration, Instant};

/// Element-level accounting: the quantities the paper's cost model counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Raw-event accumulator updates (`n·η·r` per period, summed over
    /// raw-fed windows).
    pub updates: u64,
    /// Sub-aggregate combines (`n·M` per period, summed over fed windows).
    pub combines: u64,
}

impl ExecStats {
    /// Total cost-model elements processed.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.updates + self.combines
    }
}

/// Outcome of executing a plan over a stream.
#[derive(Debug)]
pub struct RunOutput {
    /// Number of events pushed through the plan.
    pub events_processed: u64,
    /// Number of (window, instance, key) results emitted to the union.
    pub results_emitted: u64,
    /// Wall time of the processing loop (compilation excluded).
    pub elapsed: Duration,
    /// Collected results (empty unless collection was requested).
    pub results: Vec<WindowResult>,
    /// Cost-model element counts (updates and combines).
    pub stats: ExecStats,
}

impl RunOutput {
    /// Throughput in events per second (the paper's metric, Karimov et al.).
    #[must_use]
    pub fn throughput_eps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.events_processed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Gather results (tests) instead of counting them (throughput runs).
    pub collect: bool,
    /// Emulated per-element processing cost
    /// ([`crate::pane::DEFAULT_ELEMENT_WORK`]); `0` disables it.
    pub element_work: u32,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { collect: false, element_work: crate::pane::DEFAULT_ELEMENT_WORK }
    }
}

/// Executes `plan` over `events` (must be in non-decreasing time order)
/// with default element work. Set `collect` to gather results for
/// correctness checks; leave it off for throughput measurements.
pub fn execute(plan: &QueryPlan, events: &[Event], collect: bool) -> Result<RunOutput> {
    execute_with(plan, events, ExecOptions { collect, ..ExecOptions::default() })
}

/// Executes `plan` with explicit [`ExecOptions`].
pub fn execute_with(plan: &QueryPlan, events: &[Event], opts: ExecOptions) -> Result<RunOutput> {
    match plan.function() {
        AggregateFunction::Min => run_typed::<MinAgg>(plan, events, opts),
        AggregateFunction::Max => run_typed::<MaxAgg>(plan, events, opts),
        AggregateFunction::Sum => run_typed::<SumAgg>(plan, events, opts),
        AggregateFunction::Count => run_typed::<CountAgg>(plan, events, opts),
        AggregateFunction::Avg => run_typed::<AvgAgg>(plan, events, opts),
        AggregateFunction::Median => run_typed::<MedianAgg>(plan, events, opts),
    }
}

fn run_typed<A: Aggregate>(plan: &QueryPlan, events: &[Event], opts: ExecOptions) -> Result<RunOutput> {
    let mut pipeline = Pipeline::<A>::compile(plan, opts.element_work)?;
    let mut sink =
        if opts.collect { ResultSink::Collect(Vec::new()) } else { ResultSink::CountOnly };
    let start = Instant::now();
    pipeline.run(events, &mut sink)?;
    let elapsed = start.elapsed();
    std::hint::black_box(
        pipeline.stores.iter().map(PaneStore::work_sink).fold(0u64, u64::wrapping_add),
    );
    let stats = ExecStats {
        updates: pipeline.stores.iter().map(PaneStore::updates).sum(),
        combines: pipeline.stores.iter().map(PaneStore::combines).sum(),
    };
    Ok(RunOutput {
        events_processed: events.len() as u64,
        results_emitted: pipeline.results_emitted,
        elapsed,
        results: sink.into_results(),
        stats,
    })
}

/// The compiled physical pipeline, monomorphic over the aggregate.
struct Pipeline<A: Aggregate> {
    stores: Vec<PaneStore<A>>,
    windows: Vec<Window>,
    exposed: Vec<bool>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    watermark: u64,
    /// `min` over stores of the next instance end; events strictly before
    /// this cannot seal anything, so the per-event fast path is one compare.
    deadline: u64,
    results_emitted: u64,
}

impl<A: Aggregate> Pipeline<A> {
    fn compile(plan: &QueryPlan, element_work: u32) -> Result<Self> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        let node_ids: Vec<usize> = plan.window_nodes().collect();
        let op_of = |node: usize| node_ids.iter().position(|&n| n == node).expect("window node");

        let mut windows = Vec::with_capacity(node_ids.len());
        let mut exposed = Vec::with_capacity(node_ids.len());
        let mut children = vec![Vec::new(); node_ids.len()];
        let mut roots = Vec::new();
        for (op, &node) in node_ids.iter().enumerate() {
            let window = *plan.window_at(node).expect("window node");
            windows.push(window);
            exposed.push(plan.is_exposed(node));
            match plan.feeding_window(node) {
                None => roots.push(op),
                Some(parent) => {
                    if !A::COMBINABLE {
                        return Err(EngineError::HolisticSubAggregate {
                            function: A::function().name(),
                        });
                    }
                    children[op_of(parent)].push(op);
                }
            }
        }
        let stores =
            windows.iter().map(|w| PaneStore::<A>::with_element_work(*w, element_work)).collect();
        let mut pipeline = Pipeline {
            stores,
            windows,
            exposed,
            children,
            roots,
            watermark: 0,
            deadline: 0,
            results_emitted: 0,
        };
        pipeline.recompute_deadline();
        Ok(pipeline)
    }

    fn recompute_deadline(&mut self) {
        self.deadline = self.stores.iter().map(PaneStore::front_end).min().unwrap_or(u64::MAX);
    }

    /// Emits the window's results for the pane at the store front.
    #[inline]
    fn emit_front(&mut self, op: usize, interval: fw_core::Interval, sink: &mut ResultSink) {
        let window = self.windows[op];
        let pane = self.stores[op].front_pane();
        // Count first to keep the sink borrow simple in the hot path.
        let mut emitted = 0u64;
        if let ResultSink::Collect(_) = sink {
            let results: Vec<WindowResult> = pane
                .iter()
                .map(|(&key, acc)| WindowResult { window, interval, key, value: A::finalize(acc) })
                .collect();
            for r in results {
                sink.push(r, &mut emitted);
            }
        } else {
            emitted = pane.len() as u64;
        }
        self.results_emitted += emitted;
    }

    fn run(&mut self, events: &[Event], sink: &mut ResultSink) -> Result<()> {
        for event in events {
            if event.time < self.watermark {
                return Err(EngineError::OutOfOrderEvent {
                    at: event.time,
                    watermark: self.watermark,
                });
            }
            if event.time >= self.deadline {
                self.advance(event.time, sink);
            }
            self.watermark = event.time;
            for &root in &self.roots {
                self.stores[root].update_point(event.time, event.key, event.value);
            }
        }
        // Seal everything completed by the end of the stream.
        if let Some(last) = events.last() {
            self.advance(last.time + 1, sink);
        }
        Ok(())
    }

    /// Seals every instance with `end ≤ watermark`, cascading sub-aggregates
    /// down the forest. Operators are stored in topological order (parents
    /// first), so a single pass suffices; the pass also refreshes the
    /// deadline, so sealing adds no extra scan.
    fn advance(&mut self, watermark: u64, sink: &mut ResultSink) {
        let mut deadline = u64::MAX;
        for op in 0..self.stores.len() {
            while let Some(interval) = self.stores[op].prepare_due(watermark) {
                if self.exposed[op] {
                    self.emit_front(op, interval, sink);
                }
                // Children are strictly later ops (plans are topologically
                // ordered), so a split borrow reaches them without copying
                // the sealed pane.
                let (head, tail) = self.stores.split_at_mut(op + 1);
                let pane = head[op].front_pane();
                for &child in &self.children[op] {
                    debug_assert!(child > op, "plan must be topologically ordered");
                    tail[child - op - 1].combine_pane(&interval, pane);
                }
                self.stores[op].retire_front();
            }
            deadline = deadline.min(self.stores[op].front_end());
        }
        self.deadline = deadline;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::sorted_results;
    use fw_core::{
        AggregateFunction, Optimizer, Semantics, Window, WindowQuery, WindowSet,
    };

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn events(n: u64, keys: u32) -> Vec<Event> {
        (0..n).map(|t| Event::new(t, (t % u64::from(keys)) as u32, (t % 17) as f64)).collect()
    }

    fn query(ws: &[Window], f: AggregateFunction) -> WindowQuery {
        WindowQuery::new(WindowSet::new(ws.to_vec()).unwrap(), f)
    }

    #[test]
    fn single_tumbling_min() {
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let evs = events(30, 1);
        let out = execute(&plan, &evs, true).unwrap();
        // Instances [0,10): min(0..10 % 17) = 0; [10,20): values 10..16,0,1,2 → 0;
        // [20,30): values 3..12 → 3.
        let results = sorted_results(out.results);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].value, 0.0);
        assert_eq!(results[1].value, 0.0);
        assert_eq!(results[2].value, 3.0);
        assert_eq!(out.events_processed, 30);
    }

    #[test]
    fn all_three_plans_agree_for_min_covered_by() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Min);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(500, 4);
        let a = execute(&out.original.plan, &evs, true).unwrap();
        let b = execute(&out.rewritten.plan, &evs, true).unwrap();
        let c = execute(&out.factored.plan, &evs, true).unwrap();
        let ra = sorted_results(a.results);
        let rb = sorted_results(b.results);
        let rc = sorted_results(c.results);
        assert!(!ra.is_empty());
        assert_eq!(ra, rb);
        assert_eq!(ra, rc);
    }

    #[test]
    fn all_three_plans_agree_for_sum_partitioned_by() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Sum);
        let out = Optimizer::default().optimize_with(&q, Semantics::PartitionedBy).unwrap();
        let evs = events(600, 3);
        let a = execute(&out.original.plan, &evs, true).unwrap();
        let c = execute(&out.factored.plan, &evs, true).unwrap();
        assert_eq!(sorted_results(a.results), sorted_results(c.results));
    }

    #[test]
    fn hopping_windows_agree_for_max() {
        let q = query(&[w(20, 10), w(40, 10), w(60, 20)], AggregateFunction::Max);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(400, 2);
        let a = execute(&out.original.plan, &evs, true).unwrap();
        let c = execute(&out.factored.plan, &evs, true).unwrap();
        assert_eq!(sorted_results(a.results), sorted_results(c.results));
    }

    #[test]
    fn rejects_out_of_order_events() {
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let evs = vec![Event::new(5, 0, 1.0), Event::new(3, 0, 1.0)];
        // The watermark only moves on seals; craft times to hit the check.
        let err = execute(&plan, &evs, true).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { .. }));
    }

    #[test]
    fn rejects_holistic_subaggregation() {
        // Hand-build a plan that feeds MEDIAN from sub-aggregates.
        let mut b = fw_core::plan::PlanBuilder::new(AggregateFunction::Median);
        let src = b.source();
        let w20 = b.window_agg(src, w(20, 20), "w20".to_string(), true);
        let w40 = b.window_agg(w20, w(40, 40), "w40".to_string(), true);
        let plan = b.finish(vec![w20, w40]);
        let err = execute(&plan, &events(10, 1), false).unwrap_err();
        assert!(matches!(err, EngineError::HolisticSubAggregate { .. }));
    }

    #[test]
    fn median_runs_on_original_plan() {
        let q = query(&[w(10, 10), w(20, 20)], AggregateFunction::Median);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(40, 1);
        let run = execute(&out.factored.plan, &evs, true).unwrap();
        assert!(!run.results.is_empty());
    }

    #[test]
    fn count_matches_event_counts() {
        let q = query(&[w(10, 10), w(20, 20)], AggregateFunction::Count);
        let out = Optimizer::default().optimize(&q).unwrap();
        let evs = events(40, 2);
        let run = execute(&out.factored.plan, &evs, true).unwrap();
        for r in &run.results {
            // 2 keys alternating each tick: every instance holds r/2 per key.
            assert_eq!(r.value, (r.interval.len() / 2) as f64);
        }
    }

    #[test]
    fn exec_stats_count_cost_model_elements() {
        let q = query(&[w(20, 20), w(30, 30), w(40, 40)], AggregateFunction::Min);
        let out = Optimizer::default().optimize_with(&q, Semantics::PartitionedBy).unwrap();
        let evs = events(1200, 1);
        // Original: every event updates each of the 3 tumbling windows.
        let orig = execute(&out.original.plan, &evs, false).unwrap();
        assert_eq!(orig.stats.updates, 3 * 1200);
        assert_eq!(orig.stats.combines, 0);
        // Factored (Figure 2(c)): one raw update per event into W(10,10),
        // everything else arrives as sub-aggregates.
        let fac = execute(&out.factored.plan, &evs, false).unwrap();
        assert_eq!(fac.stats.updates, 1200);
        assert!(fac.stats.combines > 0);
        assert!(fac.stats.elements() < orig.stats.elements());
    }

    #[test]
    fn empty_stream_is_fine() {
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let out = execute(&plan, &[], true).unwrap();
        assert_eq!(out.events_processed, 0);
        assert_eq!(out.results_emitted, 0);
    }

    #[test]
    fn out_of_order_check_uses_watermark_not_last_event() {
        // Equal timestamps are allowed (multiple keys per tick).
        let q = query(&[w(10, 10)], AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let evs = vec![Event::new(1, 0, 1.0), Event::new(1, 1, 2.0), Event::new(2, 0, 0.5)];
        assert!(execute(&plan, &evs, true).is_ok());
    }
}
