//! Bounded-disorder ingestion: a reorder buffer in front of the pipeline.
//!
//! The paper (and the core executor) assume in-order arrival. Real feeds
//! are *almost* ordered: events may lag by a bounded amount (network
//! jitter, partition merges). Production engines absorb this with a
//! reorder buffer / punctuation slack — Trill's disorder policies, Flink's
//! bounded out-of-orderness watermarks. This module provides the same
//! capability: events are held until the high-watermark moves `slack`
//! units past them, then released in timestamp order. Events later than
//! the slack allows are reported, not silently dropped.
//!
//! Released events land in an internal, reusable columnar buffer
//! ([`EventBatch`]) that the pipeline feeds straight into the run-sliced
//! core path: the buffer is cleared — not reallocated — after each feed,
//! and its capacity is capped (the same discipline as the pane deque's
//! spare pool) so a watermark that flushes a long-stalled stream cannot
//! pin burst-sized memory on the steady state.

use crate::batch::EventBatch;
use crate::error::{EngineError, Result};
use crate::event::Event;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Key for heap ordering: time first, then an arrival sequence number so
/// equal timestamps drain in arrival order (deterministic output).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Slot {
    time: u64,
    seq: u64,
}

/// A bounded-disorder reorder buffer.
#[derive(Debug)]
pub struct ReorderBuffer {
    slack: u64,
    heap: BinaryHeap<Reverse<(Slot, u32, u64)>>,
    high_watermark: u64,
    released_watermark: u64,
    seq: u64,
    /// Events released from the heap, in timestamp order, waiting to be
    /// fed into the operators. Reused across flushes; capacity capped by
    /// [`EventBatch::clear`].
    staged: EventBatch,
}

impl ReorderBuffer {
    /// Creates a buffer tolerating disorder up to `slack` time units.
    #[must_use]
    pub fn new(slack: u64) -> Self {
        ReorderBuffer {
            slack,
            heap: BinaryHeap::new(),
            high_watermark: 0,
            released_watermark: 0,
            seq: 0,
            staged: EventBatch::new(),
        }
    }

    /// Number of events currently buffered (not yet released).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }

    /// The events released so far and not yet consumed, in timestamp
    /// order. Consume with [`Self::clear_staged`] after feeding them.
    #[must_use]
    pub fn staged(&self) -> &EventBatch {
        &self.staged
    }

    /// Marks the staged events consumed: clears the columnar buffer,
    /// retaining (capped) capacity for the next release.
    pub fn clear_staged(&mut self) {
        self.staged.clear();
    }

    /// Accepts one (possibly out-of-order) event and stages every event
    /// that became releasable. An event older than
    /// `high_watermark − slack` is a hard error: it can no longer be
    /// ordered correctly.
    pub fn push(&mut self, event: Event) -> Result<()> {
        // Everything strictly before the horizon has already been (or may
        // already have been) released; an event behind it cannot be
        // ordered correctly any more.
        let horizon = self.high_watermark.saturating_sub(self.slack);
        if event.time < horizon {
            return Err(EngineError::OutOfOrderEvent {
                at: event.time,
                watermark: horizon,
            });
        }
        self.high_watermark = self.high_watermark.max(event.time);
        self.heap.push(Reverse((
            Slot {
                time: event.time,
                seq: self.seq,
            },
            event.key,
            event.value.to_bits(),
        )));
        self.seq += 1;

        self.release();
        Ok(())
    }

    /// Stages every buffered event strictly before the current horizon.
    fn release(&mut self) {
        let release_up_to = self.high_watermark.saturating_sub(self.slack);
        while let Some(Reverse((slot, _, _))) = self.heap.peek() {
            if slot.time >= release_up_to {
                break;
            }
            let Reverse((slot, key, bits)) = self.heap.pop().expect("peeked");
            self.released_watermark = self.released_watermark.max(slot.time);
            self.staged.push_parts(slot.time, key, f64::from_bits(bits));
        }
    }

    /// Processes a watermark announcement: no event with
    /// `time < watermark` will be pushed any more, so every buffered event
    /// before `watermark` is staged in timestamp order, and later arrivals
    /// behind it become hard errors.
    pub fn advance_to(&mut self, watermark: u64) {
        self.high_watermark = self
            .high_watermark
            .max(watermark.saturating_add(self.slack));
        self.release();
    }

    /// Stages everything still buffered, in order (end of stream).
    pub fn flush(&mut self) {
        while let Some(Reverse((slot, key, bits))) = self.heap.pop() {
            self.released_watermark = self.released_watermark.max(slot.time);
            self.staged.push_parts(slot.time, key, f64::from_bits(bits));
        }
    }

    /// Captures the buffer's full state for a checkpoint: buffered events
    /// in deterministic `(time, seq)` release order plus the watermarks.
    /// The staged batch is always empty between pipeline operations
    /// (every push/advance drains it into the operators), so it is not
    /// part of the image.
    pub(crate) fn image(&self) -> crate::checkpoint::ReorderImage {
        debug_assert!(
            self.staged.is_empty(),
            "staged events must be fed before a checkpoint"
        );
        let mut entries: Vec<(u64, u64, u32, u64)> = self
            .heap
            .iter()
            .map(|Reverse((slot, key, bits))| (slot.time, slot.seq, *key, *bits))
            .collect();
        entries.sort_unstable_by_key(|&(time, seq, _, _)| (time, seq));
        crate::checkpoint::ReorderImage {
            slack: self.slack,
            high: self.high_watermark,
            released: self.released_watermark,
            entries: entries
                .into_iter()
                .map(|(time, _, key, bits)| (time, key, bits))
                .collect(),
        }
    }

    /// Rebuilds a buffer from a checkpoint image. Entries re-enter the
    /// heap with fresh sequence numbers in slice order, which *is* the
    /// original release order — equal-timestamp arrival order survives
    /// the round trip.
    pub(crate) fn from_image(image: &crate::checkpoint::ReorderImage) -> Self {
        let mut buffer = ReorderBuffer::new(image.slack);
        buffer.high_watermark = image.high;
        buffer.released_watermark = image.released;
        for &(time, key, bits) in &image.entries {
            buffer.heap.push(Reverse((
                Slot {
                    time,
                    seq: buffer.seq,
                },
                key,
                bits,
            )));
            buffer.seq += 1;
        }
        buffer
    }

    /// Convenience: reorders a whole slice, erroring on events more than
    /// `slack` behind the running maximum.
    pub fn reorder(slack: u64, events: &[Event]) -> Result<Vec<Event>> {
        let mut buffer = ReorderBuffer::new(slack);
        let mut out = Vec::with_capacity(events.len());
        for &event in events {
            buffer.push(event)?;
        }
        buffer.flush();
        out.extend(buffer.staged().iter());
        buffer.clear_staged();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event::new(t, 0, t as f64)
    }

    /// Drains the staged events as rows (test convenience).
    fn take_staged(buffer: &mut ReorderBuffer) -> Vec<Event> {
        let out: Vec<Event> = buffer.staged().iter().collect();
        buffer.clear_staged();
        out
    }

    #[test]
    fn sorted_input_passes_through() {
        let events: Vec<Event> = (0..100).map(ev).collect();
        let out = ReorderBuffer::reorder(5, &events).unwrap();
        assert_eq!(out, events);
    }

    #[test]
    fn bounded_disorder_is_repaired() {
        // Swap pairs: disorder of 1 unit.
        let mut events: Vec<Event> = (0..100).map(ev).collect();
        for pair in events.chunks_mut(2) {
            pair.swap(0, 1);
        }
        let out = ReorderBuffer::reorder(2, &events).unwrap();
        let expect: Vec<Event> = (0..100).map(ev).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn excess_disorder_is_an_error() {
        let events = vec![ev(100), ev(10)];
        let err = ReorderBuffer::reorder(5, &events).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { at: 10, .. }));
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        let events = vec![
            Event::new(5, 0, 1.0),
            Event::new(5, 1, 2.0),
            Event::new(5, 2, 3.0),
            Event::new(20, 0, 4.0),
        ];
        let out = ReorderBuffer::reorder(2, &events).unwrap();
        assert_eq!(out[0].key, 0);
        assert_eq!(out[1].key, 1);
        assert_eq!(out[2].key, 2);
    }

    #[test]
    fn buffer_occupancy_is_bounded_by_slack_times_rate() {
        let mut buffer = ReorderBuffer::new(8);
        let mut out = Vec::new();
        for t in 0..1000u64 {
            buffer.push(ev(t)).unwrap();
            out.extend(take_staged(&mut buffer));
            assert!(buffer.buffered() <= 9, "{} buffered", buffer.buffered());
        }
        buffer.flush();
        out.extend(take_staged(&mut buffer));
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn staged_buffer_is_reused_not_reallocated() {
        // In the steady state the staged columns are cleared, not dropped:
        // after warm-up, repeated release/clear cycles keep one capacity.
        let mut buffer = ReorderBuffer::new(4);
        let mut cap_after_warmup = 0;
        for t in 0..10_000u64 {
            buffer.push(ev(t)).unwrap();
            if t == 100 {
                cap_after_warmup = buffer.staged().capacity();
            }
            buffer.clear_staged();
        }
        assert!(cap_after_warmup > 0);
        assert_eq!(buffer.staged().capacity(), cap_after_warmup);
    }

    #[test]
    fn flush_burst_capacity_is_capped_like_the_spare_pool() {
        // A long stall followed by one watermark releases a burst far
        // bigger than the steady state; the drain buffer must not pin
        // that memory after it is consumed.
        let mut buffer = ReorderBuffer::new(1_000_000);
        for t in 0..50_000u64 {
            buffer.push(ev(t)).unwrap();
        }
        buffer.advance_to(100_000);
        assert_eq!(buffer.staged().len(), 50_000);
        buffer.clear_staged();
        assert!(
            buffer.staged().capacity() <= crate::batch::BATCH_SPARE_CAP,
            "{} capacity retained",
            buffer.staged().capacity()
        );
    }

    #[test]
    fn reordered_stream_executes_identically() {
        use fw_core::prelude::*;
        // End to end: shuffle within slack, repair, run, compare.
        let windows = WindowSet::new(vec![Window::tumbling(10).unwrap()]).unwrap();
        let query = WindowQuery::new(windows, AggregateFunction::Sum);
        let plan = fw_core::rewrite::original_plan(&query);

        let ordered: Vec<Event> = (0..500)
            .map(|t| Event::new(t, 0, ((t * 7) % 23) as f64))
            .collect();
        let mut jittered = ordered.clone();
        for chunk in jittered.chunks_mut(3) {
            chunk.reverse();
        }
        // The jittered stream itself is rejected...
        let opts = crate::executor::PipelineOptions::collecting();
        assert!(crate::executor::PlanPipeline::run(&plan, &jittered, opts).is_err());
        // ...but repairs losslessly through the buffer.
        let repaired = ReorderBuffer::reorder(4, &jittered).unwrap();
        let a = crate::executor::PlanPipeline::run(&plan, &ordered, opts).unwrap();
        let b = crate::executor::PlanPipeline::run(&plan, &repaired, opts).unwrap();
        assert_eq!(
            crate::event::sorted_results(a.results),
            crate::event::sorted_results(b.results)
        );
    }

    #[test]
    fn watermark_announcement_releases_early() {
        let mut buffer = ReorderBuffer::new(100);
        buffer.push(ev(3)).unwrap();
        buffer.push(ev(1)).unwrap();
        buffer.push(ev(7)).unwrap();
        // Well within slack: nothing released yet.
        assert!(buffer.staged().is_empty());
        buffer.advance_to(5);
        assert_eq!(buffer.staged().times(), &[1, 3]);
        // An arrival behind the announced watermark is now a hard error.
        let err = buffer.push(ev(2)).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { at: 2, .. }));
        // At or past the watermark is still fine.
        buffer.push(ev(5)).unwrap();
        buffer.flush();
        assert_eq!(buffer.staged().times(), &[1, 3, 5, 7]);
    }
}
