//! Throughput measurement: events processed per unit time, the paper's
//! evaluation metric (Karimov et al., ICDE 2018).

use crate::error::Result;
use crate::event::Event;
use crate::executor::{PipelineOptions, PlanPipeline};
use fw_core::QueryPlan;

/// Throughput statistics over repeated runs of one plan.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Mean events/second over the measured runs.
    pub mean_eps: f64,
    /// Best (max) events/second over the measured runs.
    pub best_eps: f64,
    /// Number of measured runs.
    pub runs: u32,
}

/// Measures the throughput of `plan` over `events`: one warm-up run
/// followed by `runs` measured runs with a count-only sink.
pub fn measure_throughput(plan: &QueryPlan, events: &[Event], runs: u32) -> Result<Throughput> {
    let runs = runs.max(1);
    let opts = PipelineOptions::default();
    PlanPipeline::run(plan, events, opts)?; // warm-up: page in data, train branches
    let mut total = 0.0;
    let mut best = 0.0f64;
    for _ in 0..runs {
        let out = PlanPipeline::run(plan, events, opts)?;
        let eps = out.throughput_eps();
        total += eps;
        best = best.max(eps);
    }
    Ok(Throughput {
        mean_eps: total / f64::from(runs),
        best_eps: best,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_core::{AggregateFunction, Window, WindowQuery, WindowSet};

    #[test]
    fn throughput_is_positive_and_finite() {
        let ws = WindowSet::new(vec![Window::tumbling(20).unwrap()]).unwrap();
        let q = WindowQuery::new(ws, AggregateFunction::Min);
        let plan = fw_core::rewrite::original_plan(&q);
        let events: Vec<Event> = (0..20_000)
            .map(|t| Event::new(t, (t % 4) as u32, t as f64))
            .collect();
        let tp = measure_throughput(&plan, &events, 2).unwrap();
        assert!(tp.mean_eps > 0.0 && tp.mean_eps.is_finite());
        assert!(tp.best_eps >= tp.mean_eps * 0.5);
        assert_eq!(tp.runs, 2);
    }
}
