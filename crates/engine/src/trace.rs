//! Structured trace ring: a fixed-capacity, allocation-free log of
//! engine lifecycle events (seals, replans, rebuilds, checkpoints,
//! interner compactions, sheds, resumes) with monotonic timestamps.
//!
//! The ring is bounded: recording never allocates after construction,
//! and when full the oldest event is overwritten (counted in
//! [`TraceRing::dropped`]). Facades own rings — the engine cores only
//! maintain cheap counters — so the steady-state push/seal/poll path
//! stays zero-alloc with tracing wired.

use std::time::Instant;

/// Default ring capacity used by the pipeline facades.
pub const DEFAULT_TRACE_CAP: usize = 1024;

/// What happened. The two payload words of a [`TraceEvent`] are
/// kind-specific (documented per variant as `a` / `b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Watermark advance sealed instances. `a` = watermark, `b` = result
    /// rows emitted by the advance (`0` on backends where counting would
    /// synchronize the workers).
    Seal,
    /// The adaptive planner re-optimized. `a` = observed rate (rounded),
    /// `b` = drift ratio in milli-units (ratio × 1000).
    Replan,
    /// The running core was swapped for a new plan. `a` = watermark,
    /// `b` = cumulative replans.
    Rebuild,
    /// A checkpoint image was exported. `a` = watermark, `b` = events
    /// processed.
    Checkpoint,
    /// A core recycled its key interner at an idle point. `a` =
    /// watermark, `b` = cumulative compactions.
    Compaction,
    /// Ingress shed work under backpressure. `a` = query/client id,
    /// `b` = batches shed.
    Shed,
    /// A pipeline resumed from a checkpoint. `a` = watermark, `b` =
    /// events processed at the restore point.
    Resume,
    /// A query registered with a serving group. `a` = query id.
    Register,
    /// A query deregistered from a serving group. `a` = query id,
    /// `b` = rows it had been delivered.
    Deregister,
}

impl TraceEventKind {
    /// Stable lower-case name used by text/JSON renderings.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Seal => "seal",
            TraceEventKind::Replan => "replan",
            TraceEventKind::Rebuild => "rebuild",
            TraceEventKind::Checkpoint => "checkpoint",
            TraceEventKind::Compaction => "compaction",
            TraceEventKind::Shed => "shed",
            TraceEventKind::Resume => "resume",
            TraceEventKind::Register => "register",
            TraceEventKind::Deregister => "deregister",
        }
    }
}

/// One recorded event. `micros` is monotonic time since the ring was
/// created; `seq` is a gap-free sequence number, so consumers can detect
/// overwritten events by comparing against [`TraceRing::dropped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// Microseconds since ring creation (monotonic clock).
    pub micros: u64,
    /// Event kind.
    pub kind: TraceEventKind,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

/// Fixed-capacity ring of [`TraceEvent`]s. All storage is reserved at
/// construction; [`TraceRing::record`] never allocates.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    seq: u64,
    dropped: u64,
    epoch: Instant,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::with_capacity(DEFAULT_TRACE_CAP)
    }
}

impl TraceRing {
    /// Creates a ring holding up to `cap` events (min 1).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            seq: 0,
            dropped: 0,
            epoch: Instant::now(),
        }
    }

    /// Records an event; overwrites the oldest when full. Never
    /// allocates.
    pub fn record(&mut self, kind: TraceEventKind, a: u64, b: u64) {
        let micros = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ev = TraceEvent {
            seq: self.seq,
            micros,
            kind,
            a,
            b,
        };
        self.seq += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten before being drained.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Moves all buffered events into `out` in sequence order and empties
    /// the ring (capacity is retained).
    pub fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_drains() {
        let mut ring = TraceRing::with_capacity(8);
        ring.record(TraceEventKind::Seal, 10, 2);
        ring.record(TraceEventKind::Checkpoint, 10, 100);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].seq, 0);
        assert_eq!(out[0].kind, TraceEventKind::Seal);
        assert_eq!(out[1].kind, TraceEventKind::Checkpoint);
        assert!(out[1].micros >= out[0].micros, "monotonic timestamps");
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wraps_and_counts_drops() {
        let mut ring = TraceRing::with_capacity(4);
        for i in 0..10u64 {
            ring.record(TraceEventKind::Seal, i, 0);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.recorded(), 10);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(
            out.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest events were overwritten, order preserved"
        );
        // Capacity survives a drain; recording continues seamlessly.
        ring.record(TraceEventKind::Resume, 0, 0);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.recorded(), 11);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceEventKind::Compaction.name(), "compaction");
        assert_eq!(TraceEventKind::Deregister.name(), "deregister");
    }
}
