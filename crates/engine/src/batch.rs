//! Columnar (structure-of-arrays) event batches.
//!
//! The per-event [`Event`] struct is the right unit for the API surface,
//! but the hot ingestion path wants columns: production engines (Trill's
//! columnar batches; the spilling window-aggregate engine of Shi & Wang,
//! arXiv:2007.10385) amortize per-event dispatch, routing arithmetic, and
//! hash probes over whole batches, and the paper's cost model only tracks
//! measured throughput when that engine bookkeeping stays negligible next
//! to the per-element work the model charges. An [`EventBatch`] holds the
//! three columns (`times`, `keys`, `values`) contiguously; the executor
//! cores consume borrowed column slices directly
//! (`PlanPipeline::push_columns`), split them once into per-instance
//! *runs*, and fold each run per key — see `crates/engine/src/executor.rs`
//! and DESIGN.md §3.8.

use crate::event::Event;

/// When a cleared batch's columns keep more capacity than this many
/// events, they are shrunk back: a one-off burst (a watermark releasing a
/// long-stalled reorder buffer, a giant caller batch) must not pin its
/// high-water memory on a buffer that is reused forever.
pub const BATCH_SPARE_CAP: usize = 4096;

/// A columnar batch of events: structure-of-arrays storage with one `Vec`
/// per field, always of equal length.
///
/// ```
/// use fw_engine::{Event, EventBatch};
///
/// let mut batch = EventBatch::new();
/// batch.push(Event::new(3, 7, 1.5));
/// batch.push_parts(4, 7, 2.5);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.times(), &[3, 4]);
/// assert_eq!(batch.get(1), Event::new(4, 7, 2.5));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventBatch {
    times: Vec<u64>,
    keys: Vec<u32>,
    values: Vec<f64>,
}

impl EventBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        EventBatch::default()
    }

    /// An empty batch with capacity for `capacity` events per column.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventBatch {
            times: Vec::with_capacity(capacity),
            keys: Vec::with_capacity(capacity),
            values: Vec::with_capacity(capacity),
        }
    }

    /// Builds a batch from a row-oriented event slice (one copy per
    /// field).
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut batch = EventBatch::with_capacity(events.len());
        batch.extend_from_events(events);
        batch
    }

    /// Number of events in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the batch holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Per-column capacity currently allocated (the minimum over the three
    /// columns; they only diverge transiently inside `Vec` growth).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.times
            .capacity()
            .min(self.keys.capacity())
            .min(self.values.capacity())
    }

    /// Appends one event.
    #[inline]
    pub fn push(&mut self, event: Event) {
        self.push_parts(event.time, event.key, event.value);
    }

    /// Appends one event given as its three fields (no `Event` struct in
    /// the caller's hot loop).
    #[inline]
    pub fn push_parts(&mut self, time: u64, key: u32, value: f64) {
        self.times.push(time);
        self.keys.push(key);
        self.values.push(value);
    }

    /// Appends a row-oriented event slice.
    pub fn extend_from_events(&mut self, events: &[Event]) {
        self.times.reserve(events.len());
        self.keys.reserve(events.len());
        self.values.reserve(events.len());
        for event in events {
            self.times.push(event.time);
            self.keys.push(event.key);
            self.values.push(event.value);
        }
    }

    /// The timestamp column.
    #[must_use]
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// The key column.
    #[must_use]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// The value column.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// All three columns at once (convenient for feeding
    /// `push_columns`-shaped APIs).
    #[must_use]
    pub fn columns(&self) -> (&[u64], &[u32], &[f64]) {
        (&self.times, &self.keys, &self.values)
    }

    /// The `i`-th event, rematerialized as a row.
    #[must_use]
    pub fn get(&self, i: usize) -> Event {
        Event::new(self.times[i], self.keys[i], self.values[i])
    }

    /// Iterates the batch as row-oriented events.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.times
            .iter()
            .zip(&self.keys)
            .zip(&self.values)
            .map(|((&time, &key), &value)| Event::new(time, key, value))
    }

    /// Clears the batch, keeping at most [`BATCH_SPARE_CAP`] events of
    /// capacity per column (see the constant for why the cap exists).
    pub fn clear(&mut self) {
        self.times.clear();
        self.keys.clear();
        self.values.clear();
        if self.times.capacity() > BATCH_SPARE_CAP {
            self.times.shrink_to(BATCH_SPARE_CAP);
        }
        if self.keys.capacity() > BATCH_SPARE_CAP {
            self.keys.shrink_to(BATCH_SPARE_CAP);
        }
        if self.values.capacity() > BATCH_SPARE_CAP {
            self.values.shrink_to(BATCH_SPARE_CAP);
        }
    }
}

impl FromIterator<Event> for EventBatch {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        let mut batch = EventBatch::new();
        for event in iter {
            batch.push(event);
        }
        batch
    }
}

impl From<&[Event]> for EventBatch {
    fn from(events: &[Event]) -> Self {
        EventBatch::from_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_rows_and_columns() {
        let events: Vec<Event> = (0..10u64)
            .map(|t| Event::new(t, (t % 3) as u32, t as f64 * 0.5))
            .collect();
        let batch = EventBatch::from_events(&events);
        assert_eq!(batch.len(), 10);
        assert!(!batch.is_empty());
        let back: Vec<Event> = batch.iter().collect();
        assert_eq!(back, events);
        for (i, &e) in events.iter().enumerate() {
            assert_eq!(batch.get(i), e);
        }
        let (times, keys, values) = batch.columns();
        assert_eq!(times.len(), 10);
        assert_eq!(keys.len(), 10);
        assert_eq!(values.len(), 10);
    }

    #[test]
    fn from_iterator_matches_push() {
        let events: Vec<Event> = (0..5u64).map(|t| Event::new(t, 0, 1.0)).collect();
        let a: EventBatch = events.iter().copied().collect();
        let mut b = EventBatch::new();
        for &e in &events {
            b.push(e);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn clear_caps_burst_capacity() {
        let mut batch = EventBatch::new();
        for t in 0..(BATCH_SPARE_CAP as u64 * 4) {
            batch.push_parts(t, 0, 0.0);
        }
        assert!(batch.capacity() > BATCH_SPARE_CAP);
        batch.clear();
        assert!(batch.is_empty());
        assert!(
            batch.capacity() <= BATCH_SPARE_CAP,
            "{} capacity retained",
            batch.capacity()
        );
        // Small buffers keep their capacity for reuse.
        let mut small = EventBatch::with_capacity(64);
        small.push_parts(1, 0, 0.0);
        small.clear();
        assert!(small.capacity() >= 64);
    }
}
