//! Per-plan-node profiling: observed counters attributed to each window
//! node of the running plan.
//!
//! Every window node of a [`fw_core::QueryPlan`] has a stable
//! [`fw_core::NodeId`] (its index in the plan's node list); the compiled
//! cores attribute updates, combines, seals, emitted rows, pane-slab
//! occupancy high-water and — behind a sampled, stride-amortized clock —
//! nanoseconds to each node. Profiles merge across shards (element-wise,
//! same plan) and across plan generations (by window identity, since a
//! replan may change the topology): the sum over a profile set always
//! reconciles with the pipeline's cumulative
//! [`crate::executor::ExecStats`].

use fw_core::NodeId;

/// How much per-node instrumentation a compiled pipeline carries.
/// Profiling is observation-only: results are bit-identical at every
/// level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileLevel {
    /// No per-node instrumentation beyond the always-on
    /// [`crate::executor::ExecStats`] counters.
    #[default]
    Off,
    /// Per-node counters: seals, emitted rows, occupancy high-water.
    Counters,
    /// Counters plus sampled per-node nanoseconds (see
    /// [`crate::executor::PROFILE_CLOCK_STRIDE`]).
    Timed,
}

impl ProfileLevel {
    /// Whether per-node counters are maintained.
    #[must_use]
    pub fn counters_on(self) -> bool {
        !matches!(self, ProfileLevel::Off)
    }

    /// Whether the sampled per-node clock is armed.
    #[must_use]
    pub fn clock_on(self) -> bool {
        matches!(self, ProfileLevel::Timed)
    }
}

/// Sentinel [`NodeId`] for counters whose window is no longer part of the
/// live plan (it belonged to a generation retired by a replan). Such
/// entries keep lifetime totals reconcilable with cumulative stats.
pub const RETIRED_NODE: NodeId = usize::MAX;

/// Observed counters for one window node of the plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeProfile {
    /// Plan node id ([`RETIRED_NODE`] once the window left the plan).
    pub node: NodeId,
    /// The node's window range.
    pub range: u64,
    /// The node's window slide.
    pub slide: u64,
    /// Whether the node contributes rows to the query output.
    pub exposed: bool,
    /// Whether the node ingests the raw stream (vs. sub-aggregates).
    pub raw_fed: bool,
    /// Raw-event accumulator updates performed at this node.
    pub updates: u64,
    /// Sub-aggregate combines performed at this node.
    pub combines: u64,
    /// Total accumulator operations (multi-aggregate cores count one per
    /// slot; single-aggregate cores count `updates + combines`).
    pub agg_ops: u64,
    /// Window instances sealed at this node.
    pub seals: u64,
    /// Result rows emitted from this node (zero for factor windows).
    pub emitted: u64,
    /// High-water of live slab entries in any pane sealed at this node.
    pub pane_live_hw: u64,
    /// Sampled nanoseconds attributed to this node. Samples are taken
    /// every [`crate::executor::PROFILE_CLOCK_STRIDE`]-th pass, so this
    /// is a stride-th of wall time: meaningful relatively (which node is
    /// hot), not absolutely.
    pub nanos: u64,
}

impl NodeProfile {
    /// Accumulates another profile's counters into this one (additive
    /// counters add; the occupancy high-water takes the max). Identity
    /// fields (`node`, windows, flags) are left untouched.
    pub fn add_counters(&mut self, other: &NodeProfile) {
        self.updates += other.updates;
        self.combines += other.combines;
        self.agg_ops += other.agg_ops;
        self.seals += other.seals;
        self.emitted += other.emitted;
        self.pane_live_hw = self.pane_live_hw.max(other.pane_live_hw);
        self.nanos += other.nanos;
    }
}

/// Folds a retiring generation's profiles into `base`, matching nodes by
/// window identity (`range`, `slide`): counters accumulate, the occupancy
/// high-water takes the max, and windows unseen so far are appended with
/// [`RETIRED_NODE`]. Used when a live core is replaced (replan,
/// checkpoint-time accounting) so lifetime totals survive the swap.
pub fn fold_profiles(base: &mut Vec<NodeProfile>, retiring: &[NodeProfile]) {
    for p in retiring {
        match base
            .iter_mut()
            .find(|b| b.range == p.range && b.slide == p.slide)
        {
            Some(b) => b.add_counters(p),
            None => {
                let mut r = *p;
                r.node = RETIRED_NODE;
                base.push(r);
            }
        }
    }
}

/// Joins accumulated `base` counters under the `live` generation's node
/// identities: each live profile absorbs the base counters of its window,
/// and base windows absent from the live plan are appended as
/// [`RETIRED_NODE`] entries so the set still sums to lifetime totals.
#[must_use]
pub fn join_profiles(base: &[NodeProfile], live: &[NodeProfile]) -> Vec<NodeProfile> {
    let mut out = live.to_vec();
    for b in base {
        match out
            .iter_mut()
            .find(|o| o.range == b.range && o.slide == b.slide)
        {
            Some(o) => o.add_counters(b),
            None => out.push(*b),
        }
    }
    out
}

/// Sums per-shard profile vectors, matching nodes by window identity.
/// Occupancy high-waters *add*, because shards partition the key space
/// and their slab occupancies are disjoint. Matching by window (not
/// position) tolerates shape skew — after a rescale restore, one shard
/// carries the checkpoint's retired-window entries while the others only
/// report the live plan. A live node identity wins over a retired one.
pub fn add_shard_profiles(acc: &mut Vec<NodeProfile>, shard: &[NodeProfile]) {
    for s in shard {
        match acc
            .iter_mut()
            .find(|a| a.range == s.range && a.slide == s.slide)
        {
            Some(a) => {
                if a.node == RETIRED_NODE {
                    a.node = s.node;
                    a.exposed = s.exposed;
                    a.raw_fed = s.raw_fed;
                }
                a.updates += s.updates;
                a.combines += s.combines;
                a.agg_ops += s.agg_ops;
                a.seals += s.seals;
                a.emitted += s.emitted;
                a.pane_live_hw += s.pane_live_hw;
                a.nanos += s.nanos;
            }
            None => acc.push(*s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(range: u64, node: NodeId, updates: u64) -> NodeProfile {
        NodeProfile {
            node,
            range,
            slide: range,
            updates,
            pane_live_hw: updates,
            ..NodeProfile::default()
        }
    }

    #[test]
    fn fold_matches_by_window_and_appends_retired() {
        let mut base = vec![p(20, RETIRED_NODE, 5)];
        fold_profiles(&mut base, &[p(20, 2, 7), p(30, 4, 3)]);
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].updates, 12);
        assert_eq!(base[0].pane_live_hw, 7, "high-water is a max");
        assert_eq!(base[1].node, RETIRED_NODE);
        assert_eq!(base[1].updates, 3);
    }

    #[test]
    fn join_keeps_live_identity_and_appends_orphans() {
        let base = vec![p(20, RETIRED_NODE, 5), p(40, RETIRED_NODE, 9)];
        let joined = join_profiles(&base, &[p(20, 2, 7)]);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].node, 2, "live id wins");
        assert_eq!(joined[0].updates, 12);
        assert_eq!(joined[1].node, RETIRED_NODE);
        assert_eq!(joined[1].updates, 9);
    }

    #[test]
    fn shard_sum_adds_high_waters() {
        let mut acc = Vec::new();
        add_shard_profiles(&mut acc, &[p(20, 2, 5)]);
        add_shard_profiles(&mut acc, &[p(20, 2, 7)]);
        assert_eq!(acc[0].updates, 12);
        assert_eq!(acc[0].pane_live_hw, 12, "disjoint key spaces add");
    }
}
